"""Setuptools shim.

The environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .`` via the PEP 517 path) cannot build; this shim lets
``pip install -e . --no-use-pep517`` (or ``python setup.py develop``)
install the package offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

# Entry points are duplicated from pyproject.toml because the legacy
# ``setup.py develop`` path does not read ``[project.scripts]``.
setup(entry_points={
    "console_scripts": [
        "bundle-charging = repro.cli:main",
    ],
})
