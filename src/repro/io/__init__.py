"""JSON persistence for reproduction artifacts (networks and plans)."""

from .serialize import (SCHEMA_NETWORK, SCHEMA_PLAN, SerializationError,
                        load_json, network_from_dict, network_to_dict,
                        plan_from_dict, plan_to_dict, save_json)

__all__ = [
    "SCHEMA_NETWORK",
    "SCHEMA_PLAN",
    "SerializationError",
    "load_json",
    "network_from_dict",
    "network_to_dict",
    "plan_from_dict",
    "plan_to_dict",
    "save_json",
]
