"""JSON persistence for networks and plans.

Reproduction artifacts need to be shareable: a deployment you found a
bug on, a plan you want to replay on the testbed, a tour to diff across
library versions.  This module round-trips the two core value types
through plain JSON (no pickle — artifacts stay portable and auditable).

Schema versioning: every document carries ``"schema"``; loaders reject
unknown versions loudly rather than guessing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from ..errors import BundleChargingError
from ..geometry import Point
from ..network import Sensor, SensorNetwork
from ..tour import ChargingPlan, Stop

SCHEMA_NETWORK = "bundle-charging/network/v1"
SCHEMA_PLAN = "bundle-charging/plan/v1"


class SerializationError(BundleChargingError):
    """Raised on malformed or version-mismatched documents."""


def _point_to_list(point: Point) -> list:
    return [point.x, point.y]


def _point_from_list(raw: Any) -> Point:
    try:
        x, y = raw
        return Point(float(x), float(y))
    except (TypeError, ValueError) as error:
        raise SerializationError(f"bad point payload: {raw!r}") \
            from error


# --- networks -------------------------------------------------------------

def network_to_dict(network: SensorNetwork) -> Dict[str, Any]:
    """Serialize a network to a JSON-compatible dict."""
    return {
        "schema": SCHEMA_NETWORK,
        "field_side_m": network.field_side_m,
        "base_station": _point_to_list(network.base_station),
        "sensors": [
            {
                "index": sensor.index,
                "location": _point_to_list(sensor.location),
                "required_j": sensor.required_j,
            }
            for sensor in network
        ],
    }


def network_from_dict(raw: Dict[str, Any]) -> SensorNetwork:
    """Deserialize a network.

    Raises:
        SerializationError: on schema mismatch or malformed payloads.
    """
    if not isinstance(raw, dict) \
            or raw.get("schema") != SCHEMA_NETWORK:
        raise SerializationError(
            f"expected schema {SCHEMA_NETWORK!r}, got "
            f"{raw.get('schema') if isinstance(raw, dict) else raw!r}")
    try:
        sensors = [
            Sensor(index=int(entry["index"]),
                   location=_point_from_list(entry["location"]),
                   required_j=float(entry["required_j"]))
            for entry in raw["sensors"]
        ]
        return SensorNetwork(
            sensors, float(raw["field_side_m"]),
            base_station=_point_from_list(raw["base_station"]))
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(
            f"malformed network document: {error}") from error


# --- plans -------------------------------------------------------------------

def plan_to_dict(plan: ChargingPlan) -> Dict[str, Any]:
    """Serialize a plan to a JSON-compatible dict."""
    return {
        "schema": SCHEMA_PLAN,
        "label": plan.label,
        "depot": (_point_to_list(plan.depot)
                  if plan.depot is not None else None),
        "stops": [
            {
                "position": _point_to_list(stop.position),
                "sensors": sorted(stop.sensors),
                "dwell_s": stop.dwell_s,
            }
            for stop in plan.stops
        ],
    }


def plan_from_dict(raw: Dict[str, Any]) -> ChargingPlan:
    """Deserialize a plan.

    Raises:
        SerializationError: on schema mismatch or malformed payloads.
    """
    if not isinstance(raw, dict) or raw.get("schema") != SCHEMA_PLAN:
        raise SerializationError(
            f"expected schema {SCHEMA_PLAN!r}, got "
            f"{raw.get('schema') if isinstance(raw, dict) else raw!r}")
    try:
        stops = tuple(
            Stop(position=_point_from_list(entry["position"]),
                 sensors=frozenset(int(i) for i in entry["sensors"]),
                 dwell_s=float(entry["dwell_s"]))
            for entry in raw["stops"]
        )
        depot = (_point_from_list(raw["depot"])
                 if raw.get("depot") is not None else None)
        return ChargingPlan(stops=stops, depot=depot,
                            label=str(raw.get("label", "")))
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(
            f"malformed plan document: {error}") from error


# --- files ---------------------------------------------------------------------

Serializable = Union[SensorNetwork, ChargingPlan]


def save_json(obj: Serializable, path: str) -> None:
    """Write a network or plan to ``path`` as JSON."""
    if isinstance(obj, SensorNetwork):
        document = network_to_dict(obj)
    elif isinstance(obj, ChargingPlan):
        document = plan_to_dict(obj)
    else:
        raise SerializationError(
            f"cannot serialize objects of type {type(obj).__name__}")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> Serializable:
    """Read a network or plan back from ``path``.

    Dispatches on the document's ``schema`` field.
    """
    with open(path) as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict):
        raise SerializationError("document root must be an object")
    schema = raw.get("schema")
    if schema == SCHEMA_NETWORK:
        return network_from_dict(raw)
    if schema == SCHEMA_PLAN:
        return plan_from_dict(raw)
    raise SerializationError(f"unknown schema: {schema!r}")
