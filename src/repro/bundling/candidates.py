"""Candidate charging-bundle enumeration (Algorithm 2, lines 1-6).

As written in the paper, "generate all potential charging bundle
candidates" over each node's neighbourhood is exponential.  We use the
canonical geometric discretization for radius-``r`` disk cover instead:

* one disk of radius ``r`` centered on every sensor, and
* the (up to) two disks of radius ``r`` whose boundary passes through each
  pair of sensors at most ``2r`` apart.

Every *maximal* radius-``r`` disk (one whose member set cannot grow by
translation) can be moved until it either touches two input points or is
pinned on one, so this O(n^2)-size family always contains an optimal
disk-cover solution; the greedy/optimal quality analysis is unchanged.
Each candidate's member set is then validated with the decisional MinDisk
exactly as Algorithm 2 prescribes, so reported bundles always fit a
radius-``r`` disk around their own SED center.

The fast path enumerates member sets as int bitmasks
(:mod:`repro.bundling.bitset`) over the struct-of-arrays geometry engine
(:mod:`repro.geometry.soa`); the frozenset API is a thin view over it
and is bit-identical to the original implementation (kept as the
``*_reference`` siblings for the benchmark harness).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import BundlingError
from ..geometry import (Disk, FlatDeployment, GridIndex, Point,
                        disks_through_pair_with_radius, fits_in_radius,
                        flat_candidate_masks, flat_fits_in_radius,
                        grid_cell_size)
from ..geometry import soa
from . import bitset
from .bitset import indices_from_mask, mask_from_indices, popcount


def candidate_member_sets(locations: Sequence[Point],
                          radius: float) -> List[FrozenSet[int]]:
    """Enumerate deduplicated candidate bundles for ``radius``.

    Args:
        locations: sensor locations (candidate members are index sets).
        radius: the generation radius ``r``.

    Returns:
        A list of unique, MinDisk-validated member index sets, sorted by
        descending cardinality then lexicographically (a deterministic
        order the greedy selector relies on for tie-breaking).
    """
    if bitset._USE_REFERENCE:
        return candidate_member_sets_reference(locations, radius)
    return [frozenset(indices_from_mask(mask))
            for mask in candidate_member_masks(locations, radius)]


def candidate_member_masks(locations: Sequence[Point],
                           radius: float,
                           flat: Optional[FlatDeployment] = None
                           ) -> List[int]:
    """Enumerate candidate bundles as bitmasks (the fast-path pipeline).

    Same family and same deterministic order as
    :func:`candidate_member_sets` — element ``k`` of either list denotes
    the same member set.  The default path runs the struct-of-arrays
    kernel (:func:`repro.geometry.flat_candidate_masks`) over ``flat``
    (built here when the caller did not thread one through) and imposes
    the canonical order — descending cardinality, then lexicographic on
    the member indices; under ``reference_kernels()`` the PR-1 inlined
    enumeration (:func:`candidate_member_masks_reference`) runs instead.
    Both are bit-identical to the frozenset oracle on every input.
    """
    if radius < 0.0:
        raise BundlingError(f"negative bundle radius: {radius!r}")
    if not locations:
        return []
    if soa._USE_REFERENCE:
        return candidate_member_masks_reference(locations, radius)
    if flat is None:
        flat = FlatDeployment.from_points(locations)
    # The SoA kernel already emits the canonical order (it holds the
    # member index tuples the sort keys on; re-deriving them here from
    # the masks would cost more than the enumeration itself).
    return flat_candidate_masks(flat, radius)


def _canonical_mask_order(masks: Sequence[int]) -> List[int]:
    """Sort deduplicated masks into the family's deterministic order."""
    decorated = sorted(
        (tuple(indices_from_mask(mask)), mask) for mask in masks)
    decorated.sort(key=lambda item: -len(item[0]))
    return [mask for _, mask in decorated]


def candidate_member_masks_reference(locations: Sequence[Point],
                                     radius: float) -> List[int]:
    """The PR-1 inlined-coordinate-list enumeration, kept as the SoA
    kernel's like-for-like sibling for the benchmark harness (the
    frozenset oracle :func:`candidate_member_sets_reference` measures the
    original object-graph path)."""
    if radius < 0.0:
        raise BundlingError(f"negative bundle radius: {radius!r}")
    if not locations:
        return []

    cell = grid_cell_size(radius)
    floor = math.floor
    sqrt = math.sqrt
    hypot = math.hypot
    n = len(locations)
    xs = [p.x for p in locations]
    ys = [p.y for p in locations]

    cells: Dict[Tuple[int, int], List[int]] = {}
    for idx in range(n):
        key = (floor(xs[idx] / cell), floor(ys[idx] / cell))
        bucket = cells.get(key)
        if bucket is None:
            cells[key] = [idx]
        else:
            bucket.append(idx)

    radius_sq = radius * radius
    reach = math.ceil(radius / cell)
    member_offsets = [(dx, dy)
                      for dx in range(-reach, reach + 1)
                      for dy in range(-reach, reach + 1)]

    seen: Dict[int, None] = {}

    def consider(qx: float, qy: float) -> None:
        # Inlined GridIndex.neighbors_within(center, radius) -> mask.
        base_x = floor(qx / cell)
        base_y = floor(qy / cell)
        mask = 0
        for dx, dy in member_offsets:
            bucket = cells.get((base_x + dx, base_y + dy))
            if bucket:
                for idx in bucket:
                    ddx = xs[idx] - qx
                    ddy = ys[idx] - qy
                    if ddx * ddx + ddy * ddy <= radius_sq:
                        mask |= 1 << idx
        if mask:
            seen[mask] = None

    # Single-point candidates: a disk centered on every sensor.
    for idx in range(n):
        consider(xs[idx], ys[idx])

    # Two-point candidates: radius-r disks through each pair at most 2r
    # apart.  Pairs are found by a forward-neighbor cell sweep (each cell
    # pair visited once) instead of a per-point radius query.
    query = 2.0 * radius
    query_sq = query * query
    pair_reach = math.ceil(query / cell)
    forward = [(dx, dy)
               for dx in range(0, pair_reach + 1)
               for dy in range(-pair_reach, pair_reach + 1)
               if dx > 0 or dy > 0]
    two_radius = 2.0 * radius

    def consider_pair_disks(i: int, j: int) -> None:
        # Inlined disks_through_pair_with_radius(loc[i], loc[j], radius),
        # reduced to the disk centers (the radius never varies).
        ax, ay = xs[i], ys[i]
        bx, by = xs[j], ys[j]
        separation = hypot(ax - bx, ay - by)
        if separation > two_radius:
            return
        if separation == 0.0:
            consider(ax, ay)
            return
        mid_x = (ax + bx) * 0.5
        mid_y = (ay + by) * 0.5
        half = separation / 2.0
        offset_sq = radius_sq - half * half
        if offset_sq <= 0.0:
            consider(mid_x, mid_y)
            return
        offset = sqrt(offset_sq)
        # (b - a).normalized().perpendicular(), component-wise.
        dx = bx - ax
        dy = by - ay
        norm = hypot(dx, dy)
        perp_x = -(dy / norm)
        perp_y = dx / norm
        consider(mid_x + perp_x * offset, mid_y + perp_y * offset)
        consider(mid_x - perp_x * offset, mid_y - perp_y * offset)

    for (cell_x, cell_y), bucket in cells.items():
        size = len(bucket)
        for a_pos in range(size):  # same-cell pairs (indices ascending)
            i = bucket[a_pos]
            xi, yi = xs[i], ys[i]
            for b_pos in range(a_pos + 1, size):
                j = bucket[b_pos]
                ddx = xs[j] - xi
                ddy = ys[j] - yi
                if ddx * ddx + ddy * ddy <= query_sq:
                    consider_pair_disks(i, j)
        for dx, dy in forward:
            other = cells.get((cell_x + dx, cell_y + dy))
            if other:
                for i in bucket:
                    xi, yi = xs[i], ys[i]
                    for j in other:
                        ddx = xs[j] - xi
                        ddy = ys[j] - yi
                        if ddx * ddx + ddy * ddy <= query_sq:
                            if i < j:
                                consider_pair_disks(i, j)
                            else:
                                consider_pair_disks(j, i)

    return _canonical_mask_order(list(seen))


def candidate_member_sets_reference(locations: Sequence[Point],
                                    radius: float) -> List[FrozenSet[int]]:
    """The original frozenset enumeration (pre-bitset), kept for the
    benchmark harness and the identity property tests."""
    if radius < 0.0:
        raise BundlingError(f"negative bundle radius: {radius!r}")
    if not locations:
        return []

    index = GridIndex(locations, grid_cell_size(radius))

    seen: Dict[FrozenSet[int], None] = {}

    def consider(disk: Disk) -> None:
        members = frozenset(index.neighbors_within(disk.center, radius))
        if not members or members in seen:
            return
        seen[members] = None

    for location in locations:
        consider(Disk(location, radius))

    # pairs_within_scan: the pre-fast-path pair enumeration, so this
    # reference arm's timing stays representative of the original code.
    for i, j in index.pairs_within_scan(2.0 * radius):
        for disk in disks_through_pair_with_radius(
                locations[i], locations[j], radius):
            consider(disk)

    return sorted(seen, key=lambda s: (-len(s), tuple(sorted(s))))


def validate_candidates(candidates: Sequence[FrozenSet[int]],
                        locations: Sequence[Point],
                        radius: float,
                        flat: Optional[FlatDeployment] = None
                        ) -> List[FrozenSet[int]]:
    """Filter candidates through the decisional MinDisk (Algorithm 2 l.4-6).

    The geometric construction already guarantees feasibility; this pass
    exists to mirror the paper's algorithm exactly and to guard against
    floating-point edge cases near the radius boundary.  The fast path
    runs the validation loop over the flat coordinate buffers
    (:func:`repro.geometry.flat_fits_in_radius`) — same shuffle stream,
    same tolerances, bit-identical decisions.
    """
    if soa._USE_REFERENCE:
        return validate_candidates_reference(candidates, locations, radius)
    if flat is None:
        flat = FlatDeployment.from_points(locations)
    return [members for members in candidates
            if flat_fits_in_radius(flat, members, radius)]


def validate_candidates_reference(candidates: Sequence[FrozenSet[int]],
                                  locations: Sequence[Point],
                                  radius: float) -> List[FrozenSet[int]]:
    """The original per-candidate Point-list validation loop."""
    feasible = []
    for members in candidates:
        points = [locations[i] for i in members]
        if fits_in_radius(points, radius):
            feasible.append(members)
    return feasible


def maximal_candidates(candidates: Sequence[FrozenSet[int]]
                       ) -> List[FrozenSet[int]]:
    """Drop candidates strictly contained in another candidate.

    For covering objectives only maximal sets matter; pruning dominated
    candidates shrinks the greedy/exact search space substantially.
    Input order (descending cardinality) is preserved for the survivors.
    """
    if bitset._USE_REFERENCE:
        return maximal_candidates_reference(candidates)
    ordered = sorted(candidates, key=len, reverse=True)
    kept: List[FrozenSet[int]] = []
    kept_masks: List[int] = []
    for members in ordered:
        try:
            mask = mask_from_indices(members)
        except ValueError:
            # Negative member index: bitmasks cannot represent it.
            return maximal_candidates_reference(candidates)
        dominated = False
        for big in kept_masks:
            if mask & big == mask:
                dominated = True
                break
        if not dominated:
            kept.append(members)
            kept_masks.append(mask)
    return kept


def maximal_candidates_reference(candidates: Sequence[FrozenSet[int]]
                                 ) -> List[FrozenSet[int]]:
    """The original subset-test pruning loop, kept for benchmarking."""
    ordered = sorted(candidates, key=len, reverse=True)
    kept: List[FrozenSet[int]] = []
    for members in ordered:
        if any(members <= existing for existing in kept):
            continue
        kept.append(members)
    return kept


def maximal_masks(masks: Sequence[int]) -> List[int]:
    """Bitmask dominance pruning: drop masks contained in a kept mask.

    Mask-level twin of :func:`maximal_candidates`; same ordering
    semantics (descending popcount, stable within ties).  A superset of
    ``mask`` necessarily contains ``mask``'s lowest set bit, so dominance
    tests only consult the kept masks indexed under that bit instead of
    the whole kept list.
    """
    ordered = sorted(masks, key=popcount, reverse=True)
    kept: List[int] = []
    by_bit: Dict[int, List[int]] = {}
    for mask in ordered:
        low = mask & -mask
        dominated = False
        for big in by_bit.get(low, ()):
            if mask & big == mask:
                dominated = True
                break
        if dominated:
            continue
        kept.append(mask)
        bits = mask
        while bits:
            bit = bits & -bits
            by_bit.setdefault(bit, []).append(mask)
            bits ^= bit
    return kept
