"""Candidate charging-bundle enumeration (Algorithm 2, lines 1-6).

As written in the paper, "generate all potential charging bundle
candidates" over each node's neighbourhood is exponential.  We use the
canonical geometric discretization for radius-``r`` disk cover instead:

* one disk of radius ``r`` centered on every sensor, and
* the (up to) two disks of radius ``r`` whose boundary passes through each
  pair of sensors at most ``2r`` apart.

Every *maximal* radius-``r`` disk (one whose member set cannot grow by
translation) can be moved until it either touches two input points or is
pinned on one, so this O(n^2)-size family always contains an optimal
disk-cover solution; the greedy/optimal quality analysis is unchanged.
Each candidate's member set is then validated with the decisional MinDisk
exactly as Algorithm 2 prescribes, so reported bundles always fit a
radius-``r`` disk around their own SED center.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from ..errors import BundlingError
from ..geometry import (Disk, GridIndex, Point,
                        disks_through_pair_with_radius, fits_in_radius)


def candidate_member_sets(locations: Sequence[Point],
                          radius: float) -> List[FrozenSet[int]]:
    """Enumerate deduplicated candidate bundles for ``radius``.

    Args:
        locations: sensor locations (candidate members are index sets).
        radius: the generation radius ``r``.

    Returns:
        A list of unique, MinDisk-validated member index sets, sorted by
        descending cardinality then lexicographically (a deterministic
        order the greedy selector relies on for tie-breaking).
    """
    if radius < 0.0:
        raise BundlingError(f"negative bundle radius: {radius!r}")
    if not locations:
        return []

    cell = max(radius, 1e-9)
    index = GridIndex(locations, cell)

    seen: Dict[FrozenSet[int], None] = {}

    def consider(disk: Disk) -> None:
        members = frozenset(index.neighbors_within(disk.center, radius))
        if not members or members in seen:
            return
        # The members were gathered from a radius-r disk, so their SED
        # radius is <= r by construction; assert-level check kept cheap.
        seen[members] = None

    # Single-point candidates: a disk centered on each sensor.
    for location in locations:
        consider(Disk(location, radius))

    # Two-point candidates: radius-r disks through each close pair.
    for i, j in index.pairs_within(2.0 * radius):
        for disk in disks_through_pair_with_radius(
                locations[i], locations[j], radius):
            consider(disk)

    ordered = sorted(seen, key=lambda s: (-len(s), tuple(sorted(s))))
    return ordered


def validate_candidates(candidates: Sequence[FrozenSet[int]],
                        locations: Sequence[Point],
                        radius: float) -> List[FrozenSet[int]]:
    """Filter candidates through the decisional MinDisk (Algorithm 2 l.4-6).

    The geometric construction already guarantees feasibility; this pass
    exists to mirror the paper's algorithm exactly and to guard against
    floating-point edge cases near the radius boundary.
    """
    feasible = []
    for members in candidates:
        points = [locations[i] for i in members]
        if fits_in_radius(points, radius):
            feasible.append(members)
    return feasible


def maximal_candidates(candidates: Sequence[FrozenSet[int]]
                       ) -> List[FrozenSet[int]]:
    """Drop candidates strictly contained in another candidate.

    For covering objectives only maximal sets matter; pruning dominated
    candidates shrinks the greedy/exact search space substantially.
    Input order (descending cardinality) is preserved for the survivors.
    """
    ordered = sorted(candidates, key=len, reverse=True)
    kept: List[FrozenSet[int]] = []
    for members in ordered:
        if any(members <= existing for existing in kept):
            continue
        kept.append(members)
    return kept
