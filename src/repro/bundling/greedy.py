"""Greedy charging-bundle generation — Algorithm 2 of the paper.

Greedy max-coverage over the candidate family: repeatedly pick the bundle
covering the most still-uncovered sensors.  Theorem 2 proves this is a
``ln n + 1`` approximation of the optimal bundle count (it is the greedy
set-cover bound).

The selection kernel runs on int bitmasks with a lazy-greedy max-heap:
each heap entry carries a stale upper bound on its marginal gain (gains
only shrink as coverage grows — submodularity), so a popped entry whose
recomputed gain still matches its key is provably the true argmax.  Ties
break on the candidate's position in the deterministic candidate order,
exactly like the original linear rescan, so the selected sequence is
bit-identical to :func:`greedy_set_cover_reference` on every input.
"""

from __future__ import annotations

import heapq
from typing import FrozenSet, List, Sequence, Set

from ..errors import CoverageError
from ..geometry import FlatDeployment, Point, soa
from ..network import SensorNetwork
from ..perf.counters import PERF
from . import bitset
from .bitset import indices_from_mask, mask_from_indices, popcount
from .bundle import Bundle, BundleSet, make_bundle
from .candidates import (candidate_member_masks, candidate_member_sets,
                         maximal_candidates, maximal_masks)

try:  # tracing is optional: bundling works with repro.obs absent
    from ..obs.tracer import obs_span
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()

try:  # memoization is optional: bundling works with repro.cache absent
    from ..cache import stage_memo
except ImportError:  # pragma: no cover - repro.cache stripped/blocked
    def stage_memo(stage, params_fn, compute):  # type: ignore[misc]
        return compute()


def greedy_bundles(network: SensorNetwork, radius: float,
                   prune_dominated: bool = True) -> BundleSet:
    """Generate charging bundles greedily (the paper's Algorithm 2).

    Args:
        network: the sensor network to cover.
        radius: the generation radius ``r`` (Definition 3).
        prune_dominated: drop candidate sets strictly contained in others
            before selection; changes nothing about the result (a dominated
            set can never be the greedy argmax) but speeds selection up.

    Returns:
        A :class:`BundleSet` covering every sensor, each bundle anchored at
        its members' smallest-enclosing-disk center.

    Raises:
        CoverageError: if selection stalls before full coverage (cannot
            happen with the per-sensor singleton candidates, so this guards
            against internal bugs only).
    """
    locations = network.locations
    selected = _selected_member_sets(locations, radius, len(network),
                                     prune_dominated=prune_dominated)
    bundles = _materialize(selected, locations)
    bundle_set = BundleSet(bundles, radius)
    bundle_set.validate_cover(network)
    return bundle_set


def _selected_member_sets(locations: Sequence[Point], radius: float,
                          universe_size: int,
                          prune_dominated: bool = True
                          ) -> List[FrozenSet[int]]:
    """One candidate-enumeration + greedy-cover pass.

    Shared by :func:`greedy_bundles` and :func:`coverage_gain_curve` so
    diagnostics never recompute the candidate family from scratch.
    Dispatches to the reference frozenset pipeline or the bitmask fast
    path; both produce the identical selection sequence.
    """
    if bitset._USE_REFERENCE:
        # Same stage timers as the fast branch, so PERF-based stage
        # timing stays comparable under reference_kernels().
        with obs_span("obg.candidates", n=universe_size) as span:
            with PERF.timer("bundling.candidates"):
                candidates = candidate_member_sets(locations, radius)
            if prune_dominated:
                with PERF.timer("bundling.maximal"):
                    candidates = maximal_candidates(candidates)
            if span:
                span.set(candidates=len(candidates))
        with obs_span("obg.cover", n=universe_size) as span:
            with PERF.timer("bundling.cover"):
                selected = greedy_set_cover_reference(candidates,
                                                      universe_size)
            if span:
                span.set(bundles=len(selected))
        return selected
    def _stage_params():
        return {"points": list(locations), "radius": radius,
                "prune": prune_dominated}

    def _compute_masks():
        # One FlatDeployment per run: the coordinate buffers are shared
        # by candidate enumeration and any later flat-kernel pass.
        flat = None if soa._USE_REFERENCE else FlatDeployment.from_points(
            locations)
        with PERF.timer("bundling.candidates"):
            enumerated = candidate_member_masks(locations, radius,
                                                flat=flat)
        if prune_dominated:
            with PERF.timer("bundling.maximal"):
                enumerated = maximal_masks(enumerated)
        return enumerated

    with obs_span("obg.candidates", n=universe_size) as span:
        masks = stage_memo("candidates", _stage_params, _compute_masks)
        if span:
            span.set(candidates=len(masks))
    with obs_span("obg.cover", n=universe_size) as span:
        # The cover is fully determined by the same inputs as the
        # candidate family, so it shares the key params (under its own
        # stage name + kernel tag) instead of hashing the mask list.
        def _compute_cover():
            with PERF.timer("bundling.cover"):
                return greedy_cover_masks(masks, universe_size)

        chosen = stage_memo("cover", _stage_params, _compute_cover)
        if span:
            span.set(bundles=len(chosen))
    return [frozenset(indices_from_mask(mask)) for mask in chosen]


def greedy_set_cover(candidates: Sequence[FrozenSet[int]],
                     universe_size: int) -> List[FrozenSet[int]]:
    """Greedy set cover: pick the max-marginal-coverage set each round.

    Args:
        candidates: the candidate family; its union must cover
            ``range(universe_size)``.
        universe_size: the number of elements (sensors) to cover.

    Returns:
        The selected sets, in selection order, with each set reduced to
        the *newly covered* elements (so the returned sets partition the
        universe — each sensor belongs to exactly one bundle, which is how
        charging responsibility is assigned downstream).

    Raises:
        CoverageError: when the candidates cannot cover the universe.
    """
    if bitset._USE_REFERENCE:
        return greedy_set_cover_reference(candidates, universe_size)
    try:
        masks = [mask_from_indices(members) for members in candidates]
    except ValueError:
        # Negative element: not representable as a bitmask; the linear
        # rescan handles it (such elements simply can never be covered).
        return greedy_set_cover_reference(candidates, universe_size)
    chosen = greedy_cover_masks(masks, universe_size)
    return [frozenset(indices_from_mask(mask)) for mask in chosen]


def greedy_cover_masks(masks: Sequence[int],
                       universe_size: int) -> List[int]:
    """Bitmask lazy-greedy set cover (the fast-path kernel).

    Selects the identical sequence as the reference linear rescan: the
    heap orders entries by ``(-gain, candidate_index)``, and a popped
    entry is accepted only when its recomputed gain equals its (stale)
    key — submodularity guarantees every other entry's true gain is no
    better, and the index component reproduces the reference's
    first-index tie-breaking.

    Returns:
        The chosen masks reduced to their newly covered elements.

    Raises:
        CoverageError: when the masks cannot cover ``range(universe_size)``.
    """
    if universe_size == 0:
        return []
    uncovered = (1 << universe_size) - 1
    # ``uncovered`` is all-ones here, so ``mask <= uncovered`` means the
    # mask lies inside the universe and the masking AND would return it
    # unchanged — skipping it avoids a big-int allocation per candidate.
    heap = [(-popcount(mask if mask <= uncovered else mask & uncovered),
             index, mask)
            for index, mask in enumerate(masks)]
    heapq.heapify(heap)
    chosen: List[int] = []
    reevaluations = 0

    while uncovered:
        selected_mask = -1
        while heap:
            neg_gain, index, mask = heap[0]
            gain = popcount(mask & uncovered)
            if gain == -neg_gain:
                if gain == 0:
                    break  # every remaining candidate is useless
                heapq.heappop(heap)
                selected_mask = mask
                break
            reevaluations += 1
            heapq.heapreplace(heap, (-gain, index, mask))
        if selected_mask < 0:
            PERF.add("bundling.cover.lazy_reevals", reevaluations)
            raise CoverageError(
                f"{popcount(uncovered)} sensors cannot be covered by any "
                f"candidate bundle")
        newly = selected_mask & uncovered
        chosen.append(newly)
        uncovered ^= newly  # newly is a subset, so XOR clears its bits
    PERF.add("bundling.cover.lazy_reevals", reevaluations)
    PERF.add("bundling.cover.selections", len(chosen))
    return chosen


def greedy_set_cover_reference(candidates: Sequence[FrozenSet[int]],
                               universe_size: int) -> List[FrozenSet[int]]:
    """The original per-round linear rescan, kept as the ground truth for
    the bitmask kernel's identity tests and the benchmark harness."""
    if universe_size == 0:
        return []
    uncovered: Set[int] = set(range(universe_size))
    remaining = [set(members) for members in candidates]
    chosen: List[FrozenSet[int]] = []

    while uncovered:
        best_index = -1
        best_gain = 0
        for i, members in enumerate(remaining):
            gain = len(members & uncovered)
            if gain > best_gain:
                best_gain = gain
                best_index = i
        if best_index < 0:
            raise CoverageError(
                f"{len(uncovered)} sensors cannot be covered by any "
                f"candidate bundle")
        newly = frozenset(remaining[best_index] & uncovered)
        chosen.append(newly)
        uncovered -= newly
    return chosen


def _materialize(member_sets: Sequence[FrozenSet[int]],
                 locations: Sequence[Point]) -> List[Bundle]:
    """Turn selected member sets into anchored bundles."""
    return [make_bundle(sorted(members), locations)
            for members in member_sets]


def singleton_bundles(network: SensorNetwork) -> BundleSet:
    """One bundle per sensor, anchored on the sensor itself.

    This is the degenerate ``r -> 0`` configuration, equivalent to the SC
    baseline's stop set; exposed for tests and for the radius sweep's left
    endpoint.
    """
    bundles = [Bundle(frozenset({sensor.index}), sensor.location, 0.0)
               for sensor in network]
    return BundleSet(bundles, 0.0)


def coverage_gain_curve(network: SensorNetwork,
                        radius: float) -> List[int]:
    """Return the greedy marginal-coverage sequence (diagnostics).

    Element ``i`` is how many new sensors the ``i``-th greedy pick covered;
    the sequence is non-increasing (a property the test suite asserts, as
    it is the heart of the Theorem 2 proof).  Shares the single
    enumeration + cover pass of :func:`greedy_bundles`.
    """
    selected = _selected_member_sets(network.locations, radius,
                                     len(network))
    return [len(members) for members in selected]
