"""Greedy charging-bundle generation — Algorithm 2 of the paper.

Greedy max-coverage over the candidate family: repeatedly pick the bundle
covering the most still-uncovered sensors.  Theorem 2 proves this is a
``ln n + 1`` approximation of the optimal bundle count (it is the greedy
set-cover bound).
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set

from ..errors import CoverageError
from ..geometry import Point
from ..network import SensorNetwork
from .bundle import Bundle, BundleSet, make_bundle
from .candidates import candidate_member_sets, maximal_candidates


def greedy_bundles(network: SensorNetwork, radius: float,
                   prune_dominated: bool = True) -> BundleSet:
    """Generate charging bundles greedily (the paper's Algorithm 2).

    Args:
        network: the sensor network to cover.
        radius: the generation radius ``r`` (Definition 3).
        prune_dominated: drop candidate sets strictly contained in others
            before selection; changes nothing about the result (a dominated
            set can never be the greedy argmax) but speeds selection up.

    Returns:
        A :class:`BundleSet` covering every sensor, each bundle anchored at
        its members' smallest-enclosing-disk center.

    Raises:
        CoverageError: if selection stalls before full coverage (cannot
            happen with the per-sensor singleton candidates, so this guards
            against internal bugs only).
    """
    locations = network.locations
    candidates = candidate_member_sets(locations, radius)
    if prune_dominated:
        candidates = maximal_candidates(candidates)
    selected = greedy_set_cover(candidates, len(network))
    bundles = _materialize(selected, locations)
    bundle_set = BundleSet(bundles, radius)
    bundle_set.validate_cover(network)
    return bundle_set


def greedy_set_cover(candidates: Sequence[FrozenSet[int]],
                     universe_size: int) -> List[FrozenSet[int]]:
    """Greedy set cover: pick the max-marginal-coverage set each round.

    Args:
        candidates: the candidate family; its union must cover
            ``range(universe_size)``.
        universe_size: the number of elements (sensors) to cover.

    Returns:
        The selected sets, in selection order, with each set reduced to
        the *newly covered* elements (so the returned sets partition the
        universe — each sensor belongs to exactly one bundle, which is how
        charging responsibility is assigned downstream).

    Raises:
        CoverageError: when the candidates cannot cover the universe.
    """
    if universe_size == 0:
        return []
    uncovered: Set[int] = set(range(universe_size))
    remaining = [set(members) for members in candidates]
    chosen: List[FrozenSet[int]] = []

    while uncovered:
        best_index = -1
        best_gain = 0
        for i, members in enumerate(remaining):
            gain = len(members & uncovered)
            if gain > best_gain:
                best_gain = gain
                best_index = i
        if best_index < 0:
            raise CoverageError(
                f"{len(uncovered)} sensors cannot be covered by any "
                f"candidate bundle")
        newly = frozenset(remaining[best_index] & uncovered)
        chosen.append(newly)
        uncovered -= newly
    return chosen


def _materialize(member_sets: Sequence[FrozenSet[int]],
                 locations: Sequence[Point]) -> List[Bundle]:
    """Turn selected member sets into anchored bundles."""
    return [make_bundle(sorted(members), locations)
            for members in member_sets]


def singleton_bundles(network: SensorNetwork) -> BundleSet:
    """One bundle per sensor, anchored on the sensor itself.

    This is the degenerate ``r -> 0`` configuration, equivalent to the SC
    baseline's stop set; exposed for tests and for the radius sweep's left
    endpoint.
    """
    bundles = [Bundle(frozenset({sensor.index}), sensor.location, 0.0)
               for sensor in network]
    return BundleSet(bundles, 0.0)


def coverage_gain_curve(network: SensorNetwork,
                        radius: float) -> List[int]:
    """Return the greedy marginal-coverage sequence (diagnostics).

    Element ``i`` is how many new sensors the ``i``-th greedy pick covered;
    the sequence is non-increasing (a property the test suite asserts, as
    it is the heart of the Theorem 2 proof).
    """
    candidates = maximal_candidates(
        candidate_member_sets(network.locations, radius))
    selected = greedy_set_cover(candidates, len(network))
    return [len(members) for members in selected]
