"""Charging bundles (Definitions 1-3 of the paper).

A :class:`Bundle` is a set of sensors charged simultaneously from one
*anchor point*.  The energy-optimal anchor for a fixed membership is the
center of the smallest enclosing disk of the member locations (the paper's
observation in Section III-B), because the dwell time is set by the
*farthest* member and the SED center minimizes that maximum distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Tuple

from ..errors import BundlingError, CoverageError
from ..geometry import Point, max_distance, smallest_enclosing_disk
from ..network import SensorNetwork


@dataclass(frozen=True)
class Bundle:
    """One charging bundle.

    Attributes:
        members: sensor indices charged from this bundle's anchor.
        anchor: the charging position (Definition 2).
        radius: the smallest enclosing disk radius of the members — the
            worst-case charging distance when charging from ``anchor``.
    """

    members: FrozenSet[int]
    anchor: Point
    radius: float

    def __post_init__(self) -> None:
        if not self.members:
            raise BundlingError("a bundle must contain at least one sensor")
        if self.radius < 0.0 or not math.isfinite(self.radius):
            raise BundlingError(f"invalid bundle radius: {self.radius!r}")

    def __len__(self) -> int:
        return len(self.members)

    def worst_distance(self, locations: Sequence[Point],
                       anchor: Point = None) -> float:
        """Return the farthest member distance from ``anchor``.

        Args:
            locations: the network's sensor locations (indexable by member
                index).
            anchor: override position; defaults to the bundle anchor.
        """
        position = anchor if anchor is not None else self.anchor
        return max_distance(position,
                            (locations[i] for i in self.members))

    def with_anchor(self, anchor: Point,
                    locations: Sequence[Point]) -> "Bundle":
        """Return a copy charged from a different anchor.

        The stored ``radius`` is recomputed as the new worst-case member
        distance, so downstream energy accounting stays consistent.
        """
        worst = max_distance(anchor, (locations[i] for i in self.members))
        return Bundle(self.members, anchor, worst)


def make_bundle(member_indices: Sequence[int],
                locations: Sequence[Point]) -> Bundle:
    """Build a bundle with the optimal (SED-center) anchor.

    Args:
        member_indices: sensor indices to include.
        locations: the network's sensor locations.

    Raises:
        BundlingError: on an empty member list.
    """
    members = frozenset(member_indices)
    if not members:
        raise BundlingError("cannot build a bundle from zero sensors")
    disk = smallest_enclosing_disk([locations[i] for i in sorted(members)])
    return Bundle(members, disk.center, disk.radius)


@dataclass
class BundleSet:
    """A complete bundle configuration for a network.

    Attributes:
        bundles: the selected bundles.
        bundle_radius: the generation radius ``r`` the configuration was
            built for (every bundle's own radius is <= this).
    """

    bundles: List[Bundle]
    bundle_radius: float
    assignment: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.bundle_radius < 0.0:
            raise BundlingError(
                f"invalid generation radius: {self.bundle_radius!r}")
        if not self.assignment:
            self.assignment = self._compute_assignment()

    def _compute_assignment(self) -> Tuple[int, ...]:
        """Map each covered sensor index to the bundle that charges it."""
        mapping = {}
        for bundle_index, bundle in enumerate(self.bundles):
            for sensor_index in bundle.members:
                # First bundle wins; generation never double-assigns, but a
                # hand-built overlap should still be deterministic.
                mapping.setdefault(sensor_index, bundle_index)
        if not mapping:
            return ()
        size = max(mapping) + 1
        ordered = [-1] * size
        for sensor_index, bundle_index in mapping.items():
            ordered[sensor_index] = bundle_index
        return tuple(ordered)

    def __len__(self) -> int:
        return len(self.bundles)

    def __iter__(self):
        return iter(self.bundles)

    def covered_sensors(self) -> FrozenSet[int]:
        """Return the union of all member sets."""
        covered: set = set()
        for bundle in self.bundles:
            covered |= bundle.members
        return frozenset(covered)

    def anchors(self) -> List[Point]:
        """Return the anchor points in bundle order."""
        return [bundle.anchor for bundle in self.bundles]

    def validate_cover(self, network: SensorNetwork) -> None:
        """Ensure every sensor of ``network`` is covered.

        Raises:
            CoverageError: listing the uncovered indices.
        """
        covered = self.covered_sensors()
        missing = [sensor.index for sensor in network
                   if sensor.index not in covered]
        if missing:
            raise CoverageError(
                f"{len(missing)} sensors uncovered: {missing[:10]}...")

    def validate_radius(self, network: SensorNetwork,
                        tol: float = 1e-6) -> None:
        """Ensure every bundle honours the generation radius.

        Raises:
            BundlingError: when a bundle's worst member distance exceeds
                ``bundle_radius`` beyond tolerance.
        """
        locations = network.locations
        slack = tol * max(1.0, self.bundle_radius)
        for bundle in self.bundles:
            worst = bundle.worst_distance(locations)
            if worst > self.bundle_radius + slack:
                raise BundlingError(
                    f"bundle at {bundle.anchor} has worst distance "
                    f"{worst:.6f} > radius {self.bundle_radius:.6f}")
