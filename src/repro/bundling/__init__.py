"""Charging-bundle generation (the paper's OBG problem, Section IV).

* :func:`greedy_bundles` — Algorithm 2, the ``ln n + 1``-approximate
  greedy generator.
* :func:`grid_bundles` — the grid baseline of He et al. [8].
* :func:`optimal_bundles` — exact minimum cover by branch and bound
  (Fig. 11's "optimal" line, small instances).
* :func:`find_optimal_radius` — the Section IV-C radius search.
"""

from .bundle import Bundle, BundleSet, make_bundle
from .candidates import (candidate_member_masks, candidate_member_sets,
                         maximal_candidates, maximal_masks,
                         validate_candidates)
from .greedy import (coverage_gain_curve, greedy_bundles,
                     greedy_cover_masks, greedy_set_cover,
                     singleton_bundles)
from .grid import grid_bundles, grid_cell_count
from .kcenter import (gonzalez_centers, kcenter_bundle_count,
                      kcenter_bundles)
from .optimal import (minimum_set_cover, optimal_bundle_count,
                      optimal_bundles)
from .radius_search import (RadiusSweepResult, find_optimal_radius,
                            refine_radius, sweep_radii)

__all__ = [
    "Bundle",
    "BundleSet",
    "RadiusSweepResult",
    "candidate_member_masks",
    "candidate_member_sets",
    "coverage_gain_curve",
    "find_optimal_radius",
    "gonzalez_centers",
    "greedy_bundles",
    "greedy_cover_masks",
    "greedy_set_cover",
    "maximal_masks",
    "grid_bundles",
    "grid_cell_count",
    "kcenter_bundle_count",
    "kcenter_bundles",
    "make_bundle",
    "maximal_candidates",
    "minimum_set_cover",
    "optimal_bundle_count",
    "optimal_bundles",
    "refine_radius",
    "singleton_bundles",
    "sweep_radii",
    "validate_candidates",
]
