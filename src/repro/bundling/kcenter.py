"""k-center bundle generation (Gonzalez's farthest-point traversal).

Minimum disk cover and k-center are dual problems: the smallest number
of radius-``r`` bundles equals the smallest ``k`` whose optimal
k-center radius is <= ``r``.  Gonzalez's farthest-point traversal gives
a 2-approximate k-center in O(n k); binary-searching ``k`` against the
decisional test "traversal radius <= r" yields a *fast* bundle
generator that trades a little count quality (vs the greedy set-cover
of Algorithm 2) for near-linear running time — the right tool when
``n`` is large or the bundle generator sits inside a radius sweep.

Guarantee: because the traversal is 2-approximate, the returned count
is at most the optimal count *for radius r/2*; empirically it sits
between greedy and the grid baseline (see the ablation bench).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..errors import BundlingError
from ..geometry import Point
from ..network import SensorNetwork
from .bundle import Bundle, BundleSet, make_bundle


def gonzalez_centers(points: Sequence[Point], k: int,
                     seed: int = 0) -> Tuple[List[int], float]:
    """Pick ``k`` centers by farthest-point traversal.

    Args:
        points: the point set.
        k: number of centers (clamped to ``len(points)``).
        seed: picks the (randomized) first center.

    Returns:
        ``(center_indices, radius)`` where ``radius`` is the maximum
        distance from any point to its nearest chosen center (the
        traversal's k-center objective value, <= 2x optimal).
    """
    n = len(points)
    if n == 0:
        return [], 0.0
    if k <= 0:
        raise BundlingError(f"need at least one center: {k!r}")
    k = min(k, n)
    rng = random.Random(seed)
    first = rng.randrange(n)
    centers = [first]
    nearest = [points[i].distance_to(points[first]) for i in range(n)]
    while len(centers) < k:
        farthest = max(range(n), key=lambda i: nearest[i])
        if nearest[farthest] == 0.0:
            break  # every remaining point coincides with a center
        centers.append(farthest)
        for i in range(n):
            distance = points[i].distance_to(points[farthest])
            if distance < nearest[i]:
                nearest[i] = distance
    return centers, max(nearest) if nearest else 0.0


def kcenter_bundles(network: SensorNetwork, radius: float,
                    seed: int = 0) -> BundleSet:
    """Cover the network with bundles via k-center binary search.

    Finds the smallest ``k`` whose Gonzalez traversal radius is
    <= ``radius``, assigns every sensor to its nearest center, and
    re-anchors each group at its smallest-enclosing-disk center (which
    can only shrink the worst distance, so the radius constraint is
    preserved).

    Args:
        network: the sensors to cover.
        radius: the bundle radius ``r``.
        seed: traversal seed (first-center choice).

    Raises:
        BundlingError: on a negative radius.
    """
    if radius < 0.0:
        raise BundlingError(f"negative bundle radius: {radius!r}")
    points = network.locations
    n = len(points)
    if n == 0:
        return BundleSet([], radius)

    def radius_for(k: int) -> Tuple[List[int], float]:
        return gonzalez_centers(points, k, seed=seed)

    # Exponential probe then binary search on the smallest feasible k.
    # The traversal radius is non-increasing in k for a fixed traversal
    # order (adding centers never hurts), so the search is sound.
    low, high = 1, 1
    centers, reach = radius_for(1)
    while reach > radius and high < n:
        low = high + 1
        high = min(n, high * 2)
        centers, reach = radius_for(high)
    if reach > radius:
        # Degenerate: duplicated points always terminate above, so this
        # only happens for radius < 0 handled earlier; keep a guard.
        high = n
        centers, reach = radius_for(n)

    best_centers: Optional[List[int]] = centers if reach <= radius \
        else None
    while low < high:
        middle = (low + high) // 2
        centers, reach = radius_for(middle)
        if reach <= radius:
            best_centers = centers
            high = middle
        else:
            low = middle + 1
    if best_centers is None:
        best_centers, _ = radius_for(high)

    # Assign sensors to their nearest center; re-anchor per group.
    groups: List[List[int]] = [[] for _ in best_centers]
    for index, point in enumerate(points):
        owner = min(range(len(best_centers)),
                    key=lambda c: point.distance_to(
                        points[best_centers[c]]))
        groups[owner].append(index)

    bundles: List[Bundle] = [make_bundle(group, points)
                             for group in groups if group]
    bundle_set = BundleSet(bundles, radius)
    bundle_set.validate_cover(network)
    bundle_set.validate_radius(network)
    return bundle_set


def kcenter_bundle_count(network: SensorNetwork, radius: float,
                         seed: int = 0) -> int:
    """Return only the k-center cover's bundle count."""
    return len(kcenter_bundles(network, radius, seed=seed))
