"""Grid-based bundle generation — the baseline of He et al. [8].

The field is partitioned into square cells and each non-empty cell becomes
a charging bundle.  To make a cell a *valid* radius-``r`` bundle, every
point in the cell must lie within ``r`` of the cell center, so the cell
side is ``r * sqrt(2)`` (the cell's circumradius is then exactly ``r``).

This baseline ignores the actual point geometry — a cluster straddling a
cell border becomes two bundles — which is why the paper's Fig. 11 shows
it needing notably more bundles than greedy at small radii.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Tuple

from ..errors import BundlingError
from ..geometry import Point, smallest_enclosing_disk
from ..network import SensorNetwork
from .bundle import Bundle, BundleSet


def grid_bundles(network: SensorNetwork, radius: float,
                 recentre: bool = False) -> BundleSet:
    """Partition the field into cells of side ``r * sqrt(2)``.

    Args:
        network: the sensor network to cover.
        radius: the bundle radius ``r``.
        recentre: when True, anchor each bundle at its members' SED center
            instead of the geometric cell center (a strictly better anchor;
            off by default to match the baseline as published).

    Returns:
        A :class:`BundleSet` with one bundle per non-empty cell.
    """
    if radius <= 0.0 or not math.isfinite(radius):
        raise BundlingError(f"invalid bundle radius: {radius!r}")
    cell_side = radius * math.sqrt(2.0)

    cells: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    for sensor in network:
        key = (math.floor(sensor.location.x / cell_side),
               math.floor(sensor.location.y / cell_side))
        cells[key].append(sensor.index)

    locations = network.locations
    bundles: List[Bundle] = []
    for (cx, cy), members in sorted(cells.items()):
        if recentre:
            disk = smallest_enclosing_disk(
                [locations[i] for i in members])
            anchor, worst = disk.center, disk.radius
        else:
            anchor = Point((cx + 0.5) * cell_side, (cy + 0.5) * cell_side)
            worst = max(anchor.distance_to(locations[i]) for i in members)
        bundles.append(Bundle(frozenset(members), anchor, worst))

    bundle_set = BundleSet(bundles, radius)
    bundle_set.validate_cover(network)
    return bundle_set


def grid_cell_count(network: SensorNetwork, radius: float) -> int:
    """Return the number of non-empty cells without building bundles."""
    return len(grid_bundles(network, radius).bundles)
