"""Exact (exhaustive) bundle generation — the "optimal" curve of Fig. 11.

Solves minimum set cover over the candidate-disk family exactly with a
branch-and-bound search.  Set cover is NP-hard (Theorem 1), so this is
only feasible for the small instances on which the paper reports the
optimal line; the implementation guards itself with an explicit node
budget rather than silently hanging.
"""

from __future__ import annotations

import math
from typing import FrozenSet, List, Sequence, Set

from ..errors import BundlingError, CoverageError
from ..network import SensorNetwork
from .bundle import BundleSet, make_bundle
from .candidates import candidate_member_sets, maximal_candidates
from .greedy import greedy_set_cover


def optimal_bundles(network: SensorNetwork, radius: float,
                    node_budget: int = 2_000_000) -> BundleSet:
    """Return a provably minimum-cardinality bundle cover.

    Args:
        network: the sensor network to cover.
        radius: the generation radius ``r``.
        node_budget: maximum branch-and-bound nodes to explore before
            giving up.

    Raises:
        BundlingError: when the search exceeds ``node_budget`` (instance
            too large for exact solving).
    """
    locations = network.locations
    candidates = maximal_candidates(
        candidate_member_sets(locations, radius))
    selected = minimum_set_cover(candidates, len(network),
                                 node_budget=node_budget)
    bundles = [make_bundle(sorted(members), locations)
               for members in _disjointify(selected)]
    bundle_set = BundleSet(bundles, radius)
    bundle_set.validate_cover(network)
    return bundle_set


def _disjointify(selected: Sequence[FrozenSet[int]]
                 ) -> List[FrozenSet[int]]:
    """Assign each covered element to exactly one selected set."""
    assigned: Set[int] = set()
    result: List[FrozenSet[int]] = []
    for members in selected:
        fresh = frozenset(members - assigned)
        if fresh:
            result.append(fresh)
            assigned |= members
    return result


def minimum_set_cover(candidates: Sequence[FrozenSet[int]],
                      universe_size: int,
                      node_budget: int = 2_000_000
                      ) -> List[FrozenSet[int]]:
    """Exact minimum set cover via branch and bound.

    The search branches on the lowest-index uncovered element: one of the
    candidate sets containing it *must* be chosen, so the branching factor
    is the element's candidate degree.  The greedy solution provides the
    initial upper bound; a simple max-set-size lower bound prunes.

    Args:
        candidates: the candidate family.
        universe_size: elements to cover are ``range(universe_size)``.
        node_budget: abort threshold on explored nodes.

    Returns:
        A minimum-cardinality sub-family covering the universe.

    Raises:
        CoverageError: when full coverage is impossible.
        BundlingError: when the node budget is exhausted.
    """
    if universe_size == 0:
        return []

    family = [frozenset(members) for members in candidates]
    covering: List[List[int]] = [[] for _ in range(universe_size)]
    for set_index, members in enumerate(family):
        for element in members:
            if 0 <= element < universe_size:
                covering[element].append(set_index)
    for element in range(universe_size):
        if not covering[element]:
            raise CoverageError(
                f"element {element} is not covered by any candidate")

    greedy_solution = greedy_set_cover(family, universe_size)
    best_size = len(greedy_solution)
    best: List[FrozenSet[int]] = list(greedy_solution)
    max_set_size = max(len(members) for members in family)

    nodes_explored = 0

    def search(uncovered: Set[int], chosen: List[int]) -> None:
        nonlocal best, best_size, nodes_explored
        nodes_explored += 1
        if nodes_explored > node_budget:
            raise BundlingError(
                f"exact set cover exceeded node budget ({node_budget})")
        if not uncovered:
            if len(chosen) < best_size:
                best_size = len(chosen)
                best = [family[i] for i in chosen]
            return
        # Lower bound: need at least ceil(|uncovered| / max set size).
        lower = len(chosen) + math.ceil(len(uncovered) / max_set_size)
        if lower >= best_size:
            return
        pivot = min(uncovered)
        # Branch on the sets covering the pivot, biggest gain first.
        branches = sorted(covering[pivot],
                          key=lambda i: -len(family[i] & uncovered))
        for set_index in branches:
            gained = family[set_index] & uncovered
            chosen.append(set_index)
            search(uncovered - gained, chosen)
            chosen.pop()

    search(set(range(universe_size)), [])
    return best


def optimal_bundle_count(network: SensorNetwork, radius: float,
                         node_budget: int = 2_000_000) -> int:
    """Return only the minimum bundle count (Fig. 11's optimal line)."""
    return len(optimal_bundles(network, radius, node_budget=node_budget))
