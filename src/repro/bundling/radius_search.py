"""Optimal bundle-radius selection (paper Section IV-C).

The paper observes that total energy is U-shaped in the bundle radius and
recommends "try different charging bundle radii until a best bundle radius
is found".  This module provides exactly that: a deterministic sweep with
optional local refinement around the best coarse radius.

The objective is supplied by the caller (typically
``lambda r: plan_with_radius(r).energy.total_j``), which keeps this module
free of planner dependencies and reusable for ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..errors import BundlingError

Objective = Callable[[float], float]


@dataclass(frozen=True)
class RadiusSweepResult:
    """Outcome of a radius sweep.

    Attributes:
        best_radius: the minimizing radius found.
        best_value: the objective at ``best_radius``.
        evaluations: every ``(radius, value)`` pair evaluated, in order.
    """

    best_radius: float
    best_value: float
    evaluations: Tuple[Tuple[float, float], ...]


def sweep_radii(objective: Objective,
                radii: Sequence[float]) -> RadiusSweepResult:
    """Evaluate ``objective`` on every radius and return the best.

    Args:
        objective: maps a bundle radius to a cost (e.g. total energy).
        radii: the radii to try; must be non-empty.

    Raises:
        BundlingError: on an empty radius list.
    """
    if not radii:
        raise BundlingError("radius sweep needs at least one radius")
    evaluations: List[Tuple[float, float]] = []
    best_radius = radii[0]
    best_value = math.inf
    for radius in radii:
        value = objective(radius)
        evaluations.append((radius, value))
        if value < best_value:
            best_value = value
            best_radius = radius
    return RadiusSweepResult(best_radius, best_value, tuple(evaluations))


def refine_radius(objective: Objective, coarse: RadiusSweepResult,
                  rounds: int = 3) -> RadiusSweepResult:
    """Refine a coarse sweep by bisecting around the best radius.

    Each round evaluates the midpoints between the incumbent and its two
    sweep neighbours and adopts any improvement.  With a U-shaped
    objective this converges toward the interior optimum; with a noisy or
    flat objective it simply keeps the coarse best.

    Args:
        objective: same objective as the coarse sweep.
        coarse: result of :func:`sweep_radii`.
        rounds: number of bisection rounds.
    """
    evaluations = list(coarse.evaluations)
    radii_sorted = sorted(radius for radius, _ in evaluations)
    best_radius, best_value = coarse.best_radius, coarse.best_value

    position = radii_sorted.index(best_radius)
    left = radii_sorted[position - 1] if position > 0 else best_radius
    right = (radii_sorted[position + 1]
             if position + 1 < len(radii_sorted) else best_radius)

    for _ in range(rounds):
        probes = []
        if left < best_radius:
            probes.append((left + best_radius) / 2.0)
        if right > best_radius:
            probes.append((best_radius + right) / 2.0)
        if not probes:
            break
        improved = False
        for radius in probes:
            value = objective(radius)
            evaluations.append((radius, value))
            if value < best_value:
                # Shrink the bracket around the new incumbent.
                if radius < best_radius:
                    right = best_radius
                else:
                    left = best_radius
                best_radius, best_value = radius, value
                improved = True
        if not improved:
            left = (left + best_radius) / 2.0
            right = (best_radius + right) / 2.0
    return RadiusSweepResult(best_radius, best_value, tuple(evaluations))


def find_optimal_radius(objective: Objective, radii: Sequence[float],
                        refine_rounds: int = 0) -> RadiusSweepResult:
    """Sweep then optionally refine; the Section IV-C procedure."""
    coarse = sweep_radii(objective, radii)
    if refine_rounds <= 0:
        return coarse
    return refine_radius(objective, coarse, rounds=refine_rounds)
