"""Int-bitmask member sets — the fast-path representation for set cover.

Candidate bundles are subsets of ``range(n)``; an arbitrary-precision
Python int with bit ``i`` set for member ``i`` supports the three
operations the cover pipeline hammers — intersection size, subset test,
and set difference — as single C-level integer ops instead of hashed
frozenset traversals:

* gain            ``popcount(mask & uncovered)``
* dominance       ``mask & other == mask``  (``mask ⊆ other``)
* mark covered    ``uncovered &= ~mask``

The flag :data:`_USE_REFERENCE` routes the public bundling entry points
back through the original frozenset implementations; it exists for the
benchmark harness and the bit-for-bit identity tests and is flipped only
via :func:`repro.perf.reference_kernels`.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["mask_from_indices", "indices_from_mask", "popcount"]

#: When True, bundling entry points use the pre-fast-path implementations.
_USE_REFERENCE = False

try:  # int.bit_count is Python 3.10+; fall back for 3.9.
    popcount = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on 3.9
    def popcount(mask: int) -> int:
        """Return the number of set bits in ``mask``."""
        return bin(mask).count("1")


def mask_from_indices(indices: Iterable[int]) -> int:
    """Pack non-negative indices into a bitmask.

    Raises:
        ValueError: on a negative index (propagated from the shift).
    """
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def indices_from_mask(mask: int) -> List[int]:
    """Unpack a bitmask into its ascending member indices."""
    indices: List[int] = []
    while mask:
        low = mask & -mask
        indices.append(low.bit_length() - 1)
        mask ^= low
    return indices
