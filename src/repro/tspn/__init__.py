"""TSP with Neighborhoods: the substrate behind the BTO reduction.

Disk neighborhoods, a two-stage heuristic solver (center TSP +
Theorem 4-style touching-point refinement), and a TSPN-based charging
planner that brackets the paper's baselines.
"""

from .neighborhood import (DiskNeighborhood, neighborhoods_from_points,
                           tour_visits_all)
from .planner import TspnChargingPlanner
from .solvers import TspnSolution, center_tour_length, solve_tspn

__all__ = [
    "DiskNeighborhood",
    "TspnChargingPlanner",
    "TspnSolution",
    "center_tour_length",
    "neighborhoods_from_points",
    "solve_tspn",
    "tour_visits_all",
]
