"""TSPN heuristics.

Two stages, both deterministic:

1. **Ordering** — a TSP tour over the neighborhood *centers* (any
   strategy from :mod:`repro.tsp`).  For bounded-overlap disks this is
   already a constant-factor TSPN approximation (Dumitrescu & Mitchell
   2001 analyze exactly this family).
2. **Touching-point refinement** — coordinate descent over the visit
   points: each neighborhood's visit point is re-optimized against its
   tour neighbours.  For a disk the sub-problem "minimize
   ``|prev - p| + |p - next|`` over ``p`` in the disk" has a closed
   characterization: if the straight leg crosses the disk the optimum is
   free (any crossing point); otherwise the optimum lies on the boundary
   at the ellipse tangency point — the very object of the paper's
   Theorem 4 — so the refinement reuses
   :func:`repro.geometry.min_focal_sum_on_circle`.

The same machinery optimizes both the classic TSPN objective and, with
``skip_interior=False``, the "stop inside every disk" variant the
charging problem needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import TourError
from ..geometry import Point, Segment, min_focal_sum_on_circle, \
    polyline_length
from ..tsp import solve_tsp
from .neighborhood import DiskNeighborhood


@dataclass(frozen=True)
class TspnSolution:
    """A TSPN tour.

    Attributes:
        order: visiting order (indices into the neighborhood list).
        points: the visit point chosen inside each neighborhood,
            aligned with ``order``.
    """

    order: List[int]
    points: List[Point]

    def length(self) -> float:
        """Return the closed-tour length through the visit points."""
        return polyline_length(self.points, closed=True)


def solve_tspn(neighborhoods: Sequence[DiskNeighborhood],
               tsp_strategy: str = "nn+2opt",
               refinement_rounds: int = 4,
               depot: Optional[Point] = None,
               seed: int = 0) -> TspnSolution:
    """Solve TSPN over disk neighborhoods heuristically.

    Args:
        neighborhoods: disks to visit.
        tsp_strategy: ordering strategy (see :func:`repro.tsp.solve_tsp`).
        refinement_rounds: coordinate-descent sweeps over visit points.
        depot: optional fixed start/end point, visited between the last
            and first neighborhood.
        seed: TSP seed.

    Returns:
        A :class:`TspnSolution`; its length never exceeds the
        center-tour length.
    """
    n = len(neighborhoods)
    if n == 0:
        return TspnSolution(order=[], points=[])
    centers = [nb.center for nb in neighborhoods]
    if n == 1:
        return TspnSolution(order=[0], points=[centers[0]])

    cities = list(centers)
    if depot is not None:
        cities.append(depot)
        tour = solve_tsp(cities, strategy=tsp_strategy, seed=seed)
        rooted = tour.rotated_to_start(n)
        order = [city for city in rooted if city != n]
    else:
        order = solve_tsp(cities, strategy=tsp_strategy,
                          seed=seed).order
    if sorted(order) != list(range(n)):
        raise TourError("TSPN ordering lost neighborhoods")

    points = [centers[i] for i in order]
    for _ in range(max(0, refinement_rounds)):
        moved = _refine_pass(order, points, neighborhoods, depot)
        if not moved:
            break
    return TspnSolution(order=order, points=points)


def _refine_pass(order: Sequence[int], points: List[Point],
                 neighborhoods: Sequence[DiskNeighborhood],
                 depot: Optional[Point]) -> bool:
    """One coordinate-descent sweep; returns True when a point moved."""
    n = len(points)
    moved = False
    for position in range(n):
        prev_point = _neighbor(points, depot, position, -1)
        next_point = _neighbor(points, depot, position, +1)
        neighborhood = neighborhoods[order[position]]
        best = _best_visit_point(neighborhood, prev_point, next_point)
        if best.distance_to(points[position]) > 1e-9:
            old = (points[position].distance_to(prev_point)
                   + points[position].distance_to(next_point))
            new = (best.distance_to(prev_point)
                   + best.distance_to(next_point))
            if new < old - 1e-9:
                points[position] = best
                moved = True
    return moved


def _best_visit_point(neighborhood: DiskNeighborhood, prev_point: Point,
                      next_point: Point) -> Point:
    """Minimize ``|prev - p| + |p - next|`` over the disk."""
    segment = Segment(prev_point, next_point)
    if segment.intersects_disk(neighborhood.disk):
        # The leg crosses the disk: visiting is free along the chord.
        return neighborhood.entry_on_segment(segment)
    if neighborhood.radius == 0.0:
        return neighborhood.center
    point, _ = min_focal_sum_on_circle(
        neighborhood.center, neighborhood.radius, prev_point,
        next_point)
    return point


def _neighbor(points: Sequence[Point], depot: Optional[Point],
              index: int, direction: int) -> Point:
    """Cyclic tour neighbour, with the depot between last and first."""
    n = len(points)
    target = index + direction
    if depot is not None and (target < 0 or target >= n):
        return depot
    return points[target % n]


def center_tour_length(neighborhoods: Sequence[DiskNeighborhood],
                       tsp_strategy: str = "nn+2opt",
                       depot: Optional[Point] = None,
                       seed: int = 0) -> float:
    """Return the unrefined center-tour length (the stage-1 baseline)."""
    solution = solve_tspn(neighborhoods, tsp_strategy=tsp_strategy,
                          refinement_rounds=0, depot=depot, seed=seed)
    points = list(solution.points)
    if depot is not None:
        points = [depot] + points
    return polyline_length(points, closed=True)
