"""Neighborhoods for TSP-with-Neighborhoods (TSPN).

The paper proves BTO NP-hard by reduction to TSPN [12, 29]: visiting a
charging bundle = entering a disk neighborhood.  This package builds the
TSPN substrate itself, so the reduction can be *run*, not just cited —
and so a TSPN-style planner can serve as an additional baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import GeometryError
from ..geometry import Disk, Point, Segment


@dataclass(frozen=True)
class DiskNeighborhood:
    """A disk a tour must touch.

    Attributes:
        disk: the region.
        label: optional identifier (e.g. the sensor index it covers).
    """

    disk: Disk
    label: int = -1

    @property
    def center(self) -> Point:
        """Return the disk center."""
        return self.disk.center

    @property
    def radius(self) -> float:
        """Return the disk radius."""
        return self.disk.radius

    def contains(self, point: Point) -> bool:
        """Return True when ``point`` is inside the neighborhood."""
        return self.disk.contains(point)

    def closest_point(self, point: Point) -> Point:
        """Return the neighborhood point nearest to ``point``."""
        if self.disk.contains(point):
            return point
        direction = point - self.disk.center
        if direction.norm() == 0.0:
            return self.disk.center + Point(self.disk.radius, 0.0)
        return (self.disk.center
                + direction.normalized() * self.disk.radius)

    def entry_on_segment(self, segment: Segment) -> Point:
        """Return a visit point for a tour leg crossing the disk.

        When the leg crosses the neighborhood, visiting is free: the
        first crossing point is returned.  Otherwise the disk point
        nearest the segment is returned (the cheapest detour target).
        """
        if segment.intersects_disk(self.disk):
            return segment.first_point_in_disk(self.disk)
        nearest_on_segment = segment.closest_point(self.disk.center)
        return self.closest_point(nearest_on_segment)


def neighborhoods_from_points(points: Sequence[Point],
                              radius: float) -> list:
    """Build one radius-``radius`` neighborhood per point."""
    if radius < 0.0:
        raise GeometryError(f"negative neighborhood radius: {radius!r}")
    return [DiskNeighborhood(Disk(point, radius), label=i)
            for i, point in enumerate(points)]


def tour_visits_all(waypoints: Sequence[Point],
                    neighborhoods: Sequence[DiskNeighborhood],
                    tol: float = 1e-7) -> bool:
    """Check a TSPN tour: does some leg or waypoint touch each disk?

    Args:
        waypoints: the closed tour's waypoints (cyclic).
        neighborhoods: the disks to visit.
        tol: containment slack.
    """
    if not neighborhoods:
        return True
    if not waypoints:
        return False
    legs = [Segment(waypoints[i], waypoints[(i + 1) % len(waypoints)])
            for i in range(len(waypoints))]
    for neighborhood in neighborhoods:
        grown = Disk(neighborhood.center,
                     neighborhood.radius * (1.0 + tol) + tol)
        if any(leg.intersects_disk(grown) for leg in legs):
            continue
        return False
    return True
