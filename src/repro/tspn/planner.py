"""A TSPN-based charging planner.

The "reach every sensor's disk" formulation of the traditional
trajectory literature [4, 6, 28], made executable: each sensor gets a
radius-``r`` neighborhood, a TSPN tour is computed, and every tour stop
charges all sensors whose disks it lies in.  Unlike CSS (which starts
from the per-sensor TSP tour and patches it), this planner attacks TSPN
directly; unlike BC it never reasons about charging cost when placing
stops — so it brackets the baselines from the other side.
"""

from __future__ import annotations

from typing import Dict, List

from ..charging import CostParameters
from ..errors import PlanError
from ..network import SensorNetwork
from ..planners.base import Planner
from ..tour import ChargingPlan, stop_for_sensors
from .neighborhood import neighborhoods_from_points
from .solvers import solve_tspn

try:  # tracing is optional: TSPN planning works with repro.obs absent
    from ..obs.tracer import obs_span
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()


class TspnChargingPlanner(Planner):
    """Charge from a TSPN tour over per-sensor disks."""

    name = "TSPN"

    def __init__(self, radius: float, tsp_strategy: str = "nn+2opt",
                 use_depot: bool = True, seed: int = 0,
                 refinement_rounds: int = 4) -> None:
        """Create the planner.

        Args:
            radius: per-sensor neighborhood radius ``r``.
            tsp_strategy: ordering strategy.
            use_depot: root the tour at the base station.
            seed: TSP seed.
            refinement_rounds: TSPN touching-point sweeps.
        """
        super().__init__(tsp_strategy=tsp_strategy, use_depot=use_depot,
                         seed=seed)
        if radius < 0.0:
            raise PlanError(f"negative TSPN radius: {radius!r}")
        self.radius = radius
        self.refinement_rounds = refinement_rounds

    def plan(self, network: SensorNetwork,
             cost: CostParameters) -> ChargingPlan:
        """Solve TSPN, merge co-covered sensors, size the dwells."""
        locations = network.locations
        depot = self._depot_for(network)
        neighborhoods = neighborhoods_from_points(locations, self.radius)
        with obs_span("bto.tspn", n=len(neighborhoods),
                      radius_m=self.radius) as span:
            solution = solve_tspn(
                neighborhoods, tsp_strategy=self.tsp_strategy,
                refinement_rounds=self.refinement_rounds, depot=depot,
                seed=self.seed)
            if span:
                span.set(tour_points=len(solution.points))

        # Assign every sensor to the visit point nearest it among those
        # within range (ties to the earlier stop); by construction each
        # sensor's own neighborhood is visited, so a feasible stop
        # always exists.
        assignment: Dict[int, int] = {}
        for sensor_index in range(len(network)):
            best_position = -1
            best_distance = float("inf")
            for position, point in enumerate(solution.points):
                distance = point.distance_to(locations[sensor_index])
                if distance <= self.radius * (1 + 1e-9) + 1e-9 \
                        and distance < best_distance:
                    best_distance = distance
                    best_position = position
            if best_position < 0:
                raise PlanError(
                    f"TSPN tour misses sensor {sensor_index}")
            assignment[sensor_index] = best_position

        members: List[List[int]] = [[] for _ in solution.points]
        for sensor_index, position in assignment.items():
            members[position].append(sensor_index)

        stops = tuple(
            stop_for_sensors(solution.points[position],
                             members[position], locations, cost)
            for position in range(len(solution.points))
            if members[position])
        plan = ChargingPlan(stops=stops, depot=depot, label=self.name)
        plan.validate_complete(len(network))
        return plan
