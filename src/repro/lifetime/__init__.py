"""Long-horizon network-lifetime simulation.

Closes the paper's energy loop: sensors drain (constant or Poisson
event-driven), a charging round triggers when enough run low, the
planner's mission recharges them, repeat — yielding operational metrics
(availability, charger energy per day, downtime) per planner.
"""

from .consumption import ConstantDrain, ConsumptionModel, EventDrain
from .simulation import (LifetimeResult, LifetimeSimulator, RoundRecord)

__all__ = [
    "ConstantDrain",
    "ConsumptionModel",
    "EventDrain",
    "LifetimeResult",
    "LifetimeSimulator",
    "RoundRecord",
]
