"""Long-horizon network-lifetime simulation.

Closes the paper's energy loop: sensors drain (constant or Poisson
event-driven), a charging round triggers when enough run low, the
planner's mission recharges them, repeat — yielding operational metrics
(availability, charger energy per day, downtime) per planner.  An
optional :class:`ChurnModel` evolves the network itself (drift, death,
joins, one-shot failure injection); rounds then flow through the
incremental repairer (:mod:`repro.delta`) instead of fresh replans.
"""

from .churn import ChurnModel
from .consumption import ConstantDrain, ConsumptionModel, EventDrain
from .simulation import (LifetimeResult, LifetimeSimulator, RoundRecord)

__all__ = [
    "ChurnModel",
    "ConstantDrain",
    "ConsumptionModel",
    "EventDrain",
    "LifetimeResult",
    "LifetimeSimulator",
    "RoundRecord",
]
