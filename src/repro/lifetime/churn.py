"""Network churn for the lifetime simulator.

Dense sensor deployments are not static over a multi-day horizon:
nodes drift (re-deployment, environmental displacement), die
(hardware failure, not just energy exhaustion) and join (incremental
rollout).  :class:`ChurnModel` turns those processes into the typed
delta vocabulary of :mod:`repro.delta.events`, one batch per charging
round, so the simulator can *repair* its retained plan between rounds
instead of replanning from scratch.

Determinism contract: every round's batch is a pure function of
``(seed, round_index)`` plus the network snapshot it is applied to —
the per-round stream is ``random.Random(seed * 1_000_003 +
round_index)``, never a shared generator — so simulations agree
byte-for-byte however the surrounding experiment harness schedules
them (any ``--jobs``, any interleaving, resumed or not).

Failure injection rides alongside the stochastic churn: at
``failure_time_s`` the model emits one batch of ``sensor_died``
records for ``nodes_to_kill`` seeded-uniform victims — the classic
"k nodes fail at time t" experiment — and never fires again.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError

__all__ = ["ChurnModel"]

#: Per-round stream stride (a prime, so round streams never collide
#: with plain consecutive seeds used elsewhere).
_ROUND_STRIDE = 1_000_003


class ChurnModel:
    """Seeded per-round network churn, expressed as delta records.

    Args:
        move_rate: per-sensor probability of drifting this round.
        death_rate: per-sensor probability of (hardware) death this
            round.
        join_rate: expected number of sensors joining per round (the
            fractional part resolves by a seeded coin flip).
        drift_m: half-width of the uniform per-axis drift; moved
            sensors land clamped inside the field.
        seed: churn stream seed.
        failure_time_s: optional one-shot failure-injection time; at
            the first query at-or-after it, ``nodes_to_kill`` alive
            sensors die in one batch.
        nodes_to_kill: how many sensors the failure injection kills.
    """

    def __init__(self, move_rate: float = 0.0, death_rate: float = 0.0,
                 join_rate: float = 0.0, drift_m: float = 5.0,
                 seed: int = 0,
                 failure_time_s: Optional[float] = None,
                 nodes_to_kill: int = 0) -> None:
        for name, rate in (("move_rate", move_rate),
                           ("death_rate", death_rate)):
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(
                    f"{name} must be a probability in [0, 1]: {rate!r}")
        if join_rate < 0.0 or not math.isfinite(join_rate):
            raise SimulationError(
                f"join_rate must be a finite non-negative expected "
                f"count: {join_rate!r}")
        if drift_m < 0.0 or not math.isfinite(drift_m):
            raise SimulationError(f"invalid drift_m: {drift_m!r}")
        if failure_time_s is not None and (
                not math.isfinite(failure_time_s) or failure_time_s < 0.0):
            raise SimulationError(
                f"invalid failure_time_s: {failure_time_s!r}")
        if nodes_to_kill < 0:
            raise SimulationError(
                f"nodes_to_kill must be non-negative: {nodes_to_kill!r}")
        if nodes_to_kill > 0 and failure_time_s is None:
            raise SimulationError(
                "nodes_to_kill needs a failure_time_s to fire at")
        self.move_rate = move_rate
        self.death_rate = death_rate
        self.join_rate = join_rate
        self.drift_m = drift_m
        self.seed = seed
        self.failure_time_s = failure_time_s
        self.nodes_to_kill = nodes_to_kill
        self._failure_fired = False

    # --- per-round stochastic churn ------------------------------------

    def round_rng(self, round_index: int) -> random.Random:
        """The round's private stream (pure in seed and round index)."""
        return random.Random(self.seed * _ROUND_STRIDE + round_index)

    def deltas_for_round(self, round_index: int,
                         locations: Sequence[Tuple[float, float]],
                         alive: Sequence[bool],
                         field_side_m: float) -> List[Dict[str, Any]]:
        """Draw round ``round_index``'s churn batch as delta records.

        Deaths trump moves (a sensor never does both in one round);
        records come out deaths-then-moves-then-joins, each group in
        ascending index order, so the batch itself is deterministic.
        """
        rng = self.round_rng(round_index)
        died: List[Dict[str, Any]] = []
        moved: List[Dict[str, Any]] = []
        for index, is_alive in enumerate(alive):
            if not is_alive:
                continue
            if rng.random() < self.death_rate:
                died.append({"type": "sensor_died", "v": 1,
                             "index": index})
                continue
            if rng.random() < self.move_rate:
                x, y = locations[index]
                nx = min(field_side_m,
                         max(0.0, x + rng.uniform(-self.drift_m,
                                                  self.drift_m)))
                ny = min(field_side_m,
                         max(0.0, y + rng.uniform(-self.drift_m,
                                                  self.drift_m)))
                moved.append({"type": "sensor_moved", "v": 1,
                              "index": index, "x": nx, "y": ny})
        joins = int(self.join_rate)
        if rng.random() < self.join_rate - joins:
            joins += 1
        joined = [{"type": "sensor_joined", "v": 1,
                   "x": rng.uniform(0.0, field_side_m),
                   "y": rng.uniform(0.0, field_side_m)}
                  for _ in range(joins)]
        return died + moved + joined

    # --- one-shot failure injection ------------------------------------

    def failure_deltas(self, now_s: float,
                       alive: Sequence[bool]) -> List[Dict[str, Any]]:
        """Return the failure batch if injection fires at ``now_s``.

        One-shot: the first call at-or-after ``failure_time_s`` kills
        ``nodes_to_kill`` seeded-uniform alive sensors (fewer if the
        network is smaller); later calls return nothing.
        """
        if (self._failure_fired or self.failure_time_s is None
                or now_s < self.failure_time_s
                or self.nodes_to_kill == 0):
            return []
        self._failure_fired = True
        candidates = [index for index, is_alive in enumerate(alive)
                      if is_alive]
        rng = random.Random(self.seed * _ROUND_STRIDE - 1)
        victims = sorted(rng.sample(
            candidates, min(self.nodes_to_kill, len(candidates))))
        return [{"type": "sensor_died", "v": 1, "index": index}
                for index in victims]
