"""Sensor energy-consumption models.

The paper's network model triggers a charging round once sensors run
out of power; to simulate that over a long horizon we need the other
half of the energy loop — how sensors *spend* energy.  Two standard
models:

* :class:`ConstantDrain` — each sensor draws a fixed power (duty-cycled
  sensing), optionally heterogeneous across sensors.
* :class:`EventDrain` — sensors spend a fixed energy per detected
  event, events arriving as a Poisson process (the stochastic-event
  setting of the paper's refs [31, 32]).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Sequence

from ..errors import ModelError


class ConsumptionModel(ABC):
    """Maps (sensor, time window) to energy spent."""

    @abstractmethod
    def energy_spent(self, sensor_index: int, start_s: float,
                     duration_s: float) -> float:
        """Return the joules sensor ``sensor_index`` spends in a window."""

    def max_rate_w(self) -> float:
        """Return an upper bound on any sensor's average draw (W).

        Used by the lifetime simulator to bound how long a drain phase
        can be stepped at once.
        """
        return math.inf


class ConstantDrain(ConsumptionModel):
    """Fixed per-sensor power draw.

    Args:
        rate_w: baseline draw in watts.
        spread: relative heterogeneity in [0, 1); sensor ``i`` draws
            ``rate_w * (1 + u_i)`` with ``u_i`` uniform in
            ``[-spread, spread]``, fixed per sensor by ``seed``.
        sensor_count: number of sensors (needed when ``spread > 0``).
        seed: heterogeneity seed.
    """

    def __init__(self, rate_w: float, spread: float = 0.0,
                 sensor_count: int = 0, seed: int = 0) -> None:
        if rate_w < 0.0 or not math.isfinite(rate_w):
            raise ModelError(f"invalid drain rate: {rate_w!r}")
        if not 0.0 <= spread < 1.0:
            raise ModelError(f"spread must be in [0, 1): {spread!r}")
        if spread > 0.0 and sensor_count <= 0:
            raise ModelError(
                "heterogeneous drain needs a positive sensor_count")
        self.rate_w = rate_w
        self.spread = spread
        rng = random.Random(seed)
        self._factors: Sequence[float] = tuple(
            1.0 + rng.uniform(-spread, spread)
            for _ in range(sensor_count)) if spread > 0.0 else ()

    def rate_for(self, sensor_index: int) -> float:
        """Return sensor ``sensor_index``'s draw in watts."""
        if not self._factors:
            return self.rate_w
        if sensor_index >= len(self._factors):
            raise ModelError(
                f"sensor index {sensor_index} outside the "
                f"{len(self._factors)}-sensor drain table")
        return self.rate_w * self._factors[sensor_index]

    def energy_spent(self, sensor_index: int, start_s: float,
                     duration_s: float) -> float:
        if duration_s < 0.0:
            raise ModelError(f"negative duration: {duration_s!r}")
        return self.rate_for(sensor_index) * duration_s

    def max_rate_w(self) -> float:
        return self.rate_w * (1.0 + self.spread)


class EventDrain(ConsumptionModel):
    """Poisson event arrivals costing fixed energy each.

    Deterministic given the seed: each (sensor, window) draws its event
    count from a stream keyed on the sensor and the window start, so
    repeated simulations agree.

    Args:
        events_per_hour: Poisson rate per sensor.
        energy_per_event_j: joules per event.
        base_rate_w: additional constant draw.
        seed: stream seed.
    """

    def __init__(self, events_per_hour: float, energy_per_event_j: float,
                 base_rate_w: float = 0.0, seed: int = 0) -> None:
        if events_per_hour < 0.0:
            raise ModelError(
                f"invalid event rate: {events_per_hour!r}")
        if energy_per_event_j < 0.0:
            raise ModelError(
                f"invalid event energy: {energy_per_event_j!r}")
        if base_rate_w < 0.0:
            raise ModelError(f"invalid base rate: {base_rate_w!r}")
        self.events_per_hour = events_per_hour
        self.energy_per_event_j = energy_per_event_j
        self.base_rate_w = base_rate_w
        self.seed = seed

    def energy_spent(self, sensor_index: int, start_s: float,
                     duration_s: float) -> float:
        if duration_s < 0.0:
            raise ModelError(f"negative duration: {duration_s!r}")
        from ..network import derive_seed
        mean = self.events_per_hour * duration_s / 3600.0
        rng = random.Random(
            derive_seed(self.seed, sensor_index, round(start_s, 6)))
        events = _poisson(rng, mean)
        return (events * self.energy_per_event_j
                + self.base_rate_w * duration_s)

    def max_rate_w(self) -> float:
        return (self.base_rate_w
                + self.events_per_hour * self.energy_per_event_j
                / 3600.0 * 4.0)  # ~4x mean covers the tail


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler with a normal tail approximation."""
    if mean <= 0.0:
        return 0
    if mean > 500.0:
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
