"""Long-horizon lifetime simulation: drain, trigger, recharge, repeat.

The paper's network model: "if n sensors run out of power, the charging
procedure is triggered".  This simulator closes that loop over many
charging rounds so planners can be compared on *operational* metrics —
charger energy per day, sensor availability, deaths — rather than on a
single mission.

Timeline per round:

1. **Drain phase** — sensors spend energy per the consumption model
   until ``trigger_count`` of them fall below the trigger threshold.
2. **Mission phase** — the planner plans on current positions; the
   charger drives/dwells (mission duration = tour/speed + dwells);
   sensors harvest per the charging model (one-to-many, every stop)
   and keep draining concurrently.  Batteries clip at capacity.

A sensor whose battery hits zero is *down* (it stops sensing but can be
recharged); downtime is tracked per sensor-second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from ..charging import CostParameters
from ..errors import SimulationError
from ..network import SensorNetwork
from ..planners import Planner
from ..tour import ChargingPlan
from .consumption import ConsumptionModel


@dataclass
class RoundRecord:
    """Bookkeeping for one charging round.

    Attributes:
        trigger_time_s: when the round was triggered.
        mission_time_s: mission duration.
        charger_energy_j: charger energy spent this round.
        stops: stop count of the round's plan.
        sensors_below_trigger: how many sensors were below the trigger
            threshold when the round started.
    """

    trigger_time_s: float
    mission_time_s: float
    charger_energy_j: float
    stops: int
    sensors_below_trigger: int


@dataclass
class LifetimeResult:
    """Outcome of a lifetime simulation.

    Attributes:
        horizon_s: simulated duration.
        rounds: per-round records.
        charger_energy_j: total charger energy over the horizon.
        downtime_sensor_s: summed sensor-seconds spent at zero energy.
        min_battery_j: lowest battery level observed anywhere.
        final_batteries_j: battery levels at the end of the horizon.
    """

    horizon_s: float
    rounds: List[RoundRecord] = field(default_factory=list)
    charger_energy_j: float = 0.0
    downtime_sensor_s: float = 0.0
    min_battery_j: float = math.inf

    final_batteries_j: List[float] = field(default_factory=list)

    @property
    def round_count(self) -> int:
        """Return how many charging rounds ran."""
        return len(self.rounds)

    @property
    def availability(self) -> float:
        """Return the fraction of sensor-time spent alive."""
        if self.horizon_s <= 0.0 or not self.final_batteries_j:
            return 1.0
        total = self.horizon_s * len(self.final_batteries_j)
        return max(0.0, 1.0 - self.downtime_sensor_s / total)

    @property
    def energy_per_day_j(self) -> float:
        """Return average charger energy per simulated day."""
        if self.horizon_s <= 0.0:
            return 0.0
        return self.charger_energy_j * 86_400.0 / self.horizon_s


class LifetimeSimulator:
    """Drives drain/recharge rounds over a horizon."""

    def __init__(self, network: SensorNetwork, planner: Planner,
                 cost: CostParameters, consumption: ConsumptionModel,
                 battery_capacity_j: float,
                 trigger_threshold_j: float,
                 trigger_count: int = 1,
                 speed_m_per_s: float = 1.0,
                 drain_step_s: float = 600.0) -> None:
        """Create a simulator.

        Args:
            network: sensors (positions are fixed; batteries simulated
                here, starting full).
            planner: the trajectory planner to exercise each round.
            cost: mission cost constants (``delta_j`` is how much each
                mission must deliver per sensor).
            consumption: the sensors' spending model.
            battery_capacity_j: per-sensor battery size (harvest clips
                here).
            trigger_threshold_j: a sensor below this level counts
                toward the trigger.
            trigger_count: how many low sensors start a round (the
                paper's "n sensors run out of power" knob).
            speed_m_per_s: charger ground speed.
            drain_step_s: integration step for the drain phase.
        """
        if battery_capacity_j <= 0.0:
            raise SimulationError(
                f"invalid battery capacity: {battery_capacity_j!r}")
        if not 0.0 <= trigger_threshold_j < battery_capacity_j:
            raise SimulationError(
                "trigger threshold must sit inside the battery range")
        if trigger_count < 1 or trigger_count > len(network):
            raise SimulationError(
                f"trigger count must be in [1, {len(network)}]")
        if drain_step_s <= 0.0:
            raise SimulationError(
                f"invalid drain step: {drain_step_s!r}")
        self.network = network
        self.planner = planner
        self.cost = cost
        self.consumption = consumption
        self.capacity_j = battery_capacity_j
        self.threshold_j = trigger_threshold_j
        self.trigger_count = trigger_count
        self.speed = speed_m_per_s
        self.drain_step_s = drain_step_s
        self.batteries = [battery_capacity_j] * len(network)

    # --- phases --------------------------------------------------------

    def _drain(self, result: LifetimeResult, start_s: float,
               duration_s: float) -> None:
        """Spend energy for ``duration_s``; track downtime and minima."""
        for index in range(len(self.batteries)):
            spent = self.consumption.energy_spent(index, start_s,
                                                  duration_s)
            level = self.batteries[index]
            if spent >= level > 0.0:
                # Died partway through: pro-rate the downtime.
                alive_fraction = level / spent
                result.downtime_sensor_s += (duration_s
                                             * (1.0 - alive_fraction))
                level = 0.0
            elif level <= 0.0:
                result.downtime_sensor_s += duration_s
            else:
                level -= spent
            self.batteries[index] = level
            result.min_battery_j = min(result.min_battery_j, level)

    def _triggered(self) -> int:
        """Return how many sensors sit at or below the trigger level."""
        return sum(1 for level in self.batteries
                   if level <= self.threshold_j)

    def _run_mission(self, now_s: float,
                     result: LifetimeResult) -> float:
        """Plan and execute one charging round; return its duration."""
        plan: ChargingPlan = self.planner.plan(self.network, self.cost)
        tour_s = plan.tour_length() / self.speed
        dwell_s = plan.total_dwell_s()
        mission_s = tour_s + dwell_s

        # Harvest: every sensor receives from every stop (one-to-many).
        for index, sensor in enumerate(self.network):
            harvested = 0.0
            for stop in plan.stops:
                distance = stop.position.distance_to(sensor.location)
                power = self.cost.model.received_power(distance)
                harvested += power * stop.dwell_s
            self.batteries[index] = min(self.capacity_j,
                                        self.batteries[index]
                                        + harvested)
        # Concurrent drain during the mission.
        self._drain(result, now_s, mission_s)

        energy = (self.cost.movement_energy(plan.tour_length())
                  + self.cost.model.source_power_w * dwell_s)
        result.charger_energy_j += energy
        result.rounds.append(RoundRecord(
            trigger_time_s=now_s,
            mission_time_s=mission_s,
            charger_energy_j=energy,
            stops=len(plan),
            sensors_below_trigger=self._triggered(),
        ))
        return mission_s

    # --- main loop --------------------------------------------------------

    def run(self, horizon_s: float,
            max_rounds: int = 10_000) -> LifetimeResult:
        """Simulate ``horizon_s`` seconds of network operation.

        Raises:
            SimulationError: when ``max_rounds`` charging rounds fire
                (the configuration recharges in a tight loop — almost
                certainly a mis-parameterization).
        """
        if horizon_s <= 0.0:
            raise SimulationError(f"invalid horizon: {horizon_s!r}")
        result = LifetimeResult(horizon_s=horizon_s)
        now = 0.0
        while now < horizon_s:
            if self._triggered() >= self.trigger_count:
                if len(result.rounds) >= max_rounds:
                    raise SimulationError(
                        f"exceeded {max_rounds} charging rounds")
                now += self._run_mission(now, result)
                continue
            step = min(self.drain_step_s, horizon_s - now)
            self._drain(result, now, step)
            now += step
        result.final_batteries_j = list(self.batteries)
        if result.min_battery_j is math.inf:
            result.min_battery_j = self.capacity_j
        return result
