"""Long-horizon lifetime simulation: drain, trigger, recharge, repeat.

The paper's network model: "if n sensors run out of power, the charging
procedure is triggered".  This simulator closes that loop over many
charging rounds so planners can be compared on *operational* metrics —
charger energy per day, sensor availability, deaths — rather than on a
single mission.

Timeline per round:

1. **Drain phase** — sensors spend energy per the consumption model
   until ``trigger_count`` of them fall below the trigger threshold.
2. **Mission phase** — the planner plans on current positions; the
   charger drives/dwells (mission duration = tour/speed + dwells);
   sensors harvest per the charging model (one-to-many, every stop)
   and keep draining concurrently.  Batteries clip at capacity.

A sensor whose battery hits zero is *down* (it stops sensing but can be
recharged); downtime is tracked per sensor-second.

With a :class:`~repro.lifetime.churn.ChurnModel` attached the network
itself evolves: each round draws a seeded batch of ``sensor_moved`` /
``sensor_died`` / ``sensor_joined`` deltas and the simulator *repairs*
its retained plan (:func:`repro.delta.engine.repair_plan`) instead of
replanning from scratch — the operational setting the incremental
replanning engine exists for.  ``churn=None`` (the default) leaves
every legacy code path — and therefore every legacy result —
byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..charging import CostParameters
from ..errors import SimulationError
from ..network import SensorNetwork
from ..planners import Planner
from ..tour import ChargingPlan
from .churn import ChurnModel
from .consumption import ConsumptionModel


@dataclass
class RoundRecord:
    """Bookkeeping for one charging round.

    Attributes:
        trigger_time_s: when the round was triggered.
        mission_time_s: mission duration.
        charger_energy_j: charger energy spent this round.
        stops: stop count of the round's plan.
        sensors_below_trigger: how many sensors were below the trigger
            threshold when the round started.
    """

    trigger_time_s: float
    mission_time_s: float
    charger_energy_j: float
    stops: int
    sensors_below_trigger: int


@dataclass
class LifetimeResult:
    """Outcome of a lifetime simulation.

    Attributes:
        horizon_s: simulated duration.
        rounds: per-round records.
        charger_energy_j: total charger energy over the horizon.
        downtime_sensor_s: summed sensor-seconds spent at zero energy.
        min_battery_j: lowest battery level observed anywhere.
        final_batteries_j: battery levels at the end of the horizon.
        churn_moves: sensors drifted by churn over the horizon.
        churn_deaths: sensors killed by churn or failure injection.
        churn_joins: sensors that joined mid-horizon.
        repaired_rounds: rounds served by an incremental repair (the
            rest were full replans — or, with ``churn=None``, every
            round replans and this stays 0).
    """

    horizon_s: float
    rounds: List[RoundRecord] = field(default_factory=list)
    charger_energy_j: float = 0.0
    downtime_sensor_s: float = 0.0
    min_battery_j: float = math.inf

    final_batteries_j: List[float] = field(default_factory=list)
    churn_moves: int = 0
    churn_deaths: int = 0
    churn_joins: int = 0
    repaired_rounds: int = 0

    @property
    def round_count(self) -> int:
        """Return how many charging rounds ran."""
        return len(self.rounds)

    @property
    def availability(self) -> float:
        """Return the fraction of sensor-time spent alive."""
        if self.horizon_s <= 0.0 or not self.final_batteries_j:
            return 1.0
        total = self.horizon_s * len(self.final_batteries_j)
        return max(0.0, 1.0 - self.downtime_sensor_s / total)

    @property
    def energy_per_day_j(self) -> float:
        """Return average charger energy per simulated day."""
        if self.horizon_s <= 0.0:
            return 0.0
        return self.charger_energy_j * 86_400.0 / self.horizon_s


class LifetimeSimulator:
    """Drives drain/recharge rounds over a horizon."""

    def __init__(self, network: SensorNetwork, planner: Planner,
                 cost: CostParameters, consumption: ConsumptionModel,
                 battery_capacity_j: float,
                 trigger_threshold_j: float,
                 trigger_count: int = 1,
                 speed_m_per_s: float = 1.0,
                 drain_step_s: float = 600.0,
                 churn: Optional[ChurnModel] = None) -> None:
        """Create a simulator.

        Args:
            network: sensors (batteries simulated here, starting full;
                positions are fixed unless ``churn`` moves them).
            planner: the trajectory planner to exercise each round.
            cost: mission cost constants (``delta_j`` is how much each
                mission must deliver per sensor).
            consumption: the sensors' spending model.
            battery_capacity_j: per-sensor battery size (harvest clips
                here).
            trigger_threshold_j: a sensor below this level counts
                toward the trigger.
            trigger_count: how many low sensors start a round (the
                paper's "n sensors run out of power" knob).
            speed_m_per_s: charger ground speed.
            drain_step_s: integration step for the drain phase.
            churn: optional network churn; rounds then repair the
                retained plan incrementally instead of replanning.
                Requires a radius-bearing planner (every registered
                one qualifies).  ``None`` keeps the legacy fixed
                network byte-identically.
        """
        if battery_capacity_j <= 0.0:
            raise SimulationError(
                f"invalid battery capacity: {battery_capacity_j!r}")
        if not 0.0 <= trigger_threshold_j < battery_capacity_j:
            raise SimulationError(
                "trigger threshold must sit inside the battery range")
        if trigger_count < 1 or trigger_count > len(network):
            raise SimulationError(
                f"trigger count must be in [1, {len(network)}]")
        if drain_step_s <= 0.0:
            raise SimulationError(
                f"invalid drain step: {drain_step_s!r}")
        self.network = network
        self.planner = planner
        self.cost = cost
        self.consumption = consumption
        self.capacity_j = battery_capacity_j
        self.threshold_j = trigger_threshold_j
        self.trigger_count = trigger_count
        self.speed = speed_m_per_s
        self.drain_step_s = drain_step_s
        self.batteries = [battery_capacity_j] * len(network)
        self._churn = churn
        self._base_count = len(network)
        self.locations = [(point.x, point.y)
                          for point in network.locations]
        self.alive = [True] * len(network)
        self._plan_state: Any = None  # repro.delta PlanState, lazily
        self._round_index = 0
        self._pending_deltas: List[Dict[str, Any]] = []
        if churn is not None and not hasattr(planner, "radius"):
            raise SimulationError(
                f"churn simulation needs a radius-bearing planner; "
                f"{planner.name!r} has no bundle radius to repair with")

    # --- phases --------------------------------------------------------

    def _drain(self, result: LifetimeResult, start_s: float,
               duration_s: float) -> None:
        """Spend energy for ``duration_s``; track downtime and minima.

        Churn-dead sensors neither drain nor accrue downtime (they are
        out of the network, not merely depleted); joined sensors reuse
        the consumption table modulo the base deployment size, so a
        heterogeneous drain model needs no resizing mid-run.
        """
        for index in range(len(self.batteries)):
            if self._churn is not None and not self.alive[index]:
                continue
            spent = self.consumption.energy_spent(
                index % self._base_count, start_s, duration_s)
            level = self.batteries[index]
            if spent >= level > 0.0:
                # Died partway through: pro-rate the downtime.
                alive_fraction = level / spent
                result.downtime_sensor_s += (duration_s
                                             * (1.0 - alive_fraction))
                level = 0.0
            elif level <= 0.0:
                result.downtime_sensor_s += duration_s
            else:
                level -= spent
            self.batteries[index] = level
            result.min_battery_j = min(result.min_battery_j, level)

    def _triggered(self) -> int:
        """Return how many sensors sit at or below the trigger level.

        Churn-dead sensors do not count — a round fires for sensors
        that can still be charged, not for permanently removed ones.
        """
        if self._churn is None:
            return sum(1 for level in self.batteries
                       if level <= self.threshold_j)
        return sum(1 for index, level in enumerate(self.batteries)
                   if self.alive[index] and level <= self.threshold_j)

    def _churned_plan(self, result: LifetimeResult) -> ChargingPlan:
        """Evolve the network one round and repair the retained plan.

        The first round establishes the plan with a full planner run;
        every later round applies the pending failure batch plus this
        round's seeded churn batch through the incremental repairer.
        The simulator's ``locations`` / ``alive`` / ``batteries`` views
        resync from the repaired state (joined sensors start at full
        capacity).
        """
        from ..delta.engine import initial_state, repair_plan
        if self._plan_state is None:
            plan = self.planner.plan(self.network, self.cost)
            self._plan_state = initial_state(
                self.network, plan, self.planner.radius,
                self.planner.name, self.planner.tsp_strategy,
                self.planner.seed)
        deltas = self._pending_deltas + self._churn.deltas_for_round(
            self._round_index, self.locations, self.alive,
            self.network.field_side_m)
        self._pending_deltas = []
        self._round_index += 1
        for record in deltas:
            if record["type"] == "sensor_moved":
                result.churn_moves += 1
            elif record["type"] == "sensor_joined":
                result.churn_joins += 1
            elif self.alive[record["index"]]:
                # Pending failure deaths were counted when injected.
                result.churn_deaths += 1
        state, report = repair_plan(self._plan_state, deltas, self.cost)
        self._plan_state = state
        if report.strategy == "repair":
            result.repaired_rounds += 1
        self.locations = [(point.x, point.y)
                          for point in state.locations]
        self.alive = list(state.alive)
        while len(self.batteries) < len(self.alive):
            self.batteries.append(self.capacity_j)
        return state.plan

    def _run_mission(self, now_s: float,
                     result: LifetimeResult) -> float:
        """Plan and execute one charging round; return its duration."""
        if self._churn is not None:
            plan: ChargingPlan = self._churned_plan(result)
        else:
            plan = self.planner.plan(self.network, self.cost)
        tour_s = plan.tour_length() / self.speed
        dwell_s = plan.total_dwell_s()
        mission_s = tour_s + dwell_s

        # Harvest: every sensor receives from every stop (one-to-many).
        for index in range(len(self.batteries)):
            if self._churn is not None and not self.alive[index]:
                continue
            if self._churn is None:
                x, y = (self.network.sensors[index].location.x,
                        self.network.sensors[index].location.y)
            else:
                x, y = self.locations[index]
            harvested = 0.0
            for stop in plan.stops:
                distance = math.hypot(stop.position.x - x,
                                      stop.position.y - y)
                power = self.cost.model.received_power(distance)
                harvested += power * stop.dwell_s
            self.batteries[index] = min(self.capacity_j,
                                        self.batteries[index]
                                        + harvested)
        # Concurrent drain during the mission.
        self._drain(result, now_s, mission_s)

        energy = (self.cost.movement_energy(plan.tour_length())
                  + self.cost.model.source_power_w * dwell_s)
        result.charger_energy_j += energy
        result.rounds.append(RoundRecord(
            trigger_time_s=now_s,
            mission_time_s=mission_s,
            charger_energy_j=energy,
            stops=len(plan),
            sensors_below_trigger=self._triggered(),
        ))
        return mission_s

    # --- main loop --------------------------------------------------------

    def run(self, horizon_s: float,
            max_rounds: int = 10_000) -> LifetimeResult:
        """Simulate ``horizon_s`` seconds of network operation.

        Raises:
            SimulationError: when ``max_rounds`` charging rounds fire
                (the configuration recharges in a tight loop — almost
                certainly a mis-parameterization).
        """
        if horizon_s <= 0.0:
            raise SimulationError(f"invalid horizon: {horizon_s!r}")
        result = LifetimeResult(horizon_s=horizon_s)
        now = 0.0
        while now < horizon_s:
            if self._churn is not None:
                # One-shot failure injection: victims leave the live
                # bookkeeping immediately; the plan folds them in at
                # the next repair.
                failures = self._churn.failure_deltas(now, self.alive)
                if failures:
                    self._pending_deltas.extend(failures)
                    for record in failures:
                        self.alive[record["index"]] = False
                    result.churn_deaths += len(failures)
            if self._triggered() >= self.trigger_count:
                if len(result.rounds) >= max_rounds:
                    raise SimulationError(
                        f"exceeded {max_rounds} charging rounds")
                now += self._run_mission(now, result)
                continue
            step = min(self.drain_step_s, horizon_s - now)
            self._drain(result, now, step)
            now += step
        result.final_batteries_j = list(self.batteries)
        if result.min_battery_j is math.inf:
            result.min_battery_j = self.capacity_j
        return result
