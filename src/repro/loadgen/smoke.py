"""End-to-end loadgen smoke gate (used by CI).

Boots a real planning server on an ephemeral port (metrics engine on,
access log on), fires a short constant-rate open-loop run through the
actual ``bundle-charging loadgen`` CLI, and asserts the telemetry
contracts end to end:

1. the loadgen report validates against ``bundle-charging/loadgen/v1``
   and carries a present, finite p99 with non-degenerate p50 < p99;
2. ``/metrics`` (JSON) validates as service-metrics/v2 and the engine
   histograms saw the run's requests;
3. ``/metrics?format=prometheus`` serves text exposition;
4. the access log parses line-by-line and every record validates
   against ``bundle-charging/access/v1``.

Run directly: ``python -m repro.loadgen.smoke``.  Exit 0 = all hold.
"""

from __future__ import annotations

import json
import math
import os
import sys
import tempfile
import urllib.request
from typing import Any, Dict, Tuple

from ..service.accesslog import access_record_problems
from ..service.config import ServiceConfig
from ..service.http import start_server, stop_server
from ..service.metrics import metrics_problems
from .cli import main as loadgen_main
from .report import report_problems

__all__ = ["run_smoke"]


def _get(url: str, accept: str = "application/json"
         ) -> Tuple[int, str, bytes]:
    request = urllib.request.Request(url, headers={"Accept": accept})
    with urllib.request.urlopen(request, timeout=30) as response:
        return (response.status,
                response.headers.get("Content-Type", ""),
                response.read())


def run_smoke(duration_s: float = 5.0, rate: float = 30.0) -> int:
    """Run the smoke sequence; return 0 on success, 1 on any failure."""
    failures = []

    def check(condition: bool, label: str) -> None:
        print(("ok   " if condition else "FAIL ") + label)
        if not condition:
            failures.append(label)

    with tempfile.TemporaryDirectory() as scratch:
        access_path = os.path.join(scratch, "access.jsonl")
        report_path = os.path.join(scratch, "loadgen.json")
        config = ServiceConfig(port=0, jobs=2, queue_limit=64,
                               timeout_s=60.0, access_log=access_path)
        server, _ = start_server(config)
        base = f"http://{config.host}:{server.port}"
        try:
            exit_code = loadgen_main([
                "--url", base, "--rate", str(rate),
                "--duration-s", str(duration_s), "--pool", "4",
                "--zipf-s", "1.1", "--n", "40", "--seed", "0",
                "--out", report_path,
            ])
            check(exit_code == 0, "loadgen CLI exits 0")

            with open(report_path, encoding="utf-8") as handle:
                report: Dict[str, Any] = json.load(handle)
            problems = report_problems(report)
            check(not problems,
                  f"report validates against loadgen/v1 {problems}")
            latency = report["summary"]["latency_s"]
            p50, p99 = latency["p50"], latency["p99"]
            check(isinstance(p99, float) and math.isfinite(p99),
                  "p99 present and finite")
            check(isinstance(p50, float) and p50 < p99,
                  "p50 < p99 (non-degenerate distribution)")
            check(report["summary"]["errors"] == 0,
                  "no request errors under the smoke load")

            status, content_type, raw = _get(f"{base}/metrics")
            doc = json.loads(raw.decode("utf-8"))
            problems = metrics_problems(doc)
            check(status == 200 and not problems,
                  f"metrics JSON validates as v2 {problems}")
            engine = doc.get("metrics") or {}
            histograms = {entry["name"]
                          for entry in engine.get("histograms", [])}
            check("service.request_seconds" in histograms,
                  "request latency histogram populated")

            status, content_type, raw = _get(
                f"{base}/metrics?format=prometheus")
            text = raw.decode("utf-8")
            check(status == 200 and content_type.startswith("text/plain")
                  and "# TYPE" in text
                  and "bc_service_request_seconds_bucket" in text,
                  "prometheus exposition served")
        finally:
            stop_server(server, drain=True)

        with open(access_path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        check(len(lines) >= 1, "access log is non-empty")
        bad = 0
        for line in lines:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if access_record_problems(record):
                bad += 1
        check(bad == 0,
              f"every access record parses and validates "
              f"({len(lines)} lines, {bad} bad)")

    if failures:
        print(f"{len(failures)} loadgen smoke check(s) failed",
              file=sys.stderr)
        return 1
    print("loadgen smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
