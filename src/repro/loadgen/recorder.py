"""Coordinated-omission-safe latency recording.

The classic load-testing mistake: measuring latency from the moment a
request was *sent* instead of the moment it was *scheduled* to be sent.
When the client stalls (server backpressure, thread starvation), sends
slip past their schedule and the slipped wait silently vanishes from
the measurement — the worst seconds of the run are exactly the ones
dropped.  The recorder therefore takes both timestamps and scores
``finished - scheduled``: queueing on the client counts against the
server's percentiles, as a real user would experience it.

Percentiles are exact (nearest-rank with linear interpolation over the
sorted sample), not bucketed — the client holds every latency in
memory, which is fine at load-test sample counts.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

__all__ = ["LatencyRecorder", "exact_quantile"]


def exact_quantile(sorted_values: List[float],
                   q: float) -> Optional[float]:
    """Linear-interpolation quantile of an ascending sample."""
    if not sorted_values:
        return None
    if q <= 0.0:
        return sorted_values[0]
    if q >= 1.0:
        return sorted_values[-1]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    fraction = position - low
    if low + 1 >= len(sorted_values):
        return sorted_values[-1]
    return (sorted_values[low] * (1.0 - fraction)
            + sorted_values[low + 1] * fraction)


class LatencyRecorder:
    """Thread-safe accumulator of per-request outcomes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._send_lag: List[float] = []
        self._statuses: Dict[str, int] = {}
        self._outcomes: Dict[str, int] = {}
        self._workers: Dict[str, int] = {}
        self._kinds: Dict[str, Dict[str, Any]] = {}
        self._errors = 0

    def record(self, scheduled: float, sent: float, finished: float,
               status: int, outcome: Optional[str] = None,
               worker: Optional[str] = None,
               failed: bool = False,
               kind: Optional[str] = None) -> None:
        """Score one request.

        Args:
            scheduled: monotonic instant the request was *due*.
            sent: monotonic instant the request actually departed.
            finished: monotonic instant the response completed.
            status: HTTP status (0 for transport failures).
            outcome: the ``X-BC-Cache`` outcome, when known.
            worker: the ``X-BC-Worker`` shard that answered, when the
                target is a multi-process pool.
            failed: transport error or non-2xx response.
            kind: optional traffic-kind label (``"plan"`` /
                ``"delta"``); labeled runs get a per-kind latency
                split in the summary.
        """
        latency = finished - scheduled
        lag = sent - scheduled
        with self._lock:
            self._latencies.append(latency)
            self._send_lag.append(lag)
            key = str(status)
            self._statuses[key] = self._statuses.get(key, 0) + 1
            if outcome is not None:
                self._outcomes[outcome] = \
                    self._outcomes.get(outcome, 0) + 1
            if worker is not None:
                self._workers[worker] = \
                    self._workers.get(worker, 0) + 1
            if kind is not None:
                bucket = self._kinds.setdefault(
                    kind, {"latencies": [], "errors": 0})
                bucket["latencies"].append(latency)
                if failed:
                    bucket["errors"] += 1
            if failed:
                self._errors += 1

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._latencies)

    @property
    def errors(self) -> int:
        with self._lock:
            return self._errors

    def summary(self) -> Dict[str, Any]:
        """Percentiles and counts over everything recorded so far."""
        with self._lock:
            latencies = sorted(self._latencies)
            lags = sorted(self._send_lag)
            statuses = dict(sorted(self._statuses.items()))
            outcomes = dict(sorted(self._outcomes.items()))
            workers = dict(sorted(self._workers.items()))
            kinds = {label: {"latencies": sorted(bucket["latencies"]),
                             "errors": bucket["errors"]}
                     for label, bucket in sorted(self._kinds.items())}
            errors = self._errors
        count = len(latencies)
        kind_rows: Dict[str, Any] = {}
        for label, bucket in kinds.items():
            sample = bucket["latencies"]
            kind_rows[label] = {
                "count": len(sample),
                "errors": bucket["errors"],
                "latency_s": {
                    "p50": exact_quantile(sample, 0.50),
                    "p99": exact_quantile(sample, 0.99),
                    "max": sample[-1] if sample else None,
                    "mean": (sum(sample) / len(sample)) if sample
                    else None,
                },
            }
        return {
            "count": count,
            "errors": errors,
            "statuses": statuses,
            "outcomes": outcomes,
            "workers": workers,
            "latency_s": {
                "p50": exact_quantile(latencies, 0.50),
                "p90": exact_quantile(latencies, 0.90),
                "p95": exact_quantile(latencies, 0.95),
                "p99": exact_quantile(latencies, 0.99),
                "max": latencies[-1] if latencies else None,
                "mean": (sum(latencies) / count) if count else None,
            },
            "send_lag_s": {
                "p50": exact_quantile(lags, 0.50),
                "p99": exact_quantile(lags, 0.99),
                "max": lags[-1] if lags else None,
            },
            # Additive: only labeled runs (--churn mixes) carry it.
            **({"kinds": kind_rows} if kind_rows else {}),
        }
