"""The ``bundle-charging/loadgen/v1`` run report.

One JSON document per load-test run: the offered schedule (shape,
rates, request mix), what actually happened (achieved rate, error
counts, cache outcomes), and the coordinated-omission-safe latency
percentiles from :class:`repro.loadgen.recorder.LatencyRecorder`.
Provenance (git SHA, version, platform) is embedded when ``repro.obs``
is available, the same way ``BENCH_*.json`` entries carry it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Version tag stamped on every loadgen report.
LOADGEN_SCHEMA = "bundle-charging/loadgen/v1"

__all__ = ["LOADGEN_SCHEMA", "build_report", "render_table",
           "report_problems", "write_report"]

#: Top-level keys every report must carry.
_REQUIRED = ("schema", "config", "duration_s", "offered",
             "achieved_rate", "summary")

#: Keys of the ``offered`` section.
_OFFERED_REQUIRED = ("kind", "rate", "requests")


def build_report(config: Dict[str, Any],
                 offered: Dict[str, Any],
                 duration_s: float,
                 summary: Dict[str, Any],
                 provenance: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Assemble the report document.

    Args:
        config: the flag-level run configuration (url, schedule, mix).
        offered: the schedule actually generated (kind, rate(s),
            request count).
        duration_s: measured wall duration of the run.
        summary: :meth:`LatencyRecorder.summary` output.
        provenance: optional run manifest.
    """
    achieved = (summary["count"] / duration_s) if duration_s > 0 \
        else 0.0
    return {
        "schema": LOADGEN_SCHEMA,
        "config": config,
        "offered": offered,
        "duration_s": round(duration_s, 6),
        "achieved_rate": round(achieved, 3),
        "summary": summary,
        "provenance": provenance,
    }


def report_problems(report: Any) -> List[str]:
    """Return structural problems of a loadgen report (empty = valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["loadgen report must be a JSON object"]
    schema = report.get("schema")
    if schema != LOADGEN_SCHEMA:
        problems.append(f"unknown loadgen schema {schema!r} "
                        f"(expected {LOADGEN_SCHEMA!r})")
        return problems
    for key in _REQUIRED:
        if key not in report:
            problems.append(f"loadgen report missing key {key!r}")
    offered = report.get("offered")
    if isinstance(offered, dict):
        for key in _OFFERED_REQUIRED:
            if key not in offered:
                problems.append(f"offered section missing key {key!r}")
    elif "offered" in report:
        problems.append("offered section must be an object")
    summary = report.get("summary")
    if isinstance(summary, dict):
        latency = summary.get("latency_s")
        if not isinstance(latency, dict):
            problems.append("summary.latency_s must be an object")
        else:
            for key in ("p50", "p90", "p95", "p99", "max", "mean"):
                if key not in latency:
                    problems.append(
                        f"summary.latency_s missing key {key!r}")
                else:
                    value = latency[key]
                    if value is not None \
                            and not isinstance(value, (int, float)):
                        problems.append(
                            f"summary.latency_s.{key} must be a number "
                            f"or null, got {value!r}")
        if not isinstance(summary.get("count"), int):
            problems.append("summary.count must be an integer")
        if not isinstance(summary.get("errors"), int):
            problems.append("summary.errors must be an integer")
    elif "summary" in report:
        problems.append("summary section must be an object")
    for key in ("duration_s", "achieved_rate"):
        value = report.get(key)
        if key in report and not isinstance(value, (int, float)):
            problems.append(f"{key} must be a number, got {value!r}")
    return problems


def render_table(report: Dict[str, Any]) -> str:
    """Human-readable percentile table for the CLI / README."""
    summary = report["summary"]
    latency = summary["latency_s"]

    def cell(value: Optional[float]) -> str:
        return f"{value * 1000.0:10.2f}" if value is not None \
            else "         -"

    lines = [
        f"requests   {summary['count']:>10d}   "
        f"errors {summary['errors']}",
        f"offered    {report['offered']['rate']:>10.2f} req/s   "
        f"achieved {report['achieved_rate']:.2f} req/s",
        "percentile     latency",
        f"  p50      {cell(latency['p50'])} ms",
        f"  p90      {cell(latency['p90'])} ms",
        f"  p95      {cell(latency['p95'])} ms",
        f"  p99      {cell(latency['p99'])} ms",
        f"  max      {cell(latency['max'])} ms",
    ]
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write the report as canonical (sorted-key) JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, sort_keys=True, indent=2)
        handle.write("\n")
