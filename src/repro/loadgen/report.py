"""The ``bundle-charging/loadgen/v1`` run report.

One JSON document per load-test run: the offered schedule (shape,
rates, request mix), what actually happened (achieved rate, error
counts, cache outcomes), and the coordinated-omission-safe latency
percentiles from :class:`repro.loadgen.recorder.LatencyRecorder`.
Provenance (git SHA, version, platform) is embedded when ``repro.obs``
is available, the same way ``BENCH_*.json`` entries carry it.

The schema stays ``loadgen/v1`` with two *documented additive*
sections (old readers keep working, new readers get validated types):

* ``saturation`` — offered-vs-achieved detection.  The offered rate is
  the schedule's arrivals over its window; the achieved rate is
  completions over measured wall time.  When the server keeps up the
  two agree; when it saturates, the run stretches past its window and
  ``ratio`` drops.  Below :data:`SATURATION_RATIO` the run is flagged
  ``saturated`` — the scaling bench hunts for the highest offered rate
  that stays unflagged.
* ``summary.workers`` — the per-worker routing histogram, counted
  from the ``X-BC-Worker`` shard header of a multi-process pool
  (empty against a single-process server).
* ``summary.kinds`` — the per-traffic-kind latency split a ``--churn``
  mix records (``plan`` full plans vs ``delta`` incremental repairs),
  each kind with its own count, errors, and percentiles.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Version tag stamped on every loadgen report.
LOADGEN_SCHEMA = "bundle-charging/loadgen/v1"

#: Achieved/offered ratio below which a run counts as saturated.
SATURATION_RATIO = 0.9

__all__ = ["LOADGEN_SCHEMA", "SATURATION_RATIO", "build_report",
           "render_table", "report_problems", "write_report"]

#: Top-level keys every report must carry.
_REQUIRED = ("schema", "config", "duration_s", "offered",
             "achieved_rate", "summary")

#: Keys of the ``offered`` section.
_OFFERED_REQUIRED = ("kind", "rate", "requests")

#: Keys of the additive ``saturation`` section.
_SATURATION_NUMBERS = ("offered_rate", "achieved_rate", "ratio")


def build_report(config: Dict[str, Any],
                 offered: Dict[str, Any],
                 duration_s: float,
                 summary: Dict[str, Any],
                 provenance: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Assemble the report document.

    Args:
        config: the flag-level run configuration (url, schedule, mix).
        offered: the schedule actually generated (kind, rate(s),
            request count).
        duration_s: measured wall duration of the run.
        summary: :meth:`LatencyRecorder.summary` output.
        provenance: optional run manifest.
    """
    achieved = (summary["count"] / duration_s) if duration_s > 0 \
        else 0.0
    report = {
        "schema": LOADGEN_SCHEMA,
        "config": config,
        "offered": offered,
        "duration_s": round(duration_s, 6),
        "achieved_rate": round(achieved, 3),
        "summary": summary,
        "provenance": provenance,
    }
    window = config.get("duration_s") if isinstance(config, dict) \
        else None
    offered_rate = None
    if isinstance(window, (int, float)) and window > 0:
        offered_rate = offered["requests"] / window
    elif isinstance(offered.get("rate"), (int, float)):
        offered_rate = offered["rate"]
    if offered_rate is not None and offered_rate > 0:
        ratio = achieved / offered_rate
        report["saturation"] = {
            "offered_rate": round(offered_rate, 3),
            "achieved_rate": round(achieved, 3),
            "ratio": round(ratio, 4),
            "saturated": ratio < SATURATION_RATIO,
        }
    return report


def report_problems(report: Any) -> List[str]:
    """Return structural problems of a loadgen report (empty = valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["loadgen report must be a JSON object"]
    schema = report.get("schema")
    if schema != LOADGEN_SCHEMA:
        problems.append(f"unknown loadgen schema {schema!r} "
                        f"(expected {LOADGEN_SCHEMA!r})")
        return problems
    for key in _REQUIRED:
        if key not in report:
            problems.append(f"loadgen report missing key {key!r}")
    offered = report.get("offered")
    if isinstance(offered, dict):
        for key in _OFFERED_REQUIRED:
            if key not in offered:
                problems.append(f"offered section missing key {key!r}")
    elif "offered" in report:
        problems.append("offered section must be an object")
    summary = report.get("summary")
    if isinstance(summary, dict):
        latency = summary.get("latency_s")
        if not isinstance(latency, dict):
            problems.append("summary.latency_s must be an object")
        else:
            for key in ("p50", "p90", "p95", "p99", "max", "mean"):
                if key not in latency:
                    problems.append(
                        f"summary.latency_s missing key {key!r}")
                else:
                    value = latency[key]
                    if value is not None \
                            and not isinstance(value, (int, float)):
                        problems.append(
                            f"summary.latency_s.{key} must be a number "
                            f"or null, got {value!r}")
        if not isinstance(summary.get("count"), int):
            problems.append("summary.count must be an integer")
        if not isinstance(summary.get("errors"), int):
            problems.append("summary.errors must be an integer")
        workers = summary.get("workers")
        if workers is not None:
            if not isinstance(workers, dict):
                problems.append("summary.workers must be an object")
            else:
                for shard, value in workers.items():
                    if not isinstance(value, int) \
                            or isinstance(value, bool):
                        problems.append(
                            f"summary.workers[{shard!r}] must be an "
                            f"integer, got {value!r}")
        kinds = summary.get("kinds")
        if kinds is not None:
            if not isinstance(kinds, dict):
                problems.append("summary.kinds must be an object")
            else:
                for label, row in kinds.items():
                    if not isinstance(row, dict):
                        problems.append(
                            f"summary.kinds[{label!r}] must be an "
                            f"object")
                        continue
                    for key in ("count", "errors"):
                        if not isinstance(row.get(key), int):
                            problems.append(
                                f"summary.kinds[{label!r}].{key} must "
                                f"be an integer")
                    latency_row = row.get("latency_s")
                    if not isinstance(latency_row, dict):
                        problems.append(
                            f"summary.kinds[{label!r}].latency_s must "
                            f"be an object")
                    else:
                        for key in ("p50", "p99", "max", "mean"):
                            value = latency_row.get(key)
                            if key in latency_row and value is not None \
                                    and not isinstance(value,
                                                       (int, float)):
                                problems.append(
                                    f"summary.kinds[{label!r}]"
                                    f".latency_s.{key} must be a "
                                    f"number or null")
    elif "summary" in report:
        problems.append("summary section must be an object")
    for key in ("duration_s", "achieved_rate"):
        value = report.get(key)
        if key in report and not isinstance(value, (int, float)):
            problems.append(f"{key} must be a number, got {value!r}")
    saturation = report.get("saturation")
    if saturation is not None:
        if not isinstance(saturation, dict):
            problems.append("saturation section must be an object")
        else:
            for key in _SATURATION_NUMBERS:
                value = saturation.get(key)
                if key not in saturation:
                    problems.append(
                        f"saturation section missing key {key!r}")
                elif not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    problems.append(
                        f"saturation.{key} must be a number, "
                        f"got {value!r}")
            if "saturated" not in saturation:
                problems.append(
                    "saturation section missing key 'saturated'")
            elif not isinstance(saturation["saturated"], bool):
                problems.append(
                    "saturation.saturated must be a boolean")
    return problems


def render_table(report: Dict[str, Any]) -> str:
    """Human-readable percentile table for the CLI / README."""
    summary = report["summary"]
    latency = summary["latency_s"]

    def cell(value: Optional[float]) -> str:
        return f"{value * 1000.0:10.2f}" if value is not None \
            else "         -"

    lines = [
        f"requests   {summary['count']:>10d}   "
        f"errors {summary['errors']}",
        f"offered    {report['offered']['rate']:>10.2f} req/s   "
        f"achieved {report['achieved_rate']:.2f} req/s",
        "percentile     latency",
        f"  p50      {cell(latency['p50'])} ms",
        f"  p90      {cell(latency['p90'])} ms",
        f"  p95      {cell(latency['p95'])} ms",
        f"  p99      {cell(latency['p99'])} ms",
        f"  max      {cell(latency['max'])} ms",
    ]
    saturation = report.get("saturation")
    if isinstance(saturation, dict):
        flag = "SATURATED" if saturation.get("saturated") else "ok"
        lines.append(
            f"saturation {saturation['ratio']:>10.4f}   {flag} "
            f"(threshold {SATURATION_RATIO})")
    workers = summary.get("workers")
    if isinstance(workers, dict) and workers:
        total = sum(workers.values())
        lines.append("worker       routed      share")
        for shard in sorted(workers):
            routed = workers[shard]
            share = routed / total if total else 0.0
            bar = "#" * max(1, round(share * 20))
            lines.append(
                f"  {shard:<8} {routed:>10d}   {share:>6.1%}  {bar}")
    kinds = summary.get("kinds")
    if isinstance(kinds, dict) and kinds:
        lines.append("kind          count        p50        p99   "
                     "errors")
        for label in sorted(kinds):
            row = kinds[label]
            latency_row = row.get("latency_s", {})
            lines.append(
                f"  {label:<8} {row.get('count', 0):>8d} "
                f"{cell(latency_row.get('p50'))} "
                f"{cell(latency_row.get('p99'))}   "
                f"{row.get('errors', 0)}")
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write the report as canonical (sorted-key) JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, sort_keys=True, indent=2)
        handle.write("\n")
