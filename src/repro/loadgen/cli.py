"""``bundle-charging loadgen`` — open-loop load generator.

Drives a live planning service (``bundle-charging serve``) with a
deterministic arrival schedule and a Zipf-skewed request mix, scores
latencies coordinated-omission-safely, prints a percentile table, and
optionally writes the full ``bundle-charging/loadgen/v1`` report as
JSON.  Exit status 1 when every request failed — a run that never got
an answer is a connectivity problem, not a measurement.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .mix import build_pool, churn_mix, sample_indices
from .report import build_report, render_table, write_report
from .runner import establish_sessions, run_load, serialize_pool
from .schedule import SCHEDULE_KINDS, arrival_offsets

try:  # provenance is optional, like everywhere else
    from ..obs.manifest import build_manifest as _build_manifest
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    _build_manifest = None  # type: ignore[assignment]

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bundle-charging loadgen",
        description="Open-loop load generator for the planning "
                    "service (coordinated-omission-safe latencies).")
    parser.add_argument("--url", default="http://127.0.0.1:8080",
                        help="service base URL (default: %(default)s)")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="offered arrival rate in req/s "
                             "(default: %(default)s)")
    parser.add_argument("--duration-s", type=float, default=10.0,
                        help="run length (default: %(default)s)")
    parser.add_argument("--schedule", choices=SCHEDULE_KINDS,
                        default="constant",
                        help="arrival-rate shape (default: %(default)s)")
    parser.add_argument("--rate-end", type=float, default=None,
                        help="final rate for step/ramp schedules")
    parser.add_argument("--step-at-s", type=float, default=None,
                        help="step instant (step schedule; default: "
                             "midpoint)")
    parser.add_argument("--pool", type=int, default=8,
                        help="distinct requests in the mix "
                             "(default: %(default)s)")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="Zipf skew exponent; 0 = uniform "
                             "(default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="mix sampling seed (default: %(default)s)")
    parser.add_argument("--n", type=int, default=60,
                        help="sensors per requested deployment "
                             "(default: %(default)s)")
    parser.add_argument("--planner", default="BC",
                        help="planner every request asks for "
                             "(default: %(default)s)")
    parser.add_argument("--radius-m", type=float, default=20.0,
                        help="bundle radius of the requests "
                             "(default: %(default)s)")
    parser.add_argument("--concurrency", type=int, default=32,
                        help="sender threads (default: %(default)s)")
    parser.add_argument("--timeout-s", type=float, default=30.0,
                        help="per-request HTTP timeout "
                             "(default: %(default)s)")
    parser.add_argument("--churn", type=float, default=0.0,
                        help="fraction of arrivals sent as "
                             "/v1/plan/delta repairs against "
                             "established sessions; every delta body "
                             "is precomputed before the clock starts "
                             "(default: %(default)s)")
    parser.add_argument("--out", default=None,
                        help="write the loadgen/v1 report JSON here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        offsets = arrival_offsets(args.schedule, args.rate,
                                  args.duration_s,
                                  rate_end=args.rate_end,
                                  step_at_s=args.step_at_s)
        pool = build_pool(args.pool, args.n, args.planner,
                          radius_m=args.radius_m)
        assignment = sample_indices(len(offsets), args.pool,
                                    args.zipf_s, args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not offsets:
        print("error: schedule produced zero arrivals "
              "(rate * duration < 1)", file=sys.stderr)
        return 2

    if not 0.0 <= args.churn <= 1.0:
        print(f"error: --churn must be in [0, 1]: {args.churn!r}",
              file=sys.stderr)
        return 2

    plan_url = args.url.rstrip("/") + "/v1/plan"
    print(f"loadgen: {len(offsets)} requests over {args.duration_s}s "
          f"({args.schedule} @ {args.rate} req/s, pool={args.pool}, "
          f"zipf_s={args.zipf_s}, churn={args.churn}) -> {plan_url}")
    bodies = serialize_pool(pool)
    urls = kinds = None
    if args.churn > 0.0:
        # Untimed establishment phase: one plan per rank mints the
        # session handles every delta body targets; then the whole
        # delta pool is built before the schedule starts.
        handles = establish_sessions(plan_url, bodies,
                                     timeout_s=args.timeout_s)
        established = sum(1 for handle in handles
                          if handle is not None)
        print(f"churn: established {established}/{len(pool)} sessions")
        extra, assignment, kinds = churn_mix(
            assignment, handles, args.churn, args.seed + 1, args.n)
        bodies = bodies + serialize_pool(extra)
        delta_url = args.url.rstrip("/") + "/v1/plan/delta"
        urls = [plan_url] * len(pool) + [delta_url] * len(extra)
    recorder, duration = run_load(plan_url, offsets,
                                  bodies, assignment,
                                  timeout_s=args.timeout_s,
                                  concurrency=args.concurrency,
                                  urls=urls, kinds=kinds)

    config = {
        "url": args.url, "schedule": args.schedule, "rate": args.rate,
        "rate_end": args.rate_end, "step_at_s": args.step_at_s,
        "duration_s": args.duration_s, "pool": args.pool,
        "zipf_s": args.zipf_s, "seed": args.seed, "n": args.n,
        "planner": args.planner, "radius_m": args.radius_m,
        "concurrency": args.concurrency, "timeout_s": args.timeout_s,
        "churn": args.churn,
    }
    offered = {"kind": args.schedule, "rate": args.rate,
               "rate_end": args.rate_end, "requests": len(offsets)}
    provenance = None
    if _build_manifest is not None:
        provenance = _build_manifest("loadgen", config, seeds=[args.seed],
                                     wall_time_s=duration)
    report = build_report(config, offered, duration,
                          recorder.summary(), provenance=provenance)
    print(render_table(report))
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    if recorder.count and recorder.errors >= recorder.count:
        print("error: every request failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
