"""Deterministic open-loop arrival schedules.

An open-loop load generator decides *when* each request departs before
the run starts — arrivals never wait for earlier responses, so a slow
server accumulates in-flight requests instead of silently throttling
the offered rate (the closed-loop failure mode that hides latency
problems).  Each schedule is a pure function of its parameters: the
same flags always produce the same arrival offsets.

Three shapes:

* ``constant`` — evenly spaced at ``rate`` req/s.
* ``step`` — ``rate`` until ``step_at_s``, then ``rate_end``.
* ``ramp`` — linear sweep from ``rate`` to ``rate_end`` over the run;
  arrival ``i`` solves the cumulative-arrivals integral
  ``N(t) = r0*t + (r1-r0)*t^2/(2*T)`` for ``N(t) = i`` (a quadratic),
  so instantaneous spacing matches the instantaneous rate exactly.
"""

from __future__ import annotations

import math
from typing import List, Optional

__all__ = ["SCHEDULE_KINDS", "arrival_offsets"]

#: The supported schedule shapes, in CLI order.
SCHEDULE_KINDS = ("constant", "step", "ramp")


def _constant(rate: float, duration_s: float,
              start_s: float = 0.0, start_index: int = 0) -> List[float]:
    count = int(math.floor(rate * duration_s))
    return [start_s + index / rate for index in range(count)]


def _ramp(rate: float, rate_end: float,
          duration_s: float) -> List[float]:
    # N(t) = r0*t + (r1 - r0) * t^2 / (2T); invert for each integer i.
    slope = (rate_end - rate) / duration_s
    total = int(math.floor((rate + rate_end) / 2.0 * duration_s))
    offsets: List[float] = []
    for index in range(total):
        if abs(slope) < 1e-12:
            offsets.append(index / rate)
            continue
        # (slope/2) t^2 + r0 t - i = 0 -> positive root.
        discriminant = rate * rate + 2.0 * slope * index
        offsets.append((math.sqrt(max(discriminant, 0.0)) - rate)
                       / slope)
    return offsets


def arrival_offsets(kind: str, rate: float, duration_s: float,
                    rate_end: Optional[float] = None,
                    step_at_s: Optional[float] = None) -> List[float]:
    """Return the sorted arrival offsets (seconds from run start).

    Args:
        kind: one of :data:`SCHEDULE_KINDS`.
        rate: the (initial) offered rate in requests/second.
        duration_s: total run length.
        rate_end: the post-step / ramp-target rate (``step``/``ramp``).
        step_at_s: the step instant (``step`` only; defaults to the
            midpoint).

    Raises:
        ValueError: unknown kind or non-positive rate/duration.
    """
    if kind not in SCHEDULE_KINDS:
        raise ValueError(f"unknown schedule kind {kind!r}; choose from "
                         f"{SCHEDULE_KINDS}")
    if rate <= 0.0 or duration_s <= 0.0:
        raise ValueError(f"rate and duration must be positive: "
                         f"rate={rate!r}, duration_s={duration_s!r}")
    if kind == "constant":
        return _constant(rate, duration_s)
    if rate_end is None or rate_end <= 0.0:
        raise ValueError(f"{kind} schedule needs a positive rate_end, "
                         f"got {rate_end!r}")
    if kind == "step":
        at = duration_s / 2.0 if step_at_s is None else step_at_s
        if not 0.0 < at < duration_s:
            raise ValueError(f"step_at_s must fall inside the run: "
                             f"{step_at_s!r}")
        first = _constant(rate, at)
        second = [at + offset
                  for offset in _constant(rate_end, duration_s - at)]
        return first + second
    return _ramp(rate, rate_end, duration_s)
