"""Zipf-distributed request mixes.

Real planning traffic is skewed: a few deployments are re-planned over
and over (dashboards, retries, popular scenarios) while a long tail is
asked once.  The mix models that with a pool of ``pool`` distinct
canonical requests (same shape, different deployment seeds) sampled by
rank from a Zipf law: request rank ``k`` (1-based) has probability
proportional to ``1 / k**s``.  ``s = 0`` degenerates to uniform; large
``s`` concentrates traffic on rank 1 — which is exactly what exercises
the service's digest-joining and cache paths under load.

Everything is seeded: the same ``(pool, s, seed, count)`` always yields
the same request sequence.  :func:`churn_mix` layers incremental
traffic on top — a seeded fraction of arrivals becomes unique
``/v1/plan/delta`` requests against established sessions, every body
precomputed before the clock starts.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["build_pool", "churn_mix", "sample_indices", "zipf_weights"]


def zipf_weights(pool: int, s: float) -> List[float]:
    """Normalized rank probabilities ``P(k) ~ 1/k^s`` for ``pool`` items."""
    if pool <= 0:
        raise ValueError(f"pool must be positive: {pool!r}")
    if s < 0.0:
        raise ValueError(f"zipf exponent must be non-negative: {s!r}")
    raw = [1.0 / (rank ** s) for rank in range(1, pool + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def sample_indices(count: int, pool: int, s: float,
                   seed: int) -> List[int]:
    """Draw ``count`` pool indices (0-based) from the Zipf mix."""
    weights = zipf_weights(pool, s)
    rng = random.Random(seed)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    cumulative[-1] = 1.0  # absorb float drift at the top rank
    indices: List[int] = []
    for _ in range(count):
        draw = rng.random()
        low, high = 0, pool - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < draw:
                low = mid + 1
            else:
                high = mid
        indices.append(low)
    return indices


def build_pool(pool: int, node_count: int, planner: str,
               radius_m: float = 20.0,
               base_seed: int = 0) -> List[Dict[str, Any]]:
    """Build ``pool`` distinct planning requests (seed-varied).

    Rank 0 gets ``base_seed``, rank 1 ``base_seed + 1``, ... — so the
    hottest Zipf rank is a stable, nameable request across runs.
    """
    return [
        {
            "schema": "bundle-charging/request/v1",
            "deployment": {"kind": "uniform", "n": node_count,
                           "seed": base_seed + rank},
            "planner": planner,
            "radius_m": radius_m,
        }
        for rank in range(pool)
    ]


def churn_mix(assignment: Sequence[int],
              handles: Sequence[Optional[str]],
              churn: float, seed: int, node_count: int,
              field_side_m: float = 100.0
              ) -> Tuple[List[Dict[str, Any]], List[int], List[str]]:
    """Rewrite a seeded fraction of arrivals into delta requests.

    Every converted arrival gets its *own* precomputed
    ``/v1/plan/delta`` body — a unique seeded ``sensor_moved`` against
    the establishing (root) session handle of the arrival's Zipf rank
    — built entirely before the run starts, so the churn mix stays
    coordinated-omission-safe: nothing is generated on the timed path.
    Ranks whose session failed to establish keep their plan request.

    Args:
        assignment: per-arrival plan-pool index.
        handles: per-rank session handle from the establishment phase
            (None where establishment failed).
        churn: fraction of arrivals converted, in [0, 1].
        seed: conversion + move-generation seed.
        node_count: sensors per deployment (bounds the moved index).
        field_side_m: field bound of the generated positions.

    Returns:
        ``(extra_bodies, new_assignment, kinds)`` — delta request
        dicts to append to the pool, the rewritten per-arrival
        assignment (delta arrivals index past the plan pool), and one
        ``"plan"`` / ``"delta"`` label per pool entry after extension.
    """
    if not 0.0 <= churn <= 1.0:
        raise ValueError(f"churn must be a fraction in [0, 1]: {churn!r}")
    rng = random.Random(seed)
    extra: List[Dict[str, Any]] = []
    new_assignment = list(assignment)
    base = len(handles)
    for position, rank in enumerate(assignment):
        if rng.random() >= churn:
            continue
        handle = handles[rank] if 0 <= rank < base else None
        if handle is None:
            continue
        extra.append({
            "schema": "bundle-charging/delta-request/v1",
            "session": handle,
            "deltas": [{"type": "sensor_moved", "v": 1,
                        "index": rng.randrange(node_count),
                        "x": rng.uniform(0.0, field_side_m),
                        "y": rng.uniform(0.0, field_side_m)}],
        })
        new_assignment[position] = base + len(extra) - 1
    kinds = ["plan"] * base + ["delta"] * len(extra)
    return extra, new_assignment, kinds
