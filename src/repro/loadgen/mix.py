"""Zipf-distributed request mixes.

Real planning traffic is skewed: a few deployments are re-planned over
and over (dashboards, retries, popular scenarios) while a long tail is
asked once.  The mix models that with a pool of ``pool`` distinct
canonical requests (same shape, different deployment seeds) sampled by
rank from a Zipf law: request rank ``k`` (1-based) has probability
proportional to ``1 / k**s``.  ``s = 0`` degenerates to uniform; large
``s`` concentrates traffic on rank 1 — which is exactly what exercises
the service's digest-joining and cache paths under load.

Everything is seeded: the same ``(pool, s, seed, count)`` always yields
the same request sequence.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

__all__ = ["build_pool", "sample_indices", "zipf_weights"]


def zipf_weights(pool: int, s: float) -> List[float]:
    """Normalized rank probabilities ``P(k) ~ 1/k^s`` for ``pool`` items."""
    if pool <= 0:
        raise ValueError(f"pool must be positive: {pool!r}")
    if s < 0.0:
        raise ValueError(f"zipf exponent must be non-negative: {s!r}")
    raw = [1.0 / (rank ** s) for rank in range(1, pool + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def sample_indices(count: int, pool: int, s: float,
                   seed: int) -> List[int]:
    """Draw ``count`` pool indices (0-based) from the Zipf mix."""
    weights = zipf_weights(pool, s)
    rng = random.Random(seed)
    cumulative: List[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    cumulative[-1] = 1.0  # absorb float drift at the top rank
    indices: List[int] = []
    for _ in range(count):
        draw = rng.random()
        low, high = 0, pool - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < draw:
                low = mid + 1
            else:
                high = mid
        indices.append(low)
    return indices


def build_pool(pool: int, node_count: int, planner: str,
               radius_m: float = 20.0,
               base_seed: int = 0) -> List[Dict[str, Any]]:
    """Build ``pool`` distinct planning requests (seed-varied).

    Rank 0 gets ``base_seed``, rank 1 ``base_seed + 1``, ... — so the
    hottest Zipf rank is a stable, nameable request across runs.
    """
    return [
        {
            "schema": "bundle-charging/request/v1",
            "deployment": {"kind": "uniform", "n": node_count,
                           "seed": base_seed + rank},
            "planner": planner,
            "radius_m": radius_m,
        }
        for rank in range(pool)
    ]
