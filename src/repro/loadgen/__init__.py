"""Open-loop load generation for the planning service.

``bundle-charging loadgen`` drives a live ``bundle-charging serve``
instance with a deterministic arrival schedule (constant, step, or
linear ramp), a Zipf-skewed mix of distinct planning requests, and a
coordinated-omission-safe latency recorder, then emits a
``bundle-charging/loadgen/v1`` report (p50/p90/p95/p99/max, achieved
vs offered rate, error and cache-outcome counts).  ``--churn F``
interleaves a seeded fraction of ``/v1/plan/delta`` repairs against
established sessions — every delta body precomputed before the clock
starts — and splits latencies per traffic kind in the report.

Layering (each module imports only downward):

* :mod:`.schedule` — pure arrival-offset generators.
* :mod:`.mix` — Zipf request pools (seeded sampling).
* :mod:`.recorder` — CO-safe latency accumulation + exact quantiles.
* :mod:`.report` — the loadgen/v1 document, validator, table renderer.
* :mod:`.runner` — the sender-thread crew over ``urllib``.
* :mod:`.cli` — the ``bundle-charging loadgen`` subcommand.
* :mod:`.smoke` — the live end-to-end gate CI runs.
"""

from .mix import build_pool, churn_mix, sample_indices, zipf_weights
from .recorder import LatencyRecorder, exact_quantile
from .report import (LOADGEN_SCHEMA, build_report, render_table,
                     report_problems, write_report)
from .runner import establish_sessions, run_load, serialize_pool
from .schedule import SCHEDULE_KINDS, arrival_offsets

__all__ = [
    "LOADGEN_SCHEMA",
    "LatencyRecorder",
    "SCHEDULE_KINDS",
    "arrival_offsets",
    "build_pool",
    "build_report",
    "churn_mix",
    "establish_sessions",
    "exact_quantile",
    "render_table",
    "report_problems",
    "run_load",
    "sample_indices",
    "serialize_pool",
    "write_report",
    "zipf_weights",
]
