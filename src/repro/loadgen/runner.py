"""The open-loop driver: fire requests on schedule, score honestly.

A fixed crew of sender threads shares one arrival cursor.  Each sender
claims the next arrival, sleeps until its scheduled instant, POSTs the
assigned request, and records ``(scheduled, sent, finished)`` with the
:class:`repro.loadgen.recorder.LatencyRecorder`.  When every sender is
stuck waiting on a slow server, later arrivals depart late — but their
latency is still measured from the *schedule*, so the slip shows up in
the percentiles (and separately in ``send_lag_s``) instead of being
coordinated-omitted away.

Transport errors score as status 0 and count as errors; the run never
aborts mid-schedule, because a load test that stops at the first 503
measures nothing.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from ..clock import monotonic
from .recorder import LatencyRecorder

__all__ = ["establish_sessions", "run_load", "serialize_pool"]


def establish_sessions(plan_url: str, bodies: List[bytes],
                       timeout_s: float = 30.0
                       ) -> List[Optional[str]]:
    """POST each pool body once and harvest its session handle.

    The churn mix's untimed warm-up: every rank's establishing plan
    runs before the schedule starts, returning the ``X-BC-Session``
    handle per rank (None where the request failed — those ranks keep
    serving plain plan traffic).
    """
    handles: List[Optional[str]] = []
    for body in bodies:
        request = urllib.request.Request(
            plan_url, data=body,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout_s) as response:
                response.read()
                handles.append(response.headers.get("X-BC-Session"))
        except urllib.error.HTTPError as error:
            error.read()
            handles.append(None)
        except (urllib.error.URLError, OSError, TimeoutError):
            handles.append(None)
    return handles


def _post(url: str, body: bytes, timeout_s: float
          ) -> Tuple[int, Optional[str], Optional[str], bool]:
    """POST one request; return (status, outcome, worker, failed).

    ``worker`` is the ``X-BC-Worker`` shard header a multi-process
    pool stamps on each response (None against a single server) —
    the per-worker routing histogram in the report comes from it.
    """
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request,
                                    timeout=timeout_s) as response:
            response.read()
            return (response.status,
                    response.headers.get("X-BC-Cache"),
                    response.headers.get("X-BC-Worker"), False)
    except urllib.error.HTTPError as error:
        error.read()
        return error.code, None, None, True
    except (urllib.error.URLError, OSError, TimeoutError):
        return 0, None, None, True


def run_load(plan_url: str,
             offsets: List[float],
             bodies: List[bytes],
             assignment: List[int],
             timeout_s: float = 30.0,
             concurrency: int = 32,
             urls: Optional[List[str]] = None,
             kinds: Optional[List[str]] = None
             ) -> Tuple[LatencyRecorder, float]:
    """Execute one open-loop run.

    Args:
        plan_url: the ``/v1/plan`` endpoint (the default target).
        offsets: sorted arrival offsets from
            :func:`repro.loadgen.schedule.arrival_offsets`.
        bodies: pre-serialized request bodies (the pool).
        assignment: per-arrival pool index from
            :func:`repro.loadgen.mix.sample_indices`.
        timeout_s: per-request HTTP timeout.
        concurrency: sender-thread count (bounds sockets, not offered
            rate — late sends are scored, not skipped).
        urls: optional per-pool-index target URL (same length as
            ``bodies``); lets a churn mix aim delta bodies at
            ``/v1/plan/delta`` while plan bodies keep ``plan_url``.
        kinds: optional per-pool-index traffic-kind label, recorded
            for the per-kind latency split.

    Returns:
        The populated recorder and the measured run duration.
    """
    if len(offsets) != len(assignment):
        raise ValueError(
            f"schedule and mix disagree: {len(offsets)} arrivals vs "
            f"{len(assignment)} assignments")
    for name, per_body in (("urls", urls), ("kinds", kinds)):
        if per_body is not None and len(per_body) != len(bodies):
            raise ValueError(
                f"{name} and bodies disagree: {len(per_body)} vs "
                f"{len(bodies)}")
    recorder = LatencyRecorder()
    cursor_lock = threading.Lock()
    cursor = [0]
    started = monotonic()

    def sender() -> None:
        while True:
            with cursor_lock:
                index = cursor[0]
                if index >= len(offsets):
                    return
                cursor[0] = index + 1
            scheduled = started + offsets[index]
            delay = scheduled - monotonic()
            if delay > 0.0:
                time.sleep(delay)
            sent = monotonic()
            pool_index = assignment[index]
            url = urls[pool_index] if urls is not None else plan_url
            kind = kinds[pool_index] if kinds is not None else None
            status, outcome, worker, failed = _post(
                url, bodies[pool_index], timeout_s)
            recorder.record(scheduled, sent, monotonic(), status,
                            outcome=outcome, worker=worker,
                            failed=failed, kind=kind)

    crew = [threading.Thread(target=sender, name=f"loadgen-{i}",
                             daemon=True)
            for i in range(max(1, min(concurrency, len(offsets))))]
    for thread in crew:
        thread.start()
    for thread in crew:
        thread.join()
    return recorder, monotonic() - started


def serialize_pool(pool: List[Dict[str, Any]]) -> List[bytes]:
    """Pre-serialize request bodies (off the timed path)."""
    return [json.dumps(request, sort_keys=True).encode("utf-8")
            for request in pool]
