"""Exception hierarchy for the bundle-charging library.

Every error raised on purpose by this package derives from
:class:`BundleChargingError`, so callers can catch one base class.
"""

from __future__ import annotations


class BundleChargingError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(BundleChargingError):
    """Raised for invalid geometric inputs (degenerate disks, bad radii)."""


class ModelError(BundleChargingError):
    """Raised for invalid charging-model parameters or queries."""


class DeploymentError(BundleChargingError):
    """Raised when a sensor deployment cannot be generated as requested."""


class BundlingError(BundleChargingError):
    """Raised when bundle generation fails or is given invalid input."""


class CoverageError(BundlingError):
    """Raised when a bundle set does not cover every sensor it must cover."""


class TourError(BundleChargingError):
    """Raised for invalid tours (wrong permutation, unknown stop index)."""


class PlanError(BundleChargingError):
    """Raised when a charging plan is internally inconsistent."""


class SimulationError(BundleChargingError):
    """Raised by the discrete-event simulator on invalid schedules."""


class ExperimentError(BundleChargingError):
    """Raised by the experiment harness for unknown or bad configs."""


class CacheError(BundleChargingError):
    """Raised by the stage-memoization cache: unkeyable inputs, invalid
    configuration, or a shadow-verify mismatch (a cache hit that is not
    bit-identical to recomputation)."""


class ValidationError(BundleChargingError):
    """Raised when a produced plan violates the charging constraint."""


class ServiceError(BundleChargingError):
    """Raised by the planning service: invalid requests, admission
    rejections (queue overload, draining shutdown), or bad service
    configuration."""


class DeltaError(BundleChargingError):
    """Raised by the incremental-replanning subsystem: malformed delta
    records, deltas that cannot apply to the retained session state
    (unknown or dead sensor indices, out-of-field positions), or a
    shadow-verified repair whose energy exceeds the configured bound."""
