"""The typed delta vocabulary: what can change between two plans.

Three record types describe network churn — a sensor moved, died, or
joined — and a :class:`DeltaSet` batches them into one atomic edit
applied to a retained plan state.  Records serialize exactly like the
mission-trace records of :mod:`repro.sim.trace` (plain dicts with a
``"type"`` discriminator and a ``"v"`` version field), so delta
streams, mission traces and observability streams share one JSONL
vocabulary; :mod:`repro.sim.events` exposes the unified registry and
:func:`repro.obs.validate.validate_events` accepts both families.

Everything here is pure stdlib (no geometry imports beyond
:class:`Point`) so the wire layer stays importable in degraded builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..errors import DeltaError

#: Version tag for serialized delta records.
DELTA_RECORD_SCHEMA = "bundle-charging/delta/v1"

#: Hard cap on one DeltaSet (keeps a single repair bounded).
MAX_DELTAS = 1024

__all__ = [
    "DELTA_RECORD_SCHEMA",
    "DELTA_RECORD_TYPES",
    "MAX_DELTAS",
    "DeltaSet",
    "SensorDied",
    "SensorJoined",
    "SensorMoved",
    "delta_problems",
    "delta_record_from_dict",
]


def _require_number(raw: Dict[str, Any], key: str) -> float:
    value = raw[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{key} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class SensorMoved:
    """A sensor changed position (mobility, re-deployment, drift).

    Attributes:
        index: which sensor moved (index in the retained deployment).
        x / y: the new position.
    """

    index: int
    x: float
    y: float

    def to_dict(self) -> Dict[str, Any]:
        """Serialize as a type-discriminated JSONL-ready dict."""
        return {"type": "sensor_moved", "v": 1, "index": self.index,
                "x": self.x, "y": self.y}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SensorMoved":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(index=int(raw["index"]),
                   x=_require_number(raw, "x"),
                   y=_require_number(raw, "y"))


@dataclass(frozen=True)
class SensorDied:
    """A sensor left the network (hardware failure, battery death).

    Attributes:
        index: which sensor died.  Its index stays reserved — indices
            are stable identifiers and are never re-packed by a repair.
    """

    index: int

    def to_dict(self) -> Dict[str, Any]:
        """Serialize as a type-discriminated JSONL-ready dict."""
        return {"type": "sensor_died", "v": 1, "index": self.index}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SensorDied":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(index=int(raw["index"]))


@dataclass(frozen=True)
class SensorJoined:
    """A new sensor appeared; it takes the next free index on apply.

    Attributes:
        x / y: deployment position of the new sensor.
    """

    x: float
    y: float

    def to_dict(self) -> Dict[str, Any]:
        """Serialize as a type-discriminated JSONL-ready dict."""
        return {"type": "sensor_joined", "v": 1, "x": self.x,
                "y": self.y}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SensorJoined":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(x=_require_number(raw, "x"),
                   y=_require_number(raw, "y"))


#: ``"type"`` discriminator -> record class, for stream replay.
DELTA_RECORD_TYPES = {
    "sensor_moved": SensorMoved,
    "sensor_died": SensorDied,
    "sensor_joined": SensorJoined,
}

DeltaRecord = Any  # SensorMoved | SensorDied | SensorJoined


def delta_record_from_dict(raw: Dict[str, Any]) -> DeltaRecord:
    """Rebuild any delta record from its serialized form.

    Raises:
        DeltaError: on a missing or unknown ``"type"`` or a malformed
            record body.
    """
    kind = raw.get("type") if isinstance(raw, dict) else None
    record_class = DELTA_RECORD_TYPES.get(kind)
    if record_class is None:
        raise DeltaError(
            f"unknown delta record type {kind!r}; expected one of "
            f"{sorted(DELTA_RECORD_TYPES)}")
    try:
        return record_class.from_dict(raw)
    except (KeyError, TypeError, ValueError) as error:
        raise DeltaError(
            f"malformed {kind!r} delta record {raw!r}: {error}"
        ) from error


def delta_problems(raw: Any) -> List[str]:
    """Return every structural problem of a serialized delta list.

    Mirrors the service wire validators: one human-readable string per
    failure, empty list when the stream is valid.  An empty list is
    valid — an empty :class:`DeltaSet` is the no-op repair.
    """
    problems: List[str] = []
    if not isinstance(raw, list):
        return ["deltas must be a JSON list of delta records"]
    if len(raw) > MAX_DELTAS:
        return [f"delta set carries {len(raw)} records; the limit is "
                f"{MAX_DELTAS}"]
    for position, record in enumerate(raw):
        if not isinstance(record, dict):
            problems.append(
                f"deltas[{position}] must be an object, got {record!r}")
            continue
        try:
            delta_record_from_dict(record)
        except DeltaError as error:
            problems.append(f"deltas[{position}]: {error}")
    return problems


@dataclass(frozen=True)
class DeltaSet:
    """An ordered batch of delta records applied as one atomic edit.

    Order matters: a ``sensor_joined`` takes the next free index at its
    position in the sequence, and later records may reference it.

    Attributes:
        deltas: the records, in application order.
    """

    deltas: Tuple[DeltaRecord, ...] = ()

    def __post_init__(self) -> None:
        if len(self.deltas) > MAX_DELTAS:
            raise DeltaError(
                f"delta set carries {len(self.deltas)} records; the "
                f"limit is {MAX_DELTAS}")
        for record in self.deltas:
            if type(record) not in DELTA_RECORD_TYPES.values():
                raise DeltaError(
                    f"not a delta record: {record!r}")

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self):
        return iter(self.deltas)

    @property
    def is_empty(self) -> bool:
        """True for the no-op edit (repair must be byte-identical)."""
        return not self.deltas

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialize every record, preserving application order."""
        return [record.to_dict() for record in self.deltas]

    @classmethod
    def from_dicts(cls, raw: Sequence[Dict[str, Any]]) -> "DeltaSet":
        """Rebuild a delta set from :meth:`to_dicts` output.

        Raises:
            DeltaError: on any malformed record.
        """
        if not isinstance(raw, (list, tuple)):
            raise DeltaError(
                f"delta set must be a list of records, got {raw!r}")
        return cls(tuple(delta_record_from_dict(record)
                         for record in raw))

    def changed_indices(self, existing_count: int) -> List[int]:
        """Indices this edit touches (joins numbered from
        ``existing_count`` in application order)."""
        touched: List[int] = []
        next_index = existing_count
        for record in self.deltas:
            if isinstance(record, SensorJoined):
                touched.append(next_index)
                next_index += 1
            else:
                touched.append(record.index)
        return touched


def _as_delta_set(deltas: Iterable[Any]) -> DeltaSet:
    """Coerce records-or-dicts into a DeltaSet (internal helper)."""
    records = []
    for record in deltas:
        if isinstance(record, dict):
            records.append(delta_record_from_dict(record))
        else:
            records.append(record)
    return DeltaSet(tuple(records))
