"""Retained plan sessions: the state behind ``POST /v1/plan/delta``.

A :class:`PlanSession` pairs a retained :class:`~repro.delta.engine.PlanState`
with its wire identity: the canonical ``/v1/plan`` request that created
it, the root request digest, and the session *handle* clients present
on delta calls.  Handles are content-addressed and chain-structured::

    <root-digest>                      the freshly planned session
    <root-digest>.<state-digest>       after one or more repairs

The root segment never changes along a repair chain, which is what
lets the multi-worker dispatcher route every delta of a session to the
worker that planned it (the same digest the ``/v1/plan`` shard used).
The state digest covers the post-edit deployment, liveness and plan,
so the handle is a pure function of session content — two identical
repair chains produce identical handles on any worker.

Sessions are rebuildable from ``(canonical request, payload)`` alone
(:func:`session_from_plan_payload`), so holding one is never required
for correctness — it is a performance artifact, like a cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable

from ..errors import DeltaError
from ..geometry import Point
from ..tour import ChargingPlan, Stop
from .engine import PlanState, apply_delta_set
from .events import _as_delta_set

try:  # kernel fingerprints are optional: sessions work with cache absent
    from ..cache.keys import KERNEL_VERSIONS
except ImportError:  # pragma: no cover - repro.cache stripped/blocked
    KERNEL_VERSIONS: Dict[str, str] = {}  # type: ignore[no-redef]

__all__ = [
    "DELTA_KERNEL_STAGES",
    "PlanSession",
    "advance_session",
    "delta_kernel_sha256",
    "handle_root",
    "plan_from_dict",
    "plan_to_dict",
    "session_from_plan_payload",
    "state_digest",
]

#: Cache stages whose kernel tags invalidate retained sessions: a bump
#: in any of these changes what a repair would compute, so a client
#: holding a handle minted under the old tags must re-establish.
DELTA_KERNEL_STAGES = ("candidates", "cover", "tsp", "anchor_opt",
                       "delta_candidates", "delta_cover", "delta_request")


def _canonical_json(document: Any) -> str:
    """Canonical JSON (sorted keys, no whitespace) — digest input."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def delta_kernel_sha256() -> str:
    """Fingerprint of every kernel tag a repair depends on.

    Deterministic across processes of the same build; changes exactly
    when one of :data:`DELTA_KERNEL_STAGES` bumps its tag in
    :data:`repro.cache.keys.KERNEL_VERSIONS`.  The service returns 409
    for deltas that pin a different fingerprint.
    """
    tags = {stage: KERNEL_VERSIONS.get(stage, "off")
            for stage in DELTA_KERNEL_STAGES}
    return _sha256(_canonical_json(tags))


def plan_to_dict(plan: ChargingPlan) -> Dict[str, Any]:
    """Serialize a plan exactly like a ``/v1/plan`` payload does.

    This is the single source of the wire shape — the service executor
    delegates here — so a repaired plan and a fresh plan serialize
    byte-identically when they are the same plan.
    """
    depot = plan.depot
    return {
        "label": plan.label,
        "depot": [depot.x, depot.y] if depot is not None else None,
        "stops": [
            {
                "position": [stop.position.x, stop.position.y],
                "sensors": sorted(stop.sensors),
                "dwell_s": stop.dwell_s,
            }
            for stop in plan.stops
        ],
        "tour_length_m": plan.tour_length(),
    }


def plan_from_dict(raw: Dict[str, Any]) -> ChargingPlan:
    """Rebuild a :class:`ChargingPlan` from :func:`plan_to_dict` output.

    Lossless for the byte-identity contract: serializing the rebuilt
    plan reproduces the input dict exactly (floats round-trip through
    ``repr``, the tour length is recomputed from identical waypoints).

    Raises:
        DeltaError: on a malformed plan document.
    """
    try:
        depot_raw = raw["depot"]
        depot = (Point(float(depot_raw[0]), float(depot_raw[1]))
                 if depot_raw is not None else None)
        stops = tuple(
            Stop(position=Point(float(stop["position"][0]),
                                float(stop["position"][1])),
                 sensors=frozenset(int(i) for i in stop["sensors"]),
                 dwell_s=float(stop["dwell_s"]))
            for stop in raw["stops"])
        return ChargingPlan(stops=stops, depot=depot,
                            label=str(raw["label"]))
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise DeltaError(f"malformed plan document: {error}") from error


@dataclass(frozen=True)
class PlanSession:
    """One retained plan and its wire identity.

    Attributes:
        request: the canonical ``/v1/plan`` request that established
            the session (the repair chain's planner configuration).
        root: the request digest — the handle's routing segment.
        handle: what clients present on ``/v1/plan/delta``.
        state: the retained deployment + plan.
        plan_dict: the current plan, serialized — retained so an empty
            delta set answers byte-identically without recomputation.
    """

    request: Dict[str, Any]
    root: str
    handle: str
    state: PlanState
    plan_dict: Dict[str, Any]


def handle_root(handle: str) -> str:
    """The routing segment of a session handle (chains keep the root)."""
    return handle.split(".", 1)[0]


def state_digest(root: str, state: PlanState) -> str:
    """Content digest of a session's post-edit state."""
    document = {
        "base": root,
        "locations": [[p.x, p.y] for p in state.locations],
        "alive": list(state.alive),
        "plan": plan_to_dict(state.plan),
    }
    return _sha256(_canonical_json(document))


def session_from_plan_payload(request: Dict[str, Any],
                              payload: Dict[str, Any]) -> PlanSession:
    """Establish a session from a ``/v1/plan`` canonical request + payload.

    Pure reconstruction — no planning: the deployment is rebuilt from
    the request (through the shared ``deployment`` cache stage for
    uniform specs) and the plan from the payload, so establishing a
    session costs far less than the plan it retains.
    """
    from ..service.executor import request_network

    network = request_network(request)
    plan_dict = payload["plan"]
    state = PlanState(
        locations=tuple(network.locations),
        alive=(True,) * len(network),
        plan=plan_from_dict(plan_dict),
        radius=request["radius_m"],
        planner=request["planner"],
        tsp_strategy=request["tsp_strategy"],
        seed=request["seed"],
        field_side_m=network.field_side_m,
    )
    root = payload["request_sha256"]
    return PlanSession(request=request, root=root, handle=root,
                       state=state, plan_dict=plan_dict)


def advance_session(session: PlanSession, deltas: Iterable[Any],
                    payload: Dict[str, Any]) -> PlanSession:
    """Build the successor session after a repair.

    Cheap on purpose: the successor's state is reconstructed from the
    edit and the repaired payload (never by re-running the repair), so
    cache hits and misses advance identically and the handle chain is
    the same on every worker.
    """
    delta_set = _as_delta_set(deltas)
    if delta_set.is_empty:
        return session
    locations, alive, _, _ = apply_delta_set(session.state, delta_set)
    plan_dict = payload["plan"]
    state = replace(session.state, locations=tuple(locations),
                    alive=tuple(alive), plan=plan_from_dict(plan_dict))
    handle = f"{session.root}.{state_digest(session.root, state)}"
    return PlanSession(request=session.request, root=session.root,
                       handle=handle, state=state, plan_dict=plan_dict)
