"""A bounded, thread-safe LRU store for retained plan sessions.

The service keeps sessions the way it keeps cache entries: bounded,
evict-least-recently-used, and safe to lose — a session is rebuildable
from its establishing request + payload, so eviction costs a client
one re-establishment, never correctness.  Every handle in a repair
chain stays addressable until evicted, so clients may fork a chain
(replay different deltas against an old handle) freely.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional

from ..errors import DeltaError
from .session import PlanSession

__all__ = ["DEFAULT_SESSION_ENTRIES", "SessionStore"]

#: Default retained-session bound (per worker process).
DEFAULT_SESSION_ENTRIES = 256


class SessionStore:
    """Bounded LRU map: session handle -> :class:`PlanSession`."""

    def __init__(self, max_entries: int = DEFAULT_SESSION_ENTRIES) -> None:
        if max_entries < 1:
            raise DeltaError(
                f"session store needs at least one entry, got "
                f"{max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[str, PlanSession]" = OrderedDict()
        self.evictions = 0

    def get(self, handle: str) -> Optional[PlanSession]:
        """Look a session up and mark it most recently used."""
        with self._lock:
            session = self._sessions.get(handle)
            if session is not None:
                self._sessions.move_to_end(handle)
            return session

    def put(self, session: PlanSession) -> None:
        """Retain a session (idempotent per handle), evicting LRU."""
        with self._lock:
            self._sessions[session.handle] = session
            self._sessions.move_to_end(session.handle)
            while len(self._sessions) > self.max_entries:
                self._sessions.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def handles(self) -> List[str]:
        """Current handles, least recently used first (for tests)."""
        with self._lock:
            return list(self._sessions)
