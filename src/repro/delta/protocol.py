"""Wire protocol of ``POST /v1/plan/delta``.

A delta request references a retained session by handle and carries an
ordered list of serialized delta records::

    {"schema": "bundle-charging/delta-request/v1",
     "session": "<handle from a prior /v1/plan or delta response>",
     "deltas": [{"type": "sensor_moved", "v": 1, ...}, ...],
     "kernel_sha256": "<optional pin from delta_kernel_sha256()>"}

The server normalizes this into a **canonical delta request** — the
planner name of the session's establishing request joins the dict so
scheduler metrics and spans label uniformly — and the canonical form
is the micro-batching and ``delta_request`` cache key, exactly like a
canonical plan request is for ``/v1/plan``.  Error mapping mirrors the
plan endpoint's typed envelopes, with two delta-specific codes:
``unknown-session`` (404: handle not retained — re-establish via
``/v1/plan``) and ``stale-kernel`` (409: the pinned kernel fingerprint
does not match this server's, so the retained session's cache lineage
is invalid for the client's expectations).

Pure stdlib + :mod:`repro.delta.events`; imports nothing from
``repro.service``, so the service can layer on top without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..errors import DeltaError
from .events import delta_problems, delta_record_from_dict

__all__ = [
    "DELTA_ERROR_STATUS",
    "DELTA_REQUEST_SCHEMA",
    "canonical_delta_request",
    "canonical_delta_request_problems",
    "delta_payload_problems",
    "delta_request_problems",
    "require_valid_delta_request",
]

#: Schema tag of the delta-request wire format.
DELTA_REQUEST_SCHEMA = "bundle-charging/delta-request/v1"

#: Typed error code -> HTTP status for the delta endpoint.
DELTA_ERROR_STATUS = {
    "invalid-request": 400,
    "unsupported-schema": 400,
    "unknown-session": 404,
    "stale-kernel": 409,
}

_WIRE_KEYS = frozenset({"schema", "session", "deltas", "kernel_sha256"})

#: Keys every delta payload carries (the response contract).
_PAYLOAD_KEYS = ("request", "request_sha256", "plan", "metrics",
                 "alive_count", "session", "repair")

_REPAIR_KEYS = ("strategy", "delta_count", "dirty_sensors",
                "evicted_stops", "inserted_stops", "alive_count")


def delta_request_problems(body: Any) -> List[str]:
    """Return every structural problem of a delta request body.

    Shared verbatim by the worker and the pool dispatcher so both tiers
    reject malformed bodies with byte-identical problem lists.
    """
    problems: List[str] = []
    if not isinstance(body, dict):
        return ["request body must be a JSON object"]
    schema = body.get("schema", DELTA_REQUEST_SCHEMA)
    if schema != DELTA_REQUEST_SCHEMA:
        return [f"unsupported request schema {schema!r} "
                f"(expected {DELTA_REQUEST_SCHEMA!r})"]
    unknown = sorted(set(body) - _WIRE_KEYS)
    if unknown:
        problems.append(f"request has unknown keys {unknown}")
    session = body.get("session")
    if not isinstance(session, str) or not session:
        problems.append(
            f"session must be a non-empty handle string, got {session!r}")
    kernel = body.get("kernel_sha256")
    if kernel is not None and (not isinstance(kernel, str) or not kernel):
        problems.append(
            f"kernel_sha256 must be a fingerprint string when present, "
            f"got {kernel!r}")
    if "deltas" not in body:
        problems.append("request carries no 'deltas' list")
    else:
        problems.extend(delta_problems(body["deltas"]))
    return problems


def canonical_delta_request(body: Dict[str, Any],
                            planner: str) -> Dict[str, Any]:
    """Normalize a validated delta body into its canonical form.

    Every delta record round-trips through its dataclass so numeric
    fields canonicalize (``1`` and ``1.0`` normalize identically), and
    the session's planner name joins the dict — the scheduler labels
    spans and metrics by ``request["planner"]`` for every batch kind.
    The optional client-side ``kernel_sha256`` pin is transport-level
    (checked at admission) and stays out of the canonical form, so a
    pinned and an unpinned request share one batch and cache entry.
    """
    deltas = [delta_record_from_dict(record).to_dict()
              for record in body["deltas"]]
    return {
        "schema": DELTA_REQUEST_SCHEMA,
        "planner": planner,
        "session": body["session"],
        "deltas": deltas,
    }


def canonical_delta_request_problems(request: Any) -> List[str]:
    """Validate a *canonical* delta request (as embedded in payloads)."""
    problems: List[str] = []
    if not isinstance(request, dict):
        return ["canonical delta request must be an object"]
    if request.get("schema") != DELTA_REQUEST_SCHEMA:
        problems.append(
            f"unknown delta request schema {request.get('schema')!r}")
    if not isinstance(request.get("planner"), str):
        problems.append("canonical delta request missing planner name")
    session = request.get("session")
    if not isinstance(session, str) or not session:
        problems.append(
            f"session must be a non-empty handle string, got {session!r}")
    problems.extend(delta_problems(request.get("deltas")))
    return problems


def delta_payload_problems(payload: Any) -> List[str]:
    """Return every structural problem of a delta response payload.

    Used by :func:`repro.service.request.response_problems` (and through
    it :mod:`repro.obs.validate`) when an ok envelope wraps a delta
    payload — recognized by the embedded request's schema tag.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["delta payload must be an object"]
    for key in _PAYLOAD_KEYS:
        if key not in payload:
            problems.append(f"delta payload missing key {key!r}")
    problems.extend(canonical_delta_request_problems(
        payload.get("request")))
    session = payload.get("session")
    if not isinstance(session, str) or not session:
        problems.append("delta payload must carry the successor handle")
    repair = payload.get("repair")
    if not isinstance(repair, dict):
        problems.append("delta payload must carry a repair report")
    else:
        for key in _REPAIR_KEYS:
            if key not in repair:
                problems.append(f"repair report missing key {key!r}")
        if repair.get("strategy") not in ("noop", "repair", "full"):
            problems.append(
                f"repair strategy must be noop/repair/full, got "
                f"{repair.get('strategy')!r}")
    return problems


def require_valid_delta_request(body: Any) -> None:
    """Raise :class:`DeltaError` listing problems of an invalid body."""
    problems = delta_request_problems(body)
    if problems:
        raise DeltaError("; ".join(problems))
