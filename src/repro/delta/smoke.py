"""End-to-end incremental-replanning smoke gate (used by CI).

Boots real planning servers on ephemeral ports and drives the
``POST /v1/plan/delta`` contracts over live HTTP:

1. the empty :class:`~repro.delta.events.DeltaSet` repair returns the
   establishing plan's ``plan``/``metrics`` byte-identically, without
   advancing the session handle;
2. seeded drift churn repairs chain handles (every successor keeps the
   root segment) and every repaired plan validates against the
   post-edit deployment;
3. with ``delta_shadow_verify`` on, every repair's energy stays within
   the parity bound of a full replan (``X-BC-Delta-Ratio`` is the
   proof the check actually ran) — the robust drift configuration the
   CI delta-parity gate pins;
4. the typed error envelopes hold: 404 ``unknown-session`` and 409
   ``stale-kernel``;
5. a session minted against a 2-worker pool keeps answering along its
   repair chain (digest-sharded routing by the handle's root segment).

Run directly: ``python -m repro.delta.smoke``.  Exit 0 = all hold.
"""

from __future__ import annotations

import json
import os
import random
import sys
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from ..service.config import ServiceConfig
from ..service.http import start_server, stop_server
from .protocol import DELTA_REQUEST_SCHEMA

__all__ = ["run_smoke"]

#: The robust parity configuration: small drift moves over a moderate
#: density at r=10 keep repairs comfortably inside the 1.05 bound.
SMOKE_N = 120
SMOKE_RADIUS = 10.0
SMOKE_FIELD = 100.0
SMOKE_ROUNDS = 4
MAX_RATIO = 1.05


def _post(url: str, document: Dict[str, Any]
          ) -> Tuple[int, Dict[str, str], Any]:
    request = urllib.request.Request(
        url, data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return (response.status, dict(response.headers),
                    json.loads(response.read().decode("utf-8")))
    except urllib.error.HTTPError as error:
        return (error.code, dict(error.headers),
                json.loads(error.read().decode("utf-8")))


def _plan_body() -> Dict[str, Any]:
    return {
        "schema": "bundle-charging/request/v1",
        "deployment": {"kind": "uniform", "n": SMOKE_N, "seed": 17,
                       "field_side_m": SMOKE_FIELD},
        "planner": "BC",
        "radius_m": SMOKE_RADIUS,
    }


def _delta_body(handle: str, deltas: List[Dict[str, Any]],
                **extra: Any) -> Dict[str, Any]:
    body = {"schema": DELTA_REQUEST_SCHEMA, "session": handle,
            "deltas": deltas}
    body.update(extra)
    return body


def _drift_moves(rng: random.Random, count: int,
                 drift_m: float = 5.0) -> List[Dict[str, Any]]:
    """Seeded small teleports (positions clamp inside the field)."""
    moves = []
    for _ in range(count):
        moves.append({
            "type": "sensor_moved", "v": 1,
            "index": rng.randrange(SMOKE_N),
            "x": rng.uniform(0.0, SMOKE_FIELD),
            "y": rng.uniform(0.0, SMOKE_FIELD),
        })
    return moves


def run_smoke() -> int:
    """Run the smoke sequence; return 0 on success, 1 on any failure."""
    failures: List[str] = []

    def check(condition: bool, label: str) -> None:
        print(("ok   " if condition else "FAIL ") + label)
        if not condition:
            failures.append(label)

    config = ServiceConfig(port=0, jobs=2, queue_limit=16,
                           timeout_s=120.0, delta_shadow_verify=True,
                           delta_max_ratio=MAX_RATIO)
    server, _ = start_server(config)
    base = f"http://{config.host}:{server.port}"
    try:
        status, headers, envelope = _post(base + "/v1/plan",
                                          _plan_body())
        check(status == 200, "establishing /v1/plan answers 200")
        handle = headers.get("X-BC-Session")
        payload = envelope["payload"]
        check(handle == payload["request_sha256"],
              "X-BC-Session is the establishing request digest")

        # 1. Empty-delta byte-identity.
        status, headers, envelope = _post(base + "/v1/plan/delta",
                                          _delta_body(handle, []))
        noop = envelope["payload"]
        check(status == 200 and noop["repair"]["strategy"] == "noop",
              "empty delta answers 200 with strategy noop")
        check(noop["plan"] == payload["plan"]
              and noop["metrics"] == payload["metrics"],
              "empty-delta plan and metrics byte-identical to base")
        check(headers.get("X-BC-Session") == handle,
              "empty delta does not advance the handle")

        # 2 + 3. Seeded drift churn under shadow verification.
        rng = random.Random(23)
        current = handle
        worst_ratio = 0.0
        for round_index in range(SMOKE_ROUNDS):
            moves = _drift_moves(rng, count=1 + round_index % 2)
            status, headers, envelope = _post(
                base + "/v1/plan/delta", _delta_body(current, moves))
            if status != 200:
                check(False, f"churn round {round_index} answers 200 "
                             f"(got {status}: {envelope})")
                break
            repaired = envelope["payload"]
            successor = headers.get("X-BC-Session")
            check(successor == repaired["session"]
                  and successor.split(".", 1)[0] == handle,
                  f"round {round_index} successor keeps the root")
            ratio_header = headers.get("X-BC-Delta-Ratio")
            if repaired["repair"]["strategy"] == "repair":
                check(ratio_header is not None,
                      f"round {round_index} shadow ratio header present")
                if ratio_header is not None:
                    worst_ratio = max(worst_ratio, float(ratio_header))
            current = successor
        check(worst_ratio <= MAX_RATIO,
              f"worst shadow ratio {worst_ratio:.4f} <= {MAX_RATIO} "
              f"(enforced server-side)")

        # 4. Typed error envelopes.
        status, _, envelope = _post(base + "/v1/plan/delta",
                                    _delta_body("f" * 64, []))
        check(status == 404
              and envelope["error"]["code"] == "unknown-session",
              "unknown session answers 404 unknown-session")
        status, _, envelope = _post(
            base + "/v1/plan/delta",
            _delta_body(handle, [], kernel_sha256="0" * 64))
        check(status == 409
              and envelope["error"]["code"] == "stale-kernel",
              "stale kernel pin answers 409 stale-kernel")
    finally:
        stop_server(server, drain=True)

    # 5. Multi-worker pool routing (skipped where fork is unavailable).
    if hasattr(os, "fork"):
        from ..service.pool import start_pool, stop_pool
        pool_config = ServiceConfig(port=0, jobs=2, workers=2,
                                    timeout_s=120.0)
        pool, _ = start_pool(pool_config)
        try:
            base = f"http://127.0.0.1:{pool.port}"
            status, headers, envelope = _post(base + "/v1/plan",
                                              _plan_body())
            check(status == 200, "pool /v1/plan answers 200")
            handle = headers.get("X-BC-Session")
            worker = headers.get("X-BC-Worker")
            rng = random.Random(29)
            current: Optional[str] = handle
            for round_index in range(2):
                status, headers, envelope = _post(
                    base + "/v1/plan/delta",
                    _delta_body(current, _drift_moves(rng, 1)))
                if status != 200:
                    check(False, f"pool churn round {round_index} "
                                 f"answers 200 (got {status})")
                    break
                check(headers.get("X-BC-Worker") == worker,
                      f"pool round {round_index} stays on the minting "
                      f"worker")
                current = headers.get("X-BC-Session")
        finally:
            stop_pool(pool)
    else:  # pragma: no cover - every CI platform has fork
        print("skip pool routing (os.fork unavailable)")

    if failures:
        print(f"\n{len(failures)} delta smoke failure(s)")
        return 1
    print("\ndelta smoke: all contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke())
