"""Incremental replanning: apply network churn without a full replan.

The subsystem in one pass: :mod:`repro.delta.events` defines the typed
delta vocabulary (``sensor_moved`` / ``sensor_died`` /
``sensor_joined``, batched as a :class:`DeltaSet`);
:mod:`repro.delta.engine` applies a batch to a retained
:class:`PlanState` by regenerating only the dirty region's bundles and
splicing the tour; :mod:`repro.delta.session` gives repaired plans
their wire identity (content-addressed session handles);
:mod:`repro.delta.store` bounds how many sessions a server retains;
and :mod:`repro.delta.protocol` is the ``POST /v1/plan/delta`` wire
format the service exposes on top.
"""

from .engine import (DEFAULT_MAX_RATIO, FULL_REPLAN_FRACTION, PlanState,
                     RepairReport, apply_delta_set, dirty_sensor_set,
                     full_replan, initial_state, repair_plan,
                     validate_repair)
from .events import (DELTA_RECORD_SCHEMA, DELTA_RECORD_TYPES, MAX_DELTAS,
                     DeltaSet, SensorDied, SensorJoined, SensorMoved,
                     delta_problems, delta_record_from_dict)
from .protocol import (DELTA_ERROR_STATUS, DELTA_REQUEST_SCHEMA,
                       canonical_delta_request,
                       canonical_delta_request_problems,
                       delta_payload_problems, delta_request_problems)
from .session import (DELTA_KERNEL_STAGES, PlanSession, advance_session,
                      delta_kernel_sha256, handle_root, plan_from_dict,
                      plan_to_dict, session_from_plan_payload,
                      state_digest)
from .store import DEFAULT_SESSION_ENTRIES, SessionStore

__all__ = [
    "DEFAULT_MAX_RATIO",
    "DEFAULT_SESSION_ENTRIES",
    "DELTA_ERROR_STATUS",
    "DELTA_KERNEL_STAGES",
    "DELTA_RECORD_SCHEMA",
    "DELTA_RECORD_TYPES",
    "DELTA_REQUEST_SCHEMA",
    "FULL_REPLAN_FRACTION",
    "MAX_DELTAS",
    "DeltaSet",
    "PlanSession",
    "PlanState",
    "RepairReport",
    "SensorDied",
    "SensorJoined",
    "SensorMoved",
    "SessionStore",
    "advance_session",
    "apply_delta_set",
    "canonical_delta_request",
    "canonical_delta_request_problems",
    "delta_kernel_sha256",
    "delta_payload_problems",
    "delta_problems",
    "delta_record_from_dict",
    "delta_request_problems",
    "dirty_sensor_set",
    "full_replan",
    "handle_root",
    "initial_state",
    "plan_from_dict",
    "plan_to_dict",
    "repair_plan",
    "session_from_plan_payload",
    "state_digest",
    "validate_repair",
]
