"""Dirty-region plan repair: apply a :class:`DeltaSet` without replanning.

The engine retains a :class:`PlanState` — the deployment, liveness
vector and current :class:`~repro.tour.ChargingPlan` — and repairs it
in place of a full replan:

1. **Dirty region.**  Candidate disks are sensor-anchored with radius
   ``r`` (Definition 3), so the membership of sensor ``j``'s disk
   changes exactly when a change site lies within ``r`` of ``j``.
   Every changed coordinate — a moved sensor's old and new position, a
   dead sensor's position, a joiner's position — is queried against the
   :class:`~repro.geometry.FlatDeployment` flat buffers at radius
   ``r``; the union mask is the dirty set: the anchors of every
   candidate disk the edit touched.
2. **Bundle eviction + sub-cover.**  Stops whose members intersect the
   dirty set (or contain a dead sensor) are evicted; the displaced
   alive sensors form a sub-deployment that is re-covered by the same
   candidate-enumeration + lazy-greedy kernels as a full plan, memoized
   under the ``delta_candidates`` / ``delta_cover`` stage keys so
   repeated repairs of the same region hit :mod:`repro.cache`.
3. **Tour splice.**  Surviving stops keep their relative order; each
   new stop enters at its cheapest-insertion gap, then a localized
   Or-opt pass relocates only the spliced stops and their immediate
   neighbors.  Cost is ``O(k·n)`` for ``k`` new stops — never a fresh
   TSP solve.

A repair that would rebuild more than half the alive network falls back
to a deterministic full replan (strategy ``"full"``); an empty delta
set returns the retained state object unchanged (strategy ``"noop"``),
which is what makes the service's empty-delta byte-identity guarantee
trivial.  ``shadow=True`` runs the full replan alongside every repair
and enforces the energy-ratio bound, mirroring the cache shadow-verify
idiom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from ..bundling import bitset
from ..bundling.bundle import make_bundle
from ..bundling.candidates import (candidate_member_masks,
                                   candidate_member_sets, maximal_candidates,
                                   maximal_masks)
from ..bundling.greedy import (greedy_cover_masks,
                               greedy_set_cover_reference)
from ..bundling.bitset import indices_from_mask
from ..charging import CostParameters
from ..errors import DeltaError
from ..geometry import (FlatDeployment, Point, flat_dirty_members, soa)
from ..network import Sensor, SensorNetwork
from ..planners import make_planner
from ..tour import ChargingPlan, Stop, plan_total_energy, stop_for_sensors
from .events import DeltaSet, SensorDied, SensorJoined, SensorMoved, \
    _as_delta_set

try:  # tracing is optional: repair works with repro.obs absent
    from ..obs.tracer import obs_span
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()

try:  # memoization is optional: repair works with repro.cache absent
    from ..cache import stage_memo
except ImportError:  # pragma: no cover - repro.cache stripped/blocked
    def stage_memo(stage, params_fn, compute):  # type: ignore[misc]
        return compute()

__all__ = [
    "DEFAULT_MAX_RATIO",
    "FULL_REPLAN_FRACTION",
    "PlanState",
    "RepairReport",
    "apply_delta_set",
    "dirty_sensor_set",
    "full_replan",
    "initial_state",
    "repair_plan",
    "validate_repair",
]

#: Default bound on repaired-vs-full energy (the parity-gate contract).
DEFAULT_MAX_RATIO = 1.05

#: Repairs that would rebuild more than this fraction of the alive
#: network fall back to a deterministic full replan instead.
FULL_REPLAN_FRACTION = 0.5


@dataclass(frozen=True)
class PlanState:
    """Everything the repairer retains between edits.

    Attributes:
        locations: sensor positions by stable index (dead sensors keep
            their slot — indices are identifiers and are never
            re-packed).
        alive: liveness by index.
        plan: the current charging plan over the alive sensors.
        radius: bundle generation radius ``r``.
        planner: registry name of the planner that produced ``plan``
            (used by the full-replan fallback and shadow baseline).
        tsp_strategy: TSP pipeline name for full replans.
        seed: TSP seed for full replans.
        field_side_m: square field side (meters), for rebuilding a
            :class:`~repro.network.SensorNetwork` on full replans.
    """

    locations: Tuple[Point, ...]
    alive: Tuple[bool, ...]
    plan: ChargingPlan
    radius: float
    planner: str
    tsp_strategy: str
    seed: int
    field_side_m: float

    def __post_init__(self) -> None:
        if len(self.locations) != len(self.alive):
            raise DeltaError(
                f"{len(self.locations)} locations but {len(self.alive)} "
                f"liveness flags")
        if self.radius <= 0.0 or not math.isfinite(self.radius):
            raise DeltaError(f"invalid generation radius: {self.radius!r}")

    @property
    def alive_count(self) -> int:
        """Number of alive sensors."""
        return sum(1 for flag in self.alive if flag)

    def alive_indices(self) -> List[int]:
        """Stable indices of the alive sensors, ascending."""
        return [i for i, flag in enumerate(self.alive) if flag]


@dataclass(frozen=True)
class RepairReport:
    """What one repair did (and, under shadow, how good it was).

    Attributes:
        strategy: ``"noop"`` (empty delta set), ``"repair"``
            (dirty-region splice) or ``"full"`` (fallback replan).
        delta_count: records in the applied delta set.
        dirty_sensors: alive sensors in the dirty region.
        evicted_stops: stops removed from the retained tour.
        inserted_stops: stops spliced into the repaired tour.
        alive_count: alive sensors after the edit.
        energy_j: Eq. 3 total energy of the repaired plan.
        full_energy_j: full-replan energy when one was computed
            (shadow mode or the ``"full"`` strategy), else None.
        energy_ratio: ``energy_j / full_energy_j`` when available.
    """

    strategy: str
    delta_count: int
    dirty_sensors: int
    evicted_stops: int
    inserted_stops: int
    alive_count: int
    energy_j: float
    full_energy_j: Optional[float] = None
    energy_ratio: Optional[float] = None

    def as_payload_dict(self) -> Dict[str, Any]:
        """The shadow-independent slice, safe to embed in payload bytes.

        Shadow-only fields (the full-replan energy and ratio) stay out
        so a payload is byte-identical with and without
        ``--delta-shadow-verify``.
        """
        return {
            "strategy": self.strategy,
            "delta_count": self.delta_count,
            "dirty_sensors": self.dirty_sensors,
            "evicted_stops": self.evicted_stops,
            "inserted_stops": self.inserted_stops,
            "alive_count": self.alive_count,
        }


def initial_state(network: SensorNetwork, plan: ChargingPlan,
                  radius: float, planner: str, tsp_strategy: str,
                  seed: int) -> PlanState:
    """Retain a freshly planned network as the repairer's base state."""
    return PlanState(
        locations=tuple(network.locations),
        alive=(True,) * len(network),
        plan=plan,
        radius=radius,
        planner=planner,
        tsp_strategy=tsp_strategy,
        seed=seed,
        field_side_m=network.field_side_m,
    )


def _require_alive(alive: List[bool], index: int, verb: str) -> None:
    if not 0 <= index < len(alive):
        raise DeltaError(
            f"cannot {verb} sensor {index}: index out of range "
            f"(deployment has {len(alive)} slots)")
    if not alive[index]:
        raise DeltaError(f"cannot {verb} sensor {index}: it is dead")


def _require_position(x: float, y: float) -> None:
    if not (math.isfinite(x) and math.isfinite(y)):
        raise DeltaError(f"non-finite position ({x!r}, {y!r})")


def apply_delta_set(state: PlanState, delta_set: DeltaSet
                    ) -> Tuple[List[Point], List[bool],
                               List[Tuple[float, float]], Set[int]]:
    """Apply an edit sequentially; return the post-edit deployment.

    Returns:
        ``(locations, alive, changed_points, died)`` — the new position
        and liveness lists, every changed coordinate (a move contributes
        its old *and* new position; deaths and joins contribute one
        each) and the set of indices that died.

    Raises:
        DeltaError: on a reference to an out-of-range or dead sensor or
            a non-finite position.
    """
    locations = list(state.locations)
    alive = list(state.alive)
    changed: List[Tuple[float, float]] = []
    died: Set[int] = set()
    for record in delta_set:
        if isinstance(record, SensorMoved):
            _require_alive(alive, record.index, "move")
            _require_position(record.x, record.y)
            old = locations[record.index]
            changed.append((old.x, old.y))
            changed.append((record.x, record.y))
            locations[record.index] = Point(record.x, record.y)
        elif isinstance(record, SensorDied):
            _require_alive(alive, record.index, "kill")
            old = locations[record.index]
            changed.append((old.x, old.y))
            alive[record.index] = False
            died.add(record.index)
        elif isinstance(record, SensorJoined):
            _require_position(record.x, record.y)
            changed.append((record.x, record.y))
            locations.append(Point(record.x, record.y))
            alive.append(True)
        else:  # DeltaSet.__post_init__ guards this; belt and braces
            raise DeltaError(f"not a delta record: {record!r}")
    return locations, alive, changed, died


def dirty_sensor_set(locations: Sequence[Point], alive: Sequence[bool],
                     changed: Sequence[Tuple[float, float]],
                     radius: float) -> Set[int]:
    """Alive sensors within ``r`` of any changed coordinate.

    These are exactly the anchors of the radius-``r`` candidate disks
    whose membership the edit changed (disks are sensor-anchored, so
    disk ``j`` gains or loses a change site iff ``d(j, site) <= r``) —
    the sensors whose bundles the repair must regenerate.  Stops
    containing a dirty sensor are then evicted whole, which pulls the
    touched disks' remaining members into the re-cover region.  Uses
    the flat-buffer grid query unless the reference kernels are active,
    in which case a brute-force scan produces the identical set.
    """
    reach = radius
    dirty: Set[int] = set()
    if soa._USE_REFERENCE:
        reach_sq = reach * reach
        for index, point in enumerate(locations):
            if not alive[index]:
                continue
            for cx, cy in changed:
                dx = point.x - cx
                dy = point.y - cy
                if dx * dx + dy * dy <= reach_sq:
                    dirty.add(index)
                    break
        return dirty
    flat = FlatDeployment.from_points(locations)
    mask = flat_dirty_members(flat, changed, reach)
    for index in indices_from_mask(mask):
        if alive[index]:
            dirty.add(index)
    return dirty


def _recover_region(region: Sequence[int], locations: Sequence[Point],
                    radius: float) -> List[FrozenSet[int]]:
    """Re-cover the displaced sub-deployment; return global member sets.

    Mirrors the candidate + lazy-greedy pipeline of
    :func:`repro.bundling.greedy._selected_member_sets`, memoized under
    the ``delta_candidates`` / ``delta_cover`` stage keys so repairs of
    a previously seen region are cache hits.
    """
    sub_locations = [locations[i] for i in region]
    universe = len(region)
    if bitset._USE_REFERENCE:
        candidates = candidate_member_sets(sub_locations, radius)
        candidates = maximal_candidates(candidates)
        selected = greedy_set_cover_reference(candidates, universe)
        return [frozenset(region[j] for j in members)
                for members in selected]

    def _stage_params():
        return {"points": list(sub_locations), "radius": radius,
                "prune": True}

    def _compute_masks():
        flat = None if soa._USE_REFERENCE else FlatDeployment.from_points(
            sub_locations)
        enumerated = candidate_member_masks(sub_locations, radius,
                                            flat=flat)
        return maximal_masks(enumerated)

    masks = stage_memo("delta_candidates", _stage_params, _compute_masks)

    def _compute_cover():
        return greedy_cover_masks(masks, universe)

    chosen = stage_memo("delta_cover", _stage_params, _compute_cover)
    return [frozenset(region[j] for j in indices_from_mask(mask))
            for mask in chosen]


def _cheapest_gap(cycle: Sequence[Point], position: Point) -> int:
    """Index ``g`` of the cheapest insertion gap ``(cycle[g], cycle[g+1])``.

    Deterministic: scans gaps in order and keeps the first strict
    minimum, so ties resolve to the earliest gap.
    """
    best_gap = 0
    best_cost = math.inf
    size = len(cycle)
    for gap in range(size):
        a = cycle[gap]
        b = cycle[(gap + 1) % size]
        cost = (a.distance_to(position) + position.distance_to(b)
                - a.distance_to(b))
        if cost < best_cost:
            best_cost = cost
            best_gap = gap
    return best_gap


def _insert_cheapest(stops: List[Stop], stop: Stop,
                     depot: Optional[Point]) -> int:
    """Insert ``stop`` at its cheapest-insertion position; return it."""
    if not stops:
        stops.append(stop)
        return 0
    if depot is not None:
        cycle = [depot] + [s.position for s in stops]
        gap = _cheapest_gap(cycle, stop.position)
        index = gap  # gap g sits between cycle[g] and cycle[g+1]
    else:
        cycle = [s.position for s in stops]
        gap = _cheapest_gap(cycle, stop.position)
        index = (gap + 1) % (len(cycle) + 1)
    stops.insert(index, stop)
    return index


def _splice_tour(kept: List[Stop], new_stops: List[Stop],
                 depot: Optional[Point]) -> List[Stop]:
    """Cheapest-insert each new stop, then relocate the touched window.

    The relocation pass is the localized Or-opt: only the spliced stops
    and their immediate neighbors are candidates for a move, each
    relocation is a full cheapest re-insertion (the original gap is
    always a candidate, so the tour never gets longer), and candidates
    are visited in deterministic tour order.
    """
    stops = list(kept)
    for stop in new_stops:
        _insert_cheapest(stops, stop, depot)
    if len(stops) <= 2:
        return stops
    inserted = set(id(stop) for stop in new_stops)
    touched: List[Stop] = []
    for index, stop in enumerate(stops):
        if id(stop) in inserted:
            for neighbor in (index - 1, index, index + 1):
                candidate = stops[neighbor % len(stops)]
                if candidate not in touched:
                    touched.append(candidate)
    for stop in touched:
        index = stops.index(stop)
        stops.pop(index)
        _insert_cheapest(stops, stop, depot)
    return stops


def validate_repair(plan: ChargingPlan, locations: Sequence[Point],
                    alive: Sequence[bool], radius: float) -> None:
    """Assert a repaired plan is valid for the post-edit network.

    Valid means: the stops partition exactly the alive sensors (full
    coverage, nothing dead assigned — plans never re-pack indices, so
    this replaces :meth:`ChargingPlan.validate_complete`), and every
    stop's farthest assigned sensor is within the generation radius.

    Raises:
        DeltaError: describing the first violation found.
    """
    assigned = plan.assigned_sensors
    expected = frozenset(i for i, flag in enumerate(alive) if flag)
    missing = sorted(expected - assigned)
    if missing:
        raise DeltaError(
            f"repaired plan leaves {len(missing)} alive sensors "
            f"uncovered: {missing[:10]}")
    extra = sorted(assigned - expected)
    if extra:
        raise DeltaError(
            f"repaired plan assigns {len(extra)} dead or unknown "
            f"sensors: {extra[:10]}")
    tolerance = radius + 1e-6 * max(1.0, radius)
    for position, stop in enumerate(plan.stops):
        worst = stop.worst_distance(locations)
        if worst > tolerance:
            raise DeltaError(
                f"stop {position} at {stop.position} charges a sensor "
                f"{worst:.3f} m away (generation radius {radius} m)")


def full_replan(locations: Sequence[Point], alive: Sequence[bool],
                state: PlanState, cost: CostParameters) -> ChargingPlan:
    """Plan the alive sub-network from scratch; remap to stable indices.

    The alive sensors are compacted into a fresh
    :class:`~repro.network.SensorNetwork` (planners require consecutive
    indices), planned with the retained planner configuration, and the
    resulting stops are remapped back to the stable global indices.
    Deterministic: same inputs, same plan.
    """
    alive_global = [i for i, flag in enumerate(alive) if flag]
    if not alive_global:
        raise DeltaError("cannot replan a network with no alive sensors")
    sensors = [Sensor(index=compact, location=locations[global_index],
                      required_j=cost.delta_j)
               for compact, global_index in enumerate(alive_global)]
    network = SensorNetwork(sensors, state.field_side_m,
                            base_station=state.plan.depot)
    planner = make_planner(state.planner, state.radius,
                           tsp_strategy=state.tsp_strategy,
                           seed=state.seed)
    compact_plan = planner.plan(network, cost)
    stops = tuple(
        Stop(position=stop.position,
             sensors=frozenset(alive_global[c] for c in stop.sensors),
             dwell_s=stop.dwell_s)
        for stop in compact_plan.stops)
    return ChargingPlan(stops=stops, depot=state.plan.depot,
                        label=state.plan.label)


def repair_plan(state: PlanState, deltas: Iterable[Any],
                cost: CostParameters, *, shadow: bool = False,
                max_ratio: float = DEFAULT_MAX_RATIO
                ) -> Tuple[PlanState, RepairReport]:
    """Apply a delta set to a retained plan state; repair the plan.

    Args:
        state: the retained state to edit.
        deltas: delta records (or their serialized dicts), applied in
            order as one atomic edit.
        cost: mission cost constants (dwell times for new stops).
        shadow: also run the full replan and enforce ``max_ratio`` —
            the repair analogue of cache shadow-verify.  Never changes
            the repaired plan, only checks it.
        max_ratio: largest allowed repaired/full energy ratio.

    Returns:
        ``(new_state, report)``.  An empty delta set returns ``state``
        itself (identical object) with strategy ``"noop"``.

    Raises:
        DeltaError: on an inapplicable delta, an invalid repair result,
            or a shadow-verified ratio above the bound.
    """
    if max_ratio < 1.0 or not math.isfinite(max_ratio):
        raise DeltaError(f"invalid energy-ratio bound: {max_ratio!r}")
    delta_set = _as_delta_set(deltas)
    if delta_set.is_empty:
        energy = plan_total_energy(state.plan, state.locations, cost)
        report = RepairReport(
            strategy="noop", delta_count=0, dirty_sensors=0,
            evicted_stops=0, inserted_stops=0,
            alive_count=state.alive_count, energy_j=energy)
        return state, report

    with obs_span("delta.repair", n=len(state.locations),
                  deltas=len(delta_set)) as span:
        locations, alive, changed, died = apply_delta_set(state, delta_set)
        alive_count = sum(1 for flag in alive if flag)
        if not alive_count:
            raise DeltaError("delta set leaves no alive sensors")
        dirty = dirty_sensor_set(locations, alive, changed, state.radius)

        evicted: List[Stop] = []
        kept: List[Stop] = []
        for stop in state.plan.stops:
            if stop.sensors & dirty or stop.sensors & died:
                evicted.append(stop)
            else:
                kept.append(stop)
        region = set(dirty)
        for stop in evicted:
            region.update(i for i in stop.sensors if alive[i])

        full_energy: Optional[float] = None
        if len(region) * 2 > alive_count:
            strategy = "full"
            plan = full_replan(locations, alive, state, cost)
            inserted = len(plan.stops)
            evicted_count = len(state.plan.stops)
        else:
            strategy = "repair"
            # A pure-death edit can leave nothing to re-cover (the dead
            # sensors' stops had no surviving members): the repair is
            # then eviction alone.
            member_sets = _recover_region(sorted(region), locations,
                                          state.radius) if region else []
            new_stops = [
                stop_for_sensors(
                    make_bundle(sorted(members), locations).anchor,
                    sorted(members), locations, cost)
                for members in member_sets]
            stops = _splice_tour(kept, new_stops, state.plan.depot)
            plan = ChargingPlan(stops=tuple(stops),
                                depot=state.plan.depot,
                                label=state.plan.label)
            inserted = len(new_stops)
            evicted_count = len(evicted)

        validate_repair(plan, locations, alive, state.radius)
        energy = plan_total_energy(plan, locations, cost)

        ratio: Optional[float] = None
        if strategy == "full":
            full_energy = energy
            ratio = 1.0
        elif shadow:
            baseline = full_replan(locations, alive, state, cost)
            full_energy = plan_total_energy(baseline, locations, cost)
            ratio = energy / full_energy if full_energy > 0.0 else 1.0
            if ratio > max_ratio * (1.0 + 1e-12):
                raise DeltaError(
                    f"shadow-verify failed: repaired plan spends "
                    f"{ratio:.4f}x the full replan's energy "
                    f"(bound {max_ratio})")
        if span:
            span.set(strategy=strategy, dirty=len(dirty),
                     evicted=evicted_count, inserted=inserted)

    new_state = replace(state, locations=tuple(locations),
                        alive=tuple(alive), plan=plan)
    report = RepairReport(
        strategy=strategy, delta_count=len(delta_set),
        dirty_sensors=len(dirty), evicted_stops=evicted_count,
        inserted_stops=inserted, alive_count=alive_count,
        energy_j=energy, full_energy_j=full_energy, energy_ratio=ratio)
    return new_state, report
