"""Opt-in cProfile wiring (the CLI ``--profile`` flag).

Kept separate from the tracer on purpose: profiling changes timings
(the tracer does not), so it is never on implicitly — the context
manager is inert unless given an output path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["profiled"]


@contextmanager
def profiled(out_path: Optional[str]) -> Iterator[Optional[object]]:
    """Profile the enclosed block into a pstats dump at ``out_path``.

    A ``None`` path disables profiling entirely (no cProfile import,
    no overhead), so callers can wire the flag through unconditionally::

        with profiled(args.profile_path):
            run_experiment(...)
    """
    if out_path is None:
        yield None
        return
    import cProfile
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(out_path)
