"""Deterministic, dependency-free metrics engine.

Three instrument kinds — monotonically increasing **counters**,
last-write **gauges**, and fixed-boundary **histograms** — collected in
a :class:`MetricsRegistry` and exported as a plain-JSON snapshot or as
Prometheus text exposition.  The engine exists for the serving stack
(`repro.service` labels request latency/queue-wait/compute histograms
by planner and cache outcome), but it is generic: names are dotted
strings, labels are ``str -> str`` pairs, and nothing here imports
outside the stdlib.

Design contracts, mirroring the rest of ``repro.obs``:

* **Zero-cost disabled path.**  A disabled registry's ``inc``/``set``/
  ``observe`` return after one attribute check, and
  :meth:`MetricsRegistry.histogram` hands back the shared, immutable
  :data:`NULL_HISTOGRAM` (the :data:`repro.obs.tracer.NULL_SPAN`
  pattern: ``__slots__ = ()``, falsy, allocation-free).
* **Determinism.**  Snapshots are sorted by ``(name, labels)``; the
  same observations in any order produce the same snapshot.  The engine
  itself never reads a clock — callers observe durations they measured
  through :mod:`repro.clock`.
* **Mergeability.**  :meth:`MetricsRegistry.merge_snapshot` folds a
  worker's snapshot into this registry (counters/bucket counts sum,
  gauges last-write, min/max combine), the same hand-off shape as
  :meth:`repro.perf.PerfRegistry.merge_snapshot`.

Quantiles are computed from the bucket counts by *exact linear
interpolation*: the containing bucket is located by cumulative rank and
the estimate interpolates between the bucket's edges, with the outer
edges clamped to the observed min/max (so ``quantile(0.0) == min`` and
``quantile(1.0) == max`` exactly, and a single-bucket histogram
interpolates over its true observed range, not the full bucket width).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Version tag stamped on exported engine snapshots.
METRICS_ENGINE_SCHEMA = "bundle-charging/metrics-engine/v1"

#: Default latency boundaries (seconds): sub-millisecond to one minute,
#: roughly logarithmic.  Observations above the last edge land in the
#: overflow bucket; below the first edge, in the first bucket.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "METRICS_ENGINE_SCHEMA",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "NULL_HISTOGRAM",
    "bucket_quantile",
    "merge_snapshots",
    "render_prometheus",
    "summarize_histogram",
]

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_quantile(boundaries: Sequence[float], counts: Sequence[int],
                    count: int, vmin: float, vmax: float,
                    q: float) -> Optional[float]:
    """Quantile ``q`` of a bucketed distribution, or None when empty.

    Locates the bucket containing rank ``q * count`` and linearly
    interpolates between its edges; the first bucket's lower edge and
    the overflow bucket's upper edge are the observed min/max, and the
    result is clamped to ``[vmin, vmax]``.
    """
    if count <= 0:
        return None
    if q <= 0.0:
        return vmin
    if q >= 1.0:
        return vmax
    target = q * count
    cumulative = 0.0
    for index, bucket_count in enumerate(counts):
        if bucket_count <= 0:
            continue
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target:
            lower = boundaries[index - 1] if index > 0 else vmin
            upper = (boundaries[index] if index < len(boundaries)
                     else vmax)
            lower = max(lower, vmin)
            upper = min(upper, vmax)
            if upper < lower:
                upper = lower
            fraction = (target - previous) / bucket_count
            return lower + (upper - lower) * fraction
    return vmax


class _NullHistogram:
    """The shared disabled histogram: falsy, immutable, allocation-free.

    ``__slots__ = ()`` guarantees no instance dict exists, so no code
    path through a disabled histogram can write an attribute — the
    same zero-cost contract as :data:`repro.obs.tracer.NULL_SPAN`.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def observe(self, value: float) -> None:
        """Ignore the observation (disabled)."""


#: The one disabled histogram every accessor shares while the owning
#: registry is disabled.
NULL_HISTOGRAM = _NullHistogram()


class Histogram:
    """A fixed-boundary histogram with exact-interpolation quantiles.

    ``len(boundaries) + 1`` buckets: bucket ``i`` holds observations in
    ``(boundaries[i-1], boundaries[i]]`` and the final bucket is the
    overflow for everything above the last edge.  Observations below
    the first edge clamp into the first bucket; non-finite values are
    clamped by sign (``+inf`` overflow, ``-inf`` first bucket) and NaN
    is dropped.  Thread-safe: the serving workers share instances.
    """

    __slots__ = ("boundaries", "counts", "count", "total", "vmin",
                 "vmax", "_lock")

    def __init__(self, boundaries: Sequence[float] =
                 DEFAULT_LATENCY_BOUNDS) -> None:
        edges = tuple(float(edge) for edge in boundaries)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram boundaries must be strictly increasing "
                f"and non-empty: {boundaries!r}")
        self.boundaries = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return True

    def observe(self, value: float) -> None:
        """Record one observation (clamped into the edge buckets)."""
        value = float(value)
        if value != value:  # NaN: unorderable, no bucket to clamp into
            return
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value

    def quantile(self, q: float) -> Optional[float]:
        """Interpolated quantile ``q`` in [0, 1]; None when empty."""
        with self._lock:
            return bucket_quantile(self.boundaries, self.counts,
                                   self.count, self.vmin, self.vmax, q)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable state (mergeable; see ``merge_snapshot``)."""
        with self._lock:
            return {
                "boundaries": list(self.boundaries),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.total,
                "min": self.vmin if self.count else None,
                "max": self.vmax if self.count else None,
            }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Raises:
            ValueError: when the boundary vectors differ (merging
                incompatible bucket layouts would silently corrupt
                quantiles).
        """
        if list(snapshot["boundaries"]) != list(self.boundaries):
            raise ValueError(
                f"cannot merge histograms with different boundaries: "
                f"{snapshot['boundaries']!r} vs {list(self.boundaries)!r}")
        with self._lock:
            for index, bucket_count in enumerate(snapshot["counts"]):
                self.counts[index] += bucket_count
            self.count += snapshot["count"]
            self.total += snapshot["sum"]
            if snapshot["min"] is not None:
                self.vmin = min(self.vmin, snapshot["min"])
            if snapshot["max"] is not None:
                self.vmax = max(self.vmax, snapshot["max"])


def summarize_histogram(entry: Dict[str, Any],
                        quantiles: Sequence[float] = (0.5, 0.9, 0.95,
                                                      0.99)
                        ) -> Dict[str, Any]:
    """Add interpolated percentile fields to a histogram snapshot dict.

    Returns a new dict with ``p50``/``p90``/... keys (``p99`` for
    ``0.99``) and ``mean`` derived from the bucket data — the form the
    ``/metrics`` v2 document embeds.
    """
    vmin = entry["min"] if entry["min"] is not None else float("inf")
    vmax = entry["max"] if entry["max"] is not None else float("-inf")
    summarized = dict(entry)
    for q in quantiles:
        label = f"p{round(q * 100):d}" if q * 100 == round(q * 100) \
            else f"p{q * 100:g}"
        summarized[label] = bucket_quantile(
            entry["boundaries"], entry["counts"], entry["count"],
            vmin, vmax, q)
    summarized["mean"] = (entry["sum"] / entry["count"]
                          if entry["count"] else None)
    return summarized


class MetricsRegistry:
    """Labeled counters, gauges and histograms behind one enable flag.

    Instruments are keyed by ``(name, sorted labels)``.  The registry
    starts disabled (the zero-cost default); the planning service
    enables its per-server instance at startup, and the module-level
    :data:`METRICS` registry serves ad-hoc callers the way
    :data:`repro.obs.tracer.TRACER` does for spans.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelItems], int] = {}
        self._gauges: Dict[Tuple[str, LabelItems], float] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._boundaries: Dict[str, Tuple[float, ...]] = {}

    # --- recording --------------------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Bump counter ``name{labels}`` by ``amount``."""
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name{labels}`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float,
                boundaries: Optional[Sequence[float]] = None,
                **labels: Any) -> None:
        """Record ``value`` into histogram ``name{labels}``."""
        if not self.enabled:
            return
        self._histogram(name, boundaries, labels).observe(value)

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None,
                  **labels: Any):
        """Return the live histogram handle (or :data:`NULL_HISTOGRAM`).

        Binding the handle once lets a hot call site skip the registry
        lookup per observation; disabled registries hand back the
        shared no-op so the call site needs no branch of its own.
        """
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._histogram(name, boundaries, labels)

    def _histogram(self, name: str,
                   boundaries: Optional[Sequence[float]],
                   labels: Dict[str, Any]) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                edges = self._boundaries.get(name)
                if edges is None:
                    edges = (tuple(float(b) for b in boundaries)
                             if boundaries is not None
                             else DEFAULT_LATENCY_BOUNDS)
                    self._boundaries[name] = edges
                histogram = Histogram(edges)
                self._histograms[key] = histogram
            return histogram

    # --- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON view: entries sorted by (name, labels)."""
        with self._lock:
            counters = [
                {"name": name, "labels": dict(label_items),
                 "value": value}
                for (name, label_items), value
                in sorted(self._counters.items())
            ]
            gauges = [
                {"name": name, "labels": dict(label_items),
                 "value": value}
                for (name, label_items), value
                in sorted(self._gauges.items())
            ]
            histogram_items = sorted(self._histograms.items())
        histograms = []
        for (name, label_items), histogram in histogram_items:
            entry: Dict[str, Any] = {"name": name,
                                     "labels": dict(label_items)}
            entry.update(histogram.snapshot())
            histograms.append(entry)
        return {
            "schema": METRICS_ENGINE_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets sum, gauges take the incoming
        value, min/max combine — the worker hand-off contract shared
        with :meth:`repro.perf.PerfRegistry.merge_snapshot`.
        """
        if not self.enabled:
            return
        for entry in snapshot.get("counters", ()):
            self.inc(entry["name"], entry["value"], **entry["labels"])
        for entry in snapshot.get("gauges", ()):
            self.set_gauge(entry["name"], entry["value"],
                           **entry["labels"])
        for entry in snapshot.get("histograms", ()):
            histogram = self._histogram(entry["name"],
                                        entry["boundaries"],
                                        entry["labels"])
            histogram.merge_snapshot(entry)

    def reset(self) -> None:
        """Drop every instrument (keeps ``enabled``)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._boundaries.clear()


#: The process-wide default registry (disabled until someone opts in),
#: mirroring :data:`repro.obs.tracer.TRACER`.
METRICS = MetricsRegistry(enabled=False)


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]
                    ) -> Dict[str, Any]:
    """Merge several registry snapshots into one combined snapshot.

    The multi-worker aggregation path: each pool worker exports its
    :meth:`MetricsRegistry.snapshot` in ``/metrics``, and the parent
    dispatcher folds them through a fresh registry — counters sum,
    gauges take the last value, histogram buckets sum with min/max
    combining.  Extra summary keys (``p50``/``mean`` from
    :func:`summarize_histogram`) on incoming entries are ignored, so
    already-summarized documents merge fine.

    Raises:
        ValueError: when two snapshots carry the same histogram with
            different bucket boundaries.
    """
    registry = MetricsRegistry(enabled=True)
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()


# --- Prometheus text exposition ------------------------------------------

def _prom_name(name: str, suffix: str = "") -> str:
    """Sanitize a dotted metric name into Prometheus form."""
    sanitized = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch in "_:")) else "_"
        for ch in name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized + suffix


def _prom_labels(labels: Dict[str, str],
                 extra: Optional[Dict[str, str]] = None) -> str:
    """Render a label set as ``{k="v",...}`` (empty string when none)."""
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key in sorted(merged):
        value = str(merged[key]).replace("\\", r"\\") \
            .replace('"', r'\"').replace("\n", r"\n")
        parts.append(f'{_prom_name(key)}="{value}"')
    return "{" + ",".join(parts) + "}"


def _prom_number(value: float) -> str:
    """Render a sample value (Prometheus spells infinities ``+Inf``)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: Dict[str, Any],
                      prefix: str = "bc") -> str:
    """Render an engine snapshot as Prometheus text exposition.

    Counters become ``<prefix>_<name>_total``, gauges plain gauges,
    histograms the conventional cumulative ``_bucket{le=...}`` series
    plus ``_sum`` and ``_count``.  Lines are emitted in snapshot order
    (already sorted), so the exposition is deterministic.
    """
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def type_line(metric: str, kind: str) -> None:
        if seen_types.get(metric) != kind:
            seen_types[metric] = kind
            lines.append(f"# TYPE {metric} {kind}")

    for entry in snapshot.get("counters", ()):
        metric = _prom_name(f"{prefix}.{entry['name']}", "_total")
        type_line(metric, "counter")
        lines.append(f"{metric}{_prom_labels(entry['labels'])} "
                     f"{entry['value']}")
    for entry in snapshot.get("gauges", ()):
        metric = _prom_name(f"{prefix}.{entry['name']}")
        type_line(metric, "gauge")
        lines.append(f"{metric}{_prom_labels(entry['labels'])} "
                     f"{_prom_number(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        metric = _prom_name(f"{prefix}.{entry['name']}")
        type_line(metric, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for edge, bucket_count in zip(entry["boundaries"],
                                      entry["counts"]):
            cumulative += bucket_count
            lines.append(
                f"{metric}_bucket"
                f"{_prom_labels(labels, {'le': _prom_number(edge)})} "
                f"{cumulative}")
        lines.append(
            f"{metric}_bucket"
            f"{_prom_labels(labels, {'le': '+Inf'})} {entry['count']}")
        lines.append(f"{metric}_sum{_prom_labels(labels)} "
                     f"{_prom_number(entry['sum'])}")
        lines.append(f"{metric}_count{_prom_labels(labels)} "
                     f"{entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
