"""Energy-accounting reports replayed from trace streams.

``repro.cli report --trace run.jsonl`` lands here: the JSONL event log
is folded back into the paper's ledgers — the movement-vs-charging
energy split per algorithm (Eq. 1 / Figs. 6-13), time per pipeline
phase, and kernel counter rates — without re-running anything.

The per-algorithm aggregation reuses :func:`aggregate_rows`, the exact
reduction the untraced runner applies, over the exact metric rows the
``plan`` spans captured; the replayed means therefore equal the live
run's aggregates float-for-float (an acceptance test pins this).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..experiments.aggregate import CellStats, aggregate_rows
from ..experiments.tables import ResultTable, render_tables
from .jsonl import read_jsonl

#: Metric attributes the ``plan`` spans carry (a subset of
#: ``PlanMetrics.as_row``), in report column order.
ENERGY_METRICS = ("total_j", "movement_j", "charging_j",
                  "tour_length_m", "charging_time_s")

__all__ = ["ENERGY_METRICS", "build_report_tables", "counter_summary",
           "diff_traces", "energy_split", "main", "phase_summary",
           "plan_rows", "render_trace_report", "trace_manifest"]


def _spans(events: List[Dict[str, Any]],
           name: Optional[str] = None) -> List[Dict[str, Any]]:
    return [event for event in events
            if event.get("type") == "span"
            and (name is None or event.get("name") == name)]


def trace_manifest(events: List[Dict[str, Any]]
                   ) -> Optional[Dict[str, Any]]:
    """Return the stream's embedded manifest event, if present."""
    for event in events:
        if event.get("type") == "manifest":
            return event
    return None


def plan_rows(events: List[Dict[str, Any]]
              ) -> Dict[str, List[Dict[str, float]]]:
    """Group the ``plan`` spans' metric rows by algorithm.

    Rows keep stream order, which is run-index order in both serial and
    parallel runs — the same sequence the live aggregation consumed.
    """
    rows: Dict[str, List[Dict[str, float]]] = {}
    for span in _spans(events, "plan"):
        attrs = span.get("attrs", {})
        algorithm = attrs.get("algorithm")
        if algorithm is None:
            continue
        row = {metric: attrs[metric] for metric in ENERGY_METRICS
               if metric in attrs}
        rows.setdefault(algorithm, []).append(row)
    return rows


def energy_split(events: List[Dict[str, Any]]
                 ) -> Dict[str, Dict[str, CellStats]]:
    """Per-algorithm mean/std of every energy metric in the trace."""
    return {algorithm: aggregate_rows(metric_rows)
            for algorithm, metric_rows in plan_rows(events).items()}


def phase_summary(events: List[Dict[str, Any]]
                  ) -> Dict[str, Dict[str, float]]:
    """Total time and call count per span name (pipeline phase)."""
    summary: Dict[str, Dict[str, float]] = {}
    for span in _spans(events):
        name = span.get("name", "?")
        entry = summary.setdefault(name, {"calls": 0, "total_s": 0.0})
        entry["calls"] += 1
        entry["total_s"] += float(span.get("duration_s", 0.0))
    return summary


def _root_spans(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [span for span in _spans(events)
            if span.get("parent_id") is None]


def counter_summary(events: List[Dict[str, Any]]
                    ) -> Dict[str, Dict[str, float]]:
    """Kernel counter totals and rates over the traced run.

    Only *root* spans are summed: a parent span's perf delta already
    contains its children's (the registry is process-wide), so root
    deltas partition the run's work without double counting — in
    parallel runs the worker snapshots are merged into the parent
    registry inside the ``run`` span, preserving the same property.
    """
    totals: Dict[str, int] = {}
    traced_s = 0.0
    for span in _root_spans(events):
        traced_s += float(span.get("duration_s", 0.0))
        counters = span.get("perf", {}).get("counters", {})
        for name, value in counters.items():
            totals[name] = totals.get(name, 0) + int(value)
    return {
        name: {"count": float(count),
               "rate_per_s": (count / traced_s) if traced_s > 0 else 0.0}
        for name, count in sorted(totals.items())
    }


def build_report_tables(events: List[Dict[str, Any]],
                        title_prefix: str = "") -> List[ResultTable]:
    """Fold a trace into the three report tables."""
    tables: List[ResultTable] = []

    split = energy_split(events)
    if split:
        columns = ["algorithm"] + [metric for metric in ENERGY_METRICS
                                   if any(metric in cells
                                          for cells in split.values())]
        energy_table = ResultTable(
            f"{title_prefix}Energy split per algorithm "
            f"(mean over traced seeds)", columns)
        for algorithm, cells in split.items():
            energy_table.add_row(algorithm=algorithm, **{
                metric: cells[metric] for metric in columns[1:]})
        tables.append(energy_table)

    phases = phase_summary(events)
    if phases:
        phase_table = ResultTable(
            f"{title_prefix}Time per pipeline phase",
            ["phase", "calls", "total_s", "mean_ms"])
        for name in sorted(phases):
            entry = phases[name]
            calls = int(entry["calls"])
            phase_table.add_row(
                phase=name, calls=calls,
                total_s=entry["total_s"],
                mean_ms=(entry["total_s"] / calls * 1000.0) if calls
                else 0.0)
        tables.append(phase_table)

    counters = counter_summary(events)
    if counters:
        counter_table = ResultTable(
            f"{title_prefix}Kernel counters over the traced run",
            ["counter", "count", "rate_per_s"])
        for name, entry in counters.items():
            counter_table.add_row(counter=name, count=entry["count"],
                                  rate_per_s=entry["rate_per_s"])
        tables.append(counter_table)
    return tables


def render_trace_report(path: str) -> str:
    """Render the full report for one on-disk trace."""
    events = read_jsonl(path)
    lines: List[str] = []
    manifest = trace_manifest(events)
    if manifest is not None:
        lines.append(
            f"trace: {manifest.get('experiment', '?')} | config "
            f"{str(manifest.get('config_hash', '?'))[:12]} | git "
            f"{str(manifest.get('git_sha') or 'unknown')[:12]} | "
            f"{len(manifest.get('seeds', []))} seeds | "
            f"{manifest.get('wall_time_s', '?')} s")
        lines.append("")
    tables = build_report_tables(events)
    if not tables:
        lines.append("(trace carries no span events)")
    else:
        lines.append(render_tables(tables))
    return "\n".join(lines)


def _mean(cells: Dict[str, CellStats], metric: str) -> Optional[float]:
    cell = cells.get(metric)
    return cell.mean if cell is not None else None


def diff_traces(path_a: str, path_b: str) -> str:
    """Compare two traced runs: energy means and per-phase times.

    Positive deltas mean run B spends more than run A.
    """
    events_a = read_jsonl(path_a)
    events_b = read_jsonl(path_b)
    split_a = energy_split(events_a)
    split_b = energy_split(events_b)

    tables: List[ResultTable] = []
    algorithms = sorted(set(split_a) | set(split_b))
    if algorithms:
        energy_table = ResultTable(
            "Energy diff (B - A) per algorithm: total_j mean",
            ["algorithm", "A", "B", "delta", "pct"])
        for algorithm in algorithms:
            a = _mean(split_a.get(algorithm, {}), "total_j")
            b = _mean(split_b.get(algorithm, {}), "total_j")
            if a is None or b is None:
                energy_table.add_row(
                    algorithm=algorithm,
                    A="-" if a is None else f"{a:.6g}",
                    B="-" if b is None else f"{b:.6g}",
                    delta="-", pct="-")
                continue
            delta = b - a
            pct = (delta / a * 100.0) if a else 0.0
            energy_table.add_row(algorithm=algorithm, A=a, B=b,
                                 delta=delta, pct=f"{pct:+.2f}%")
        tables.append(energy_table)

    phases_a = phase_summary(events_a)
    phases_b = phase_summary(events_b)
    names = sorted(set(phases_a) | set(phases_b))
    if names:
        phase_table = ResultTable(
            "Phase time diff (B - A)",
            ["phase", "A_s", "B_s", "delta_s"])
        for name in names:
            a_s = phases_a.get(name, {}).get("total_s", 0.0)
            b_s = phases_b.get(name, {}).get("total_s", 0.0)
            phase_table.add_row(phase=name, A_s=a_s, B_s=b_s,
                                delta_s=b_s - a_s)
        tables.append(phase_table)

    header = f"diff: A={path_a}  B={path_b}"
    return header + "\n\n" + render_tables(tables)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.report`` — replay or diff traced runs.

    CLI parity with ``bundle-charging report`` (and with
    ``python -m repro.lint`` / ``python -m repro.cache``).
    """
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Replay a traced run's energy accounting, or "
                    "compare two traced runs.")
    parser.add_argument("--trace", required=True, metavar="FILE",
                        help="the traced run's JSONL log")
    parser.add_argument("--diff", default=None, metavar="FILE",
                        help="second JSONL log to compare against")
    args = parser.parse_args(argv)
    if args.diff is not None:
        print(diff_traces(args.trace, args.diff))
    else:
        print(render_trace_report(args.trace))
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
