"""Observability layer: span tracing, run provenance, telemetry export.

* :data:`TRACER` / :class:`Tracer` — process-wide span tracer.  Spans
  (``deploy``, ``obg.cover``, ``bto.tsp``, ...) nest, carry typed
  attributes, absorb :data:`repro.perf.PERF` counter/timer deltas, and
  export as append-only JSONL events.  Disabled (the default) a span is
  a shared immutable no-op object, so instrumented call sites cost one
  guarded function call — the same contract as ``PerfRegistry.enabled``.
* :mod:`repro.obs.manifest` — run provenance records (config hash, seed
  list, git SHA, package version, platform, wall time) written next to
  experiment outputs and embedded in ``BENCH_*.json``.
* :mod:`repro.obs.validate` — schema checker for emitted JSONL streams
  and manifests (unknown span names / missing fields fail CI).
* :mod:`repro.obs.report` — replays a JSONL log into per-algorithm,
  per-phase energy-accounting tables and diffs two runs (imported
  lazily by the CLI; it depends on :mod:`repro.experiments`).
* :mod:`repro.obs.profile` — opt-in cProfile wiring (CLI ``--profile``).
"""

from .jsonl import read_jsonl, write_jsonl
from .manifest import (MANIFEST_SCHEMA, REQUIRED_MANIFEST_FIELDS,
                       build_manifest, config_digest, git_revision,
                       write_manifest)
from .metrics import (DEFAULT_LATENCY_BOUNDS, METRICS,
                      METRICS_ENGINE_SCHEMA, NULL_HISTOGRAM, Histogram,
                      MetricsRegistry, bucket_quantile,
                      render_prometheus, summarize_histogram)
from .tracer import (NULL_SPAN, TRACE_SCHEMA, Span, Tracer, TRACER,
                     obs_emit, obs_enabled, obs_span)
from .validate import (KNOWN_EVENT_TYPES, KNOWN_SPAN_NAMES,
                       validate_access_record, validate_events,
                       validate_jsonl, validate_loadgen_report,
                       validate_manifest, validate_request,
                       validate_response, validate_service_metrics)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "Histogram",
    "KNOWN_EVENT_TYPES",
    "KNOWN_SPAN_NAMES",
    "MANIFEST_SCHEMA",
    "METRICS",
    "METRICS_ENGINE_SCHEMA",
    "MetricsRegistry",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "REQUIRED_MANIFEST_FIELDS",
    "Span",
    "TRACER",
    "TRACE_SCHEMA",
    "Tracer",
    "bucket_quantile",
    "build_manifest",
    "config_digest",
    "git_revision",
    "obs_emit",
    "obs_enabled",
    "obs_span",
    "read_jsonl",
    "render_prometheus",
    "summarize_histogram",
    "validate_access_record",
    "validate_events",
    "validate_jsonl",
    "validate_loadgen_report",
    "validate_manifest",
    "validate_request",
    "validate_response",
    "validate_service_metrics",
    "write_jsonl",
    "write_manifest",
]
