"""``python -m repro.obs`` — trace replay without the entry point
(CLI parity with ``python -m repro.lint`` / ``python -m repro.cache``).

Dispatches to :func:`repro.obs.report.main`, the same tool as
``python -m repro.obs.report`` and ``bundle-charging report``.
"""

import sys

from .report import main

if __name__ == "__main__":
    sys.exit(main())
