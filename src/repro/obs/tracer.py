"""Span-based tracing for the OBG → BTO → simulation pipeline.

One process-wide :class:`Tracer` collects nested spans as append-only
JSON-friendly events.  A span records its name, nesting (``span_id`` /
``parent_id``), wall-clock start, duration, caller-supplied typed
attributes, and the delta of the :data:`repro.perf.PERF` registry over
its lifetime — so kernel counters/timers and pipeline phases share one
export stream.

The disabled path is the whole point: :data:`TRACER` starts disabled,
and a disabled :meth:`Tracer.span` returns the shared :data:`NULL_SPAN`
singleton whose ``__enter__``/``__exit__``/``set`` perform **no
attribute writes and no allocation** (it is falsy, so call sites can
skip attribute computation with ``if span:``).  This mirrors the
``PerfRegistry.enabled`` guard: instrumentation can stay at call
granularity in the kernels' orbit without perturbing tier-1 timings or
bit-identity.

Worker processes (the ``--jobs`` seed fan-out) run their own tracer,
:meth:`export_events` the result through the pool's return value, and
the parent :meth:`absorb_events` them in deterministic run-index order,
remapping span ids and re-parenting top-level worker spans under the
parent's current span.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional

from ..clock import perf_counter, wall
from ..perf.counters import PERF

#: Version tag stamped on every exported event stream header.
TRACE_SCHEMA = "bundle-charging/trace/v1"

__all__ = ["NULL_SPAN", "TRACE_SCHEMA", "Span", "Tracer", "TRACER",
           "obs_emit", "obs_enabled", "obs_span"]


class _NullSpan:
    """The shared disabled span: falsy, immutable, allocation-free.

    ``__slots__ = ()`` guarantees no instance dict exists, so no code
    path through a disabled span can write an attribute — the property
    the overhead tests pin down.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Ignore attributes (disabled)."""
        return self


#: The one disabled span every ``obs_span`` call shares while tracing
#: is off.
NULL_SPAN = _NullSpan()


class Span:
    """One live span; created by :meth:`Tracer.span`, used as a context
    manager.  Exiting appends the span's event to the tracer."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_tracer",
                 "_started", "_wall", "_perf_counters", "_perf_timers",
                 "_perf_calls")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int],
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer
        self._started = 0.0
        self._wall = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) typed attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._wall = wall()
        (self._perf_counters, self._perf_timers,
         self._perf_calls) = PERF.instrument_view()
        self._tracer._stack.append(self)
        self._started = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = perf_counter() - self._started
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        event: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_s": self._wall,
            "duration_s": duration,
            "attrs": self.attrs,
        }
        perf = self._perf_delta()
        if perf:
            event["perf"] = perf
        tracer.events.append(event)
        return False

    def _perf_delta(self) -> Dict[str, Any]:
        """Return the PERF registry's change over this span's lifetime."""
        now_counters, now_timers, now_calls = PERF.instrument_view()
        counters = {
            name: value - self._perf_counters.get(name, 0)
            for name, value in now_counters.items()
            if value != self._perf_counters.get(name, 0)
        }
        timers = {}
        for name, total in now_timers.items():
            delta = total - self._perf_timers.get(name, 0.0)
            calls = (now_calls.get(name, 0)
                     - self._perf_calls.get(name, 0))
            if calls or delta:
                timers[name] = {"total_s": delta, "calls": calls}
        delta: Dict[str, Any] = {}
        if counters:
            delta["counters"] = dict(sorted(counters.items()))
        if timers:
            delta["timers"] = dict(sorted(timers.items()))
        return delta


class Tracer:
    """Process-wide span collector.

    Attributes:
        enabled: when False (the default), :meth:`span` returns
            :data:`NULL_SPAN` and :meth:`emit` drops its record — the
            zero-cost contract.
        events: the append-only event list, in span-exit order.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        # TRACER is a process-wide singleton the serving threads can
        # reach; the lock owns span-id allocation and the event list.
        # The span *stack* stays single-threaded by contract — the
        # scheduler serializes traced computes under its _TRACE_LOCK,
        # since nesting is meaningless across interleaved threads.
        self._lock = threading.Lock()
        self.events: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # --- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span named ``name`` (use as a context manager)."""
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        return Span(self, name, span_id, parent_id, dict(attrs))

    def current(self) -> Optional[Span]:
        """Return the innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def emit(self, record: Dict[str, Any]) -> None:
        """Append a pre-built event (e.g. a mission-trace record).

        The record travels the same JSONL stream as spans; it should
        carry a ``"type"`` discriminator.  When the innermost open span
        exists its id is attached as ``span_id`` so replay can group
        records under their phase.
        """
        if not self.enabled:
            return
        if self._stack and "span_id" not in record:
            record = dict(record)
            record["span_id"] = self._stack[-1].span_id
        with self._lock:
            self.events.append(record)

    # --- lifecycle --------------------------------------------------------

    def reset(self) -> None:
        """Drop all events and open spans (keeps ``enabled``)."""
        with self._lock:
            self.events.clear()
            self._stack.clear()
            self._next_id = 1

    def export_events(self) -> List[Dict[str, Any]]:
        """Return and clear the collected events (worker hand-off)."""
        with self._lock:
            events = list(self.events)
            self.events.clear()
        return events

    def absorb_events(self, events: List[Dict[str, Any]]) -> None:
        """Merge a worker tracer's exported events under this tracer.

        Span ids are remapped into this tracer's id space and top-level
        worker spans are re-parented under the currently open span, so
        a parallel run's trace nests exactly like the serial run's.
        Call once per worker result, in run-index order, to keep the
        stream deterministic.
        """
        if not self.enabled or not events:
            return
        with self._lock:
            mapping: Dict[int, int] = {}
            for event in events:
                old_id = event.get("span_id")
                if isinstance(old_id, int) and old_id not in mapping:
                    mapping[old_id] = self._next_id
                    self._next_id += 1
            parent = self._stack[-1].span_id if self._stack else None
            for event in events:
                merged = dict(event)
                old_id = merged.get("span_id")
                if isinstance(old_id, int):
                    merged["span_id"] = mapping[old_id]
                if merged.get("type") == "span":
                    old_parent = merged.get("parent_id")
                    merged["parent_id"] = (mapping[old_parent]
                                           if old_parent in mapping
                                           else parent)
                self.events.append(merged)

    # --- export -----------------------------------------------------------

    def header(self) -> Dict[str, Any]:
        """Return the stream header event."""
        return {"type": "header", "schema": TRACE_SCHEMA}

    def write_jsonl(self, path: str,
                    manifest: Optional[Dict[str, Any]] = None) -> None:
        """Write header (+ optional manifest) + events as JSONL."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.header(), sort_keys=True))
            handle.write("\n")
            if manifest is not None:
                record = {"type": "manifest"}
                record.update(manifest)
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")


#: The process-wide tracer every instrumented call site reports into.
TRACER = Tracer(enabled=False)


def obs_span(name: str, **attrs: Any):
    """Module-level shortcut for ``TRACER.span(name, **attrs)``."""
    if not TRACER.enabled:
        return NULL_SPAN
    return TRACER.span(name, **attrs)


def obs_emit(record: Dict[str, Any]) -> None:
    """Module-level shortcut for ``TRACER.emit(record)``."""
    if TRACER.enabled:
        TRACER.emit(record)


def obs_enabled() -> bool:
    """Return whether the process-wide tracer is recording."""
    return TRACER.enabled
