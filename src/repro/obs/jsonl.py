"""JSONL event-stream persistence.

One event per line, each a JSON object with a ``"type"`` discriminator
(``header``, ``manifest``, ``span``, and the mission-trace record types
``move`` / ``charge`` / ``harvest``).  Loading is strict: a malformed
line raises rather than being skipped, because a trace with silent
holes would defeat the whole provenance story.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import BundleChargingError

__all__ = ["JsonlError", "read_jsonl", "write_jsonl"]


class JsonlError(BundleChargingError):
    """Raised on an unreadable or malformed JSONL stream."""


def write_jsonl(path: str, events: List[Dict[str, Any]]) -> None:
    """Write ``events`` to ``path``, one compact JSON object per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL stream back into a list of event dicts.

    Raises:
        JsonlError: on an unparsable line or a non-object event.
    """
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise JsonlError(
                    f"{path}:{line_number}: bad JSON: {error}") from error
            if not isinstance(event, dict):
                raise JsonlError(
                    f"{path}:{line_number}: event is not an object: "
                    f"{event!r}")
            events.append(event)
    return events
