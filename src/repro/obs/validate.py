"""Schema validation for emitted trace streams and manifests.

The CI traced-run gate calls :func:`validate_jsonl` on a freshly
emitted log and fails on any finding — unknown event types, span names
outside the documented taxonomy, dangling parent ids, or a manifest
missing a required provenance field.  Keeping the span-name whitelist
here (rather than "whatever the code emits") makes an accidental
taxonomy change a loud CI failure instead of a silently drifting log
format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .manifest import MANIFEST_SCHEMA, REQUIRED_MANIFEST_FIELDS
from .tracer import TRACE_SCHEMA

#: The documented span taxonomy (docs/architecture.md, Observability).
KNOWN_SPAN_NAMES = frozenset({
    "run",              # one run_averaged sweep point
    "seed",             # one seeded deployment + all algorithms
    "deploy",           # network deployment generation
    "plan",             # one algorithm's plan + evaluation
    "obg.candidates",   # bundle candidate enumeration
    "obg.cover",        # greedy set-cover selection
    "bto.tsp",          # TSP ordering over stops/anchors
    "bto.tspn",         # TSPN substrate solve (extension baseline)
    "bto.anchors",      # Algorithm 3 anchor refinement
    "sim.mission",      # discrete-event mission execution
    "service.request",  # one planning-service micro-batch compute
    "delta.repair",     # incremental dirty-region plan repair
})

#: Event types the JSONL stream may carry (spans + mission trace +
#: network-churn deltas, one discriminated union — see
#: :data:`repro.sim.events.EVENT_RECORD_TYPES`).
KNOWN_EVENT_TYPES = frozenset({
    "header", "manifest", "span", "move", "charge", "harvest",
    "sensor_moved", "sensor_died", "sensor_joined",
})

#: Keys every span event must carry.
_SPAN_REQUIRED = ("name", "span_id", "parent_id", "wall_s",
                  "duration_s", "attrs")

__all__ = ["KNOWN_EVENT_TYPES", "KNOWN_SPAN_NAMES",
           "validate_access_record", "validate_events",
           "validate_jsonl", "validate_lint_stats",
           "validate_loadgen_report", "validate_manifest",
           "validate_request", "validate_response",
           "validate_service_metrics"]


def validate_request(body: Any) -> List[str]:
    """Validate a ``bundle-charging/request/v1`` planning request.

    Delegates to :func:`repro.service.request.request_problems` (the
    service package owns the wire schema; this module re-exports the
    checker so CI gates and tests validate all emitted documents from
    one place).  Imported lazily to keep ``repro.obs`` free of a
    module-level dependency on ``repro.service``.
    """
    from ..service.request import request_problems
    return request_problems(body)


def validate_response(envelope: Any) -> List[str]:
    """Validate a ``bundle-charging/response/v1`` service envelope."""
    from ..service.request import response_problems
    return response_problems(envelope)


def validate_service_metrics(document: Any) -> List[str]:
    """Validate a ``bundle-charging/service-metrics/v1|v2`` document.

    Both schema generations are accepted — the ``schema`` field is the
    discriminator a consumer switches on; v2 is a strict superset of
    the v1 keys.
    """
    from ..service.metrics import metrics_problems
    return metrics_problems(document)


def validate_access_record(record: Any) -> List[str]:
    """Validate one ``bundle-charging/access/v1`` access-log record."""
    from ..service.accesslog import access_record_problems
    return access_record_problems(record)


def validate_loadgen_report(report: Any) -> List[str]:
    """Validate a ``bundle-charging/loadgen/v1`` load-test report."""
    from ..loadgen.report import report_problems
    return report_problems(report)


def validate_lint_stats(document: Any) -> List[str]:
    """Validate a ``bundle-charging/lint-stats/v1`` timing document."""
    from ..lint.report import lint_stats_problems
    return lint_stats_problems(document)


def validate_manifest(manifest: Dict[str, Any]) -> List[str]:
    """Return problem strings for a manifest dict (empty = valid)."""
    problems: List[str] = []
    for field in REQUIRED_MANIFEST_FIELDS:
        if field not in manifest:
            problems.append(f"manifest missing required field "
                            f"{field!r}")
    schema = manifest.get("schema")
    if schema is not None and schema != MANIFEST_SCHEMA:
        problems.append(f"unknown manifest schema {schema!r} "
                        f"(expected {MANIFEST_SCHEMA!r})")
    if "seeds" in manifest and not isinstance(manifest["seeds"], list):
        problems.append("manifest 'seeds' must be a list")
    return problems


def validate_events(events: List[Dict[str, Any]],
                    require_header: bool = False) -> List[str]:
    """Return problem strings for a trace event stream (empty = valid).

    Args:
        events: parsed JSONL events, in stream order.
        require_header: demand a leading ``header`` event with the
            current :data:`TRACE_SCHEMA` (set for on-disk streams;
            in-memory tracer events have no header).
    """
    problems: List[str] = []
    if require_header:
        if not events or events[0].get("type") != "header":
            problems.append("stream does not start with a header event")
        elif events[0].get("schema") != TRACE_SCHEMA:
            problems.append(
                f"unknown trace schema {events[0].get('schema')!r} "
                f"(expected {TRACE_SCHEMA!r})")

    span_ids = {event["span_id"] for event in events
                if event.get("type") == "span"
                and isinstance(event.get("span_id"), int)}
    for index, event in enumerate(events):
        kind = event.get("type")
        if kind is None:
            problems.append(f"event {index} has no 'type' discriminator")
            continue
        if kind not in KNOWN_EVENT_TYPES:
            problems.append(f"event {index} has unknown type {kind!r}")
            continue
        if kind == "manifest":
            problems.extend(validate_manifest(event))
        if kind != "span":
            continue
        for key in _SPAN_REQUIRED:
            if key not in event:
                problems.append(
                    f"span event {index} missing key {key!r}")
        name = event.get("name")
        if name is not None and name not in KNOWN_SPAN_NAMES:
            problems.append(f"span event {index} has unknown span name "
                            f"{name!r}")
        parent = event.get("parent_id")
        if parent is not None and parent not in span_ids:
            problems.append(
                f"span event {index} ({name!r}) references unknown "
                f"parent span {parent!r}")
        duration = event.get("duration_s")
        if isinstance(duration, (int, float)) and duration < 0.0:
            problems.append(
                f"span event {index} ({name!r}) has negative duration")
    return problems


def validate_jsonl(path: str,
                   expect_manifest: bool = True) -> List[str]:
    """Validate an on-disk JSONL trace (header demanded).

    Args:
        path: the stream to check.
        expect_manifest: also demand an embedded manifest event.
    """
    from .jsonl import read_jsonl
    events = read_jsonl(path)
    problems = validate_events(events, require_header=True)
    if expect_manifest:
        manifests = [event for event in events
                     if event.get("type") == "manifest"]
        if not manifests:
            problems.append("stream carries no manifest event")
    return problems


def assert_valid_jsonl(path: str,
                       expect_manifest: bool = True) -> None:
    """Raise ``ValueError`` listing every problem in ``path``."""
    problems = validate_jsonl(path, expect_manifest=expect_manifest)
    if problems:
        raise ValueError(
            f"{path} failed trace validation:\n  " +
            "\n  ".join(problems))
