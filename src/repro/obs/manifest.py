"""Run provenance manifests.

Every traced run (and every bench report) gets a manifest: the exact
configuration (plus its SHA-256 digest), the seeds that were actually
consumed, the code identity (git SHA, package version), the platform,
and the wall time.  A results CSV or ``BENCH_*.json`` can then always
be traced back to the run that produced it.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

MANIFEST_SCHEMA = "bundle-charging/manifest/v1"

#: Fields every manifest must carry; the validator (and the CI traced
#: run) fails on a missing one.
REQUIRED_MANIFEST_FIELDS = (
    "schema", "experiment", "config", "config_hash", "seeds",
    "git_sha", "package_version", "python", "platform",
    "created_utc", "wall_time_s", "argv",
)

__all__ = ["MANIFEST_SCHEMA", "REQUIRED_MANIFEST_FIELDS",
           "build_manifest", "config_digest", "git_revision",
           "write_manifest"]


def config_digest(config: Dict[str, Any]) -> str:
    """Return the SHA-256 hex digest of a canonical-JSON config dict."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Return the current git commit SHA, or None outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def _package_version() -> str:
    from .. import __version__
    return __version__


def build_manifest(experiment: str, config: Dict[str, Any],
                   seeds: Sequence[int], wall_time_s: float,
                   argv: Optional[List[str]] = None,
                   extra: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble a provenance record for one run.

    Args:
        experiment: experiment id (``fig13``, ``bench``, ...).
        config: the run configuration as a plain JSON-able dict.
        seeds: the per-run seeds actually consumed, in run order.
        wall_time_s: end-to-end wall time of the run.
        argv: the CLI invocation (defaults to ``sys.argv``).
        extra: additional keys merged in verbatim (must not shadow the
            required fields).
    """
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "experiment": experiment,
        "config": dict(config),
        "config_hash": config_digest(config),
        "seeds": list(seeds),
        "git_sha": git_revision(),
        "package_version": _package_version(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime()),
        "wall_time_s": round(wall_time_s, 6),
        "argv": list(sys.argv if argv is None else argv),
    }
    if extra:
        for key, value in extra.items():
            manifest.setdefault(key, value)
    return manifest


def write_manifest(manifest: Dict[str, Any], path: str) -> None:
    """Write a manifest as indented JSON next to the run's outputs."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
