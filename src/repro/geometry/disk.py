"""Closed disks in the plane.

Disks are the geometric carrier of *charging bundles*: a bundle is valid for
radius ``r`` exactly when its sensors fit inside some disk of radius ``r``
(Definition 3 in the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..errors import GeometryError
from .point import Point

#: Relative slack used for containment checks, so that points produced by
#: the minimum-enclosing-disk solver itself always test as inside.
CONTAINMENT_EPS = 1e-7


@dataclass(frozen=True, slots=True)
class Disk:
    """A closed disk given by its ``center`` and ``radius``.

    Slotted like :class:`Point`: the candidate-disk enumeration creates
    O(n^2) disks per radius, so the per-instance ``__dict__`` matters.
    """

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0 or not math.isfinite(self.radius):
            raise GeometryError(f"invalid disk radius: {self.radius!r}")

    def contains(self, point: Point, eps: float = CONTAINMENT_EPS) -> bool:
        """Return True when ``point`` lies in the closed disk.

        A small relative tolerance ``eps`` absorbs floating-point noise on
        boundary points.
        """
        slack = eps * max(1.0, self.radius)
        limit = (self.radius + slack) ** 2
        return self.center.distance_squared_to(point) <= limit

    def contains_all(self, points: Iterable[Point],
                     eps: float = CONTAINMENT_EPS) -> bool:
        """Return True when every point of ``points`` is inside the disk."""
        return all(self.contains(point, eps) for point in points)

    def intersects(self, other: "Disk") -> bool:
        """Return True when the two closed disks share at least one point."""
        reach = self.radius + other.radius
        return self.center.distance_squared_to(other.center) <= reach * reach

    def area(self) -> float:
        """Return the disk area."""
        return math.pi * self.radius * self.radius

    def boundary_point(self, angle: float) -> Point:
        """Return the boundary point at polar ``angle`` from the center."""
        return self.center + Point.from_polar(self.radius, angle)

    def scaled(self, factor: float) -> "Disk":
        """Return a concentric disk with the radius scaled by ``factor``."""
        return Disk(self.center, self.radius * factor)


def disk_from_two_points(a: Point, b: Point) -> Disk:
    """Return the smallest disk with both ``a`` and ``b`` on its boundary."""
    center = (a + b) * 0.5
    return Disk(center, center.distance_to(a))


def disk_from_three_points(a: Point, b: Point, c: Point) -> Optional[Disk]:
    """Return the circumscribed disk of the triangle ``a b c``.

    Returns None when the three points are (numerically) collinear, in which
    case no finite circumcircle exists.
    """
    ab = b - a
    ac = c - a
    double_cross = 2.0 * ab.cross(ac)
    scale = max(ab.norm(), ac.norm(), 1.0)
    if abs(double_cross) <= 1e-12 * scale * scale:
        return None
    ab_sq = ab.norm_squared()
    ac_sq = ac.norm_squared()
    ux = (ac.y * ab_sq - ab.y * ac_sq) / double_cross
    uy = (ab.x * ac_sq - ac.x * ab_sq) / double_cross
    center = a + Point(ux, uy)
    return Disk(center, center.distance_to(a))


def disks_through_pair_with_radius(a: Point, b: Point,
                                   radius: float) -> Tuple[Disk, ...]:
    """Return the (0, 1 or 2) radius-``radius`` disks through ``a`` and ``b``.

    These are the classic candidate disks for geometric unit-disk cover:
    every maximal radius-``radius`` disk can be translated so that two input
    points lie on its boundary (or one point at its center).

    Returns:
        A tuple of 0, 1 or 2 ``Disk`` objects.  Empty when the two points
        are more than ``2 * radius`` apart.
    """
    if radius < 0.0:
        raise GeometryError(f"negative radius: {radius!r}")
    separation = a.distance_to(b)
    if separation > 2.0 * radius:
        return ()
    midpoint = (a + b) * 0.5
    if separation == 0.0:
        return (Disk(a, radius),)
    half = separation / 2.0
    offset_sq = radius * radius - half * half
    if offset_sq <= 0.0:
        return (Disk(midpoint, radius),)
    offset = math.sqrt(offset_sq)
    direction = (b - a).normalized().perpendicular()
    first = Disk(midpoint + direction * offset, radius)
    second = Disk(midpoint - direction * offset, radius)
    return (first, second)
