"""Convex hulls (Andrew's monotone chain).

The hull is used for diagnostics (deployment statistics, tour sanity
checks) and by the test suite: the smallest enclosing disk of a set equals
the smallest enclosing disk of its hull.
"""

from __future__ import annotations

from typing import List, Sequence

from .point import Point


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Return the convex hull of ``points`` in counter-clockwise order.

    Collinear points on the hull boundary are dropped.  Inputs with fewer
    than three distinct points are returned as-is (deduplicated, sorted).
    """
    unique = sorted(set(points))
    if len(unique) <= 2:
        return unique

    def half_hull(ordered: Sequence[Point]) -> List[Point]:
        chain: List[Point] = []
        for point in ordered:
            while (len(chain) >= 2
                   and (chain[-1] - chain[-2]).cross(point - chain[-1])
                   <= 0.0):
                chain.pop()
            chain.append(point)
        return chain

    lower = half_hull(unique)
    upper = half_hull(list(reversed(unique)))
    return lower[:-1] + upper[:-1]


def hull_perimeter(points: Sequence[Point]) -> float:
    """Return the perimeter of the convex hull of ``points``."""
    hull = convex_hull(points)
    if len(hull) < 2:
        return 0.0
    total = 0.0
    for i, point in enumerate(hull):
        total += point.distance_to(hull[(i + 1) % len(hull)])
    return total
