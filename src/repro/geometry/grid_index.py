"""A uniform-grid spatial index for fixed-radius neighbour queries.

Bundle candidate generation asks, for every sensor, "which sensors lie
within distance ``2r``?"  A uniform grid with cell size equal to the query
radius answers this in expected O(1) per reported neighbour, which keeps
candidate enumeration at O(n^2) worst case but near-linear on the uniform
deployments the paper evaluates.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import GeometryError
from .point import Point

_CellKey = Tuple[int, int]


def grid_cell_size(radius: float) -> float:
    """Return the uniform-grid cell edge for a radius-``radius`` query.

    The cell edge equals the query radius, floored at ``1e-9`` so a
    degenerate ``radius == 0.0`` still yields a valid grid (every point
    then occupies its own cell unless two coincide).  This is the single
    sizing rule shared by :class:`GridIndex` callers, the candidate
    enumeration and the struct-of-arrays grids — keeping the fast and
    reference paths on the same cell decomposition by construction.

    Raises:
        GeometryError: for a negative or non-finite radius.
    """
    if radius < 0.0 or not math.isfinite(radius):
        raise GeometryError(f"invalid grid query radius: {radius!r}")
    return max(radius, 1e-9)


class GridIndex:
    """Index a fixed point set for radius queries.

    The index stores *indices into the original sequence*, so callers can
    map results back to their own objects (sensors, anchors, ...).
    """

    def __init__(self, points: Sequence[Point], cell_size: float) -> None:
        """Build the index.

        Args:
            points: the point set to index (kept by reference).
            cell_size: grid cell edge length; pick the typical query radius.
        """
        if cell_size <= 0.0 or not math.isfinite(cell_size):
            raise GeometryError(f"invalid cell size: {cell_size!r}")
        self._points = points
        self._cell_size = cell_size
        self._cells: Dict[_CellKey, List[int]] = defaultdict(list)
        for index, point in enumerate(points):
            self._cells[self._key(point)].append(index)

    def _key(self, point: Point) -> _CellKey:
        return (math.floor(point.x / self._cell_size),
                math.floor(point.y / self._cell_size))

    def __len__(self) -> int:
        return len(self._points)

    @property
    def cell_size(self) -> float:
        """Return the cell edge length."""
        return self._cell_size

    def neighbors_within(self, center: Point, radius: float,
                         include_self: bool = True) -> List[int]:
        """Return indices of all points within ``radius`` of ``center``.

        Args:
            center: query point (need not be an indexed point).
            radius: query radius (inclusive).
            include_self: when False, points exactly at ``center`` are
                skipped — handy when querying around an indexed point.
        """
        if radius < 0.0:
            raise GeometryError(f"negative query radius: {radius!r}")
        reach = math.ceil(radius / self._cell_size)
        center_key = self._key(center)
        radius_sq = radius * radius
        found: List[int] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                key = (center_key[0] + dx, center_key[1] + dy)
                for index in self._cells.get(key, ()):
                    point = self._points[index]
                    if point.distance_squared_to(center) > radius_sq:
                        continue
                    if not include_self and point == center:
                        continue
                    found.append(index)
        return found

    def pairs_within(self, radius: float) -> Iterable[Tuple[int, int]]:
        """Yield all index pairs ``(i, j)`` with ``i < j`` within ``radius``.

        Each pair is yielded exactly once, via a forward-neighbour cell
        sweep: every unordered cell pair is visited once, instead of the
        per-point rescan (kept as :meth:`pairs_within_scan`) that
        examined each candidate pair from both endpoints.  The query
        radius may exceed the cell size — the sweep reach scales as
        ``ceil(radius / cell_size)``, which matters because candidate
        enumeration queries at ``2r`` over a grid built with cell ``r``.

        Yield *order* differs from the per-point scan; the pair *set* is
        identical.
        """
        if radius < 0.0:
            raise GeometryError(f"negative query radius: {radius!r}")
        reach = math.ceil(radius / self._cell_size)
        radius_sq = radius * radius
        points = self._points
        cells = self._cells
        forward = [(dx, dy)
                   for dx in range(0, reach + 1)
                   for dy in range(-reach, reach + 1)
                   if dx > 0 or dy > 0]
        for (cell_x, cell_y), bucket in cells.items():
            size = len(bucket)
            for a in range(size):
                i = bucket[a]
                point_i = points[i]
                for b in range(a + 1, size):  # bucket is index-ascending
                    j = bucket[b]
                    if points[j].distance_squared_to(point_i) <= radius_sq:
                        yield (i, j)
            for dx, dy in forward:
                other = cells.get((cell_x + dx, cell_y + dy))
                if other:
                    for i in bucket:
                        point_i = points[i]
                        for j in other:
                            if (points[j].distance_squared_to(point_i)
                                    <= radius_sq):
                                yield (i, j) if i < j else (j, i)

    def pairs_within_scan(self, radius: float) -> Iterable[Tuple[int, int]]:
        """The original per-point pair enumeration (each pair examined from
        both endpoints).  Kept as the reference implementation for the
        benchmark harness and the property tests."""
        for i, point in enumerate(self._points):
            for j in self.neighbors_within(point, radius):
                if j > i:
                    yield (i, j)
