"""Ellipse utilities for the Theorem 4/5 anchor-point optimizer.

Theorem 4 of the paper states that, for a fixed displacement budget ``d``
away from a bundle center ``C_i``, the energy-optimal anchor point is the
tangency point between

* the circle of radius ``d`` centered at ``C_i`` (all anchor candidates at
  that charging-distance penalty), and
* an ellipse with foci at the neighbouring tour anchors ``C_{i-1}`` and
  ``C_{i+1}`` (all points with a given detour length).

Equivalently, the optimal point on the circle *minimizes the sum of focal
distances* ``|P C_{i-1}| + |P C_{i+1}|``.  Theorem 5 shows the tangency
point is where the radius ``C_i P`` bisects the angle ``C_{i-1} P C_{i+1}``,
which gives a sign test suitable for binary search on the circle angle.

This module implements both characterizations:

* :func:`focal_sum` — the objective itself;
* :func:`bisector_residual` — the Theorem 5 sign test;
* :func:`min_focal_sum_on_circle` — binary search on the bisector residual
  (the paper's ``O(log h)`` procedure), with a golden-section fallback for
  degenerate geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import GeometryError
from ..perf.counters import PERF
from .point import Point

#: Angular resolution at which the searches stop (radians).  1e-7 rad on
#: a kilometer-scale circle is sub-millimeter anchor precision.
ANGLE_TOL = 1e-7

#: When True, :func:`min_focal_sum_on_circle` routes through the original
#: Point-based implementation.  Flipped only by
#: :func:`repro.perf.reference_kernels`; the scalar fast path computes the
#: same floating-point operations in the same order, so results are
#: bit-identical either way.
_USE_REFERENCE = False


@dataclass(frozen=True)
class Ellipse:
    """An ellipse in foci form: points with ``|P f1| + |P f2| = 2 a``."""

    focus1: Point
    focus2: Point
    semi_major: float

    def __post_init__(self) -> None:
        focal_half = self.focus1.distance_to(self.focus2) / 2.0
        if self.semi_major < focal_half - 1e-12:
            raise GeometryError(
                "semi-major axis smaller than half the focal distance: "
                f"a={self.semi_major}, c={focal_half}")

    @property
    def center(self) -> Point:
        """Return the ellipse center (midpoint of the foci)."""
        return (self.focus1 + self.focus2) * 0.5

    @property
    def focal_half_distance(self) -> float:
        """Return ``c``, half the distance between the foci."""
        return self.focus1.distance_to(self.focus2) / 2.0

    @property
    def semi_minor(self) -> float:
        """Return ``b = sqrt(a^2 - c^2)``."""
        c = self.focal_half_distance
        return math.sqrt(max(0.0, self.semi_major ** 2 - c ** 2))

    def contains(self, point: Point, eps: float = 1e-9) -> bool:
        """Return True when ``point`` is inside or on the ellipse."""
        total = (point.distance_to(self.focus1)
                 + point.distance_to(self.focus2))
        return total <= 2.0 * self.semi_major + eps

    def focal_sum(self, point: Point) -> float:
        """Return ``|P f1| + |P f2|`` for ``point``."""
        return (point.distance_to(self.focus1)
                + point.distance_to(self.focus2))


def focal_sum(point: Point, focus1: Point, focus2: Point) -> float:
    """Return the sum of distances from ``point`` to the two foci.

    This is the tour-detour objective of Theorem 4: visiting ``point``
    between anchors ``focus1`` and ``focus2`` costs exactly this much
    movement.
    """
    return point.distance_to(focus1) + point.distance_to(focus2)


def bisector_residual(center: Point, point: Point,
                      focus1: Point, focus2: Point) -> float:
    """Return the Theorem 5 angular residual at ``point``.

    At the tangency point the radius ``center -> point`` bisects the angle
    ``focus1 - point - focus2``.  We return the signed difference between
    the two half-angles; the optimizer binary-searches for the zero of this
    residual along the circle.

    The residual is computed as the difference of the angles between the
    outward radial direction and the directions toward each focus, measured
    with ``atan2`` so it is smooth across the axis.
    """
    radial = point - center
    if radial.norm() == 0.0:
        return 0.0
    to_f1 = focus1 - point
    to_f2 = focus2 - point
    if to_f1.norm() == 0.0 or to_f2.norm() == 0.0:
        return 0.0
    angle_f1 = _angle_between(radial, to_f1)
    angle_f2 = _angle_between(radial, to_f2)
    return angle_f1 - angle_f2


def _angle_between(a: Point, b: Point) -> float:
    """Return the unsigned angle between vectors ``a`` and ``b``."""
    denom = a.norm() * b.norm()
    if denom == 0.0:
        return 0.0
    cosine = max(-1.0, min(1.0, a.dot(b) / denom))
    return math.acos(cosine)


def min_focal_sum_on_circle(center: Point, radius: float,
                            focus1: Point, focus2: Point,
                            tol: float = ANGLE_TOL) -> Tuple[Point, float]:
    """Find the point on a circle minimizing the sum of focal distances.

    Implements the paper's reduced search: the minimizer is the tangency
    point of Theorem 4, located by binary search using the bisector
    property of Theorem 5.  The initial bracket is seeded from the
    direction toward the midpoint of the foci (the geometric region that
    must contain the tangency point); a golden-section search over the full
    circle is used as a fallback whenever the geometry is degenerate
    (coincident foci, center between the foci, zero radius).

    This is the BC-OPT hot kernel: the default path inlines the whole
    search into scalar float arithmetic (no :class:`Point` allocation per
    probe) while performing the identical floating-point operations in
    the identical order as :func:`min_focal_sum_on_circle_reference`, so
    the two return bit-identical results.

    Args:
        center: circle center (the original bundle anchor ``C_i``).
        radius: circle radius (the displacement budget ``d``).
        focus1: previous anchor on the tour (``C_{i-1}``).
        focus2: next anchor on the tour (``C_{i+1}``).
        tol: angular tolerance for search termination.

    Returns:
        ``(point, value)`` — the minimizing circle point and its focal sum.
    """
    PERF.add("ellipse.min_focal_sum_calls")
    if _USE_REFERENCE:
        return min_focal_sum_on_circle_reference(center, radius,
                                                 focus1, focus2, tol)
    return _min_focal_sum_scalar(center, radius, focus1, focus2, tol)


def min_focal_sum_on_circle_reference(
        center: Point, radius: float, focus1: Point, focus2: Point,
        tol: float = ANGLE_TOL) -> Tuple[Point, float]:
    """The original Point-based Theorem 4/5 search (ground truth for the
    scalar fast path; see :func:`min_focal_sum_on_circle`)."""
    if radius < 0.0:
        raise GeometryError(f"negative circle radius: {radius!r}")
    if radius == 0.0:
        return center, focal_sum(center, focus1, focus2)

    if focus1.distance_to(focus2) <= 1e-12:
        # Coincident foci: the residual is identically zero, so Theorem 5
        # gives no signal.  The optimum is simply the circle point
        # nearest the (single) focus.
        toward_focus = focus1 - center
        if toward_focus.norm() <= 1e-12:
            point = center + Point(radius, 0.0)
        else:
            point = center + toward_focus.normalized() * radius
        return point, focal_sum(point, focus1, focus2)

    target = (focus1 + focus2) * 0.5
    toward = target - center
    if toward.norm() <= 1e-12:
        # Center coincides with the foci midpoint: fall back to scanning.
        return _golden_section_on_circle(center, radius, focus1, focus2, tol)

    base_angle = toward.angle()
    objective = lambda theta: focal_sum(  # noqa: E731 - tiny local closure
        center + Point.from_polar(radius, theta), focus1, focus2)

    # The minimizer lies within +-pi/2 of the direction toward the foci
    # midpoint (moving away from both foci can only increase the sum), but
    # bracket conservatively with +-pi * 0.75 and verify unimodality via
    # the residual's sign; fall back to golden-section otherwise.
    lo = base_angle - math.pi * 0.75
    hi = base_angle + math.pi * 0.75

    residual_at = lambda theta: bisector_residual(  # noqa: E731
        center, center + Point.from_polar(radius, theta), focus1, focus2)

    res_lo = residual_at(lo)
    res_hi = residual_at(hi)
    if res_lo == 0.0 or res_hi == 0.0 or res_lo * res_hi > 0.0:
        # No clean sign change to bisect on (symmetric or off-bracket
        # geometry): use the robust scan.
        return _golden_section_on_circle(center, radius, focus1, focus2, tol)

    # Bisection on the Theorem 5 residual.
    for _ in range(200):
        mid = (lo + hi) / 2.0
        res_mid = residual_at(mid)
        if abs(res_mid) <= 1e-14 or (hi - lo) <= tol:
            break
        if res_lo * res_mid <= 0.0:
            hi = mid
            res_hi = res_mid
        else:
            lo = mid
            res_lo = res_mid
    best_angle = (lo + hi) / 2.0
    bisect_point = center + Point.from_polar(radius, best_angle)
    bisect_value = focal_sum(bisect_point, focus1, focus2)

    # Guard: the residual zero can be a non-minimal stationary point when
    # a focus lies inside the circle.  A coarse scan detects that case
    # cheaply; only then pay for the golden-section fallback.
    coarse_best = min(
        objective(2.0 * math.pi * k / 12.0) for k in range(12))
    if coarse_best < bisect_value - 1e-9 * max(1.0, bisect_value):
        golden_point, golden_value = _golden_section_on_circle(
            center, radius, focus1, focus2, tol)
        if golden_value < bisect_value:
            return golden_point, golden_value
    return bisect_point, bisect_value


def _golden_section_on_circle(center: Point, radius: float,
                              focus1: Point, focus2: Point,
                              tol: float) -> Tuple[Point, float]:
    """Golden-section fallback: coarse scan + refine around the best angle."""
    objective = lambda theta: focal_sum(  # noqa: E731
        center + Point.from_polar(radius, theta), focus1, focus2)

    samples = 64
    best_idx = 0
    best_val = math.inf
    step = 2.0 * math.pi / samples
    for i in range(samples):
        value = objective(i * step)
        if value < best_val:
            best_val = value
            best_idx = i
    lo = (best_idx - 1) * step
    hi = (best_idx + 1) * step

    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = objective(c), objective(d)
    while (b - a) > tol:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = objective(d)
    best_angle = (a + b) / 2.0
    point = center + Point.from_polar(radius, best_angle)
    return point, focal_sum(point, focus1, focus2)


def _min_focal_sum_scalar(center: Point, radius: float,
                          focus1: Point, focus2: Point,
                          tol: float) -> Tuple[Point, float]:
    """Scalar-inlined twin of :func:`min_focal_sum_on_circle_reference`.

    Every arithmetic expression below reproduces the reference's
    operations in the same order (``Point.__add__`` becomes ``cx + px``,
    ``Point.norm`` becomes ``hypot(x, y)``, ...), which makes the result
    bit-identical; the speedup comes purely from eliding the per-probe
    Point allocations and method dispatch.
    """
    if radius < 0.0:
        raise GeometryError(f"negative circle radius: {radius!r}")

    cos = math.cos
    sin = math.sin
    hypot = math.hypot
    acos = math.acos
    cx, cy = center.x, center.y
    f1x, f1y = focus1.x, focus1.y
    f2x, f2y = focus2.x, focus2.y

    if radius == 0.0:
        value = hypot(cx - f1x, cy - f1y) + hypot(cx - f2x, cy - f2y)
        return center, value

    if hypot(f1x - f2x, f1y - f2y) <= 1e-12:
        # Coincident foci: the residual is identically zero, so Theorem 5
        # gives no signal.  The optimum is simply the circle point
        # nearest the (single) focus.
        tx = f1x - cx
        ty = f1y - cy
        toward_norm = hypot(tx, ty)
        if toward_norm <= 1e-12:
            px = cx + radius
            py = cy + 0.0
        else:
            px = cx + tx / toward_norm * radius
            py = cy + ty / toward_norm * radius
        value = hypot(px - f1x, py - f1y) + hypot(px - f2x, py - f2y)
        return Point(px, py), value

    target_x = (f1x + f2x) * 0.5
    target_y = (f1y + f2y) * 0.5
    toward_x = target_x - cx
    toward_y = target_y - cy
    if hypot(toward_x, toward_y) <= 1e-12:
        # Center coincides with the foci midpoint: fall back to scanning.
        PERF.add("ellipse.golden_fallbacks")
        return _golden_section_scalar(cx, cy, radius, f1x, f1y, f2x, f2y,
                                      tol)

    base_angle = math.atan2(toward_y, toward_x)

    def residual_at(theta: float) -> float:
        # bisector_residual(center, center + from_polar(radius, theta)).
        rx = radius * cos(theta)
        ry = radius * sin(theta)
        px = cx + rx
        py = cy + ry
        radial_x = px - cx
        radial_y = py - cy
        radial_norm = hypot(radial_x, radial_y)
        if radial_norm == 0.0:
            return 0.0
        to_f1x = f1x - px
        to_f1y = f1y - py
        to_f2x = f2x - px
        to_f2y = f2y - py
        norm_f1 = hypot(to_f1x, to_f1y)
        norm_f2 = hypot(to_f2x, to_f2y)
        if norm_f1 == 0.0 or norm_f2 == 0.0:
            return 0.0
        denom1 = radial_norm * norm_f1
        if denom1 == 0.0:
            angle_f1 = 0.0
        else:
            cosine = (radial_x * to_f1x + radial_y * to_f1y) / denom1
            angle_f1 = acos(max(-1.0, min(1.0, cosine)))
        denom2 = radial_norm * norm_f2
        if denom2 == 0.0:
            angle_f2 = 0.0
        else:
            cosine = (radial_x * to_f2x + radial_y * to_f2y) / denom2
            angle_f2 = acos(max(-1.0, min(1.0, cosine)))
        return angle_f1 - angle_f2

    lo = base_angle - math.pi * 0.75
    hi = base_angle + math.pi * 0.75

    res_lo = residual_at(lo)
    res_hi = residual_at(hi)
    if res_lo == 0.0 or res_hi == 0.0 or res_lo * res_hi > 0.0:
        # No clean sign change to bisect on (symmetric or off-bracket
        # geometry): use the robust scan.
        PERF.add("ellipse.golden_fallbacks")
        return _golden_section_scalar(cx, cy, radius, f1x, f1y, f2x, f2y,
                                      tol)

    # Bisection on the Theorem 5 residual.
    for _ in range(200):
        mid = (lo + hi) / 2.0
        res_mid = residual_at(mid)
        if abs(res_mid) <= 1e-14 or (hi - lo) <= tol:
            break
        if res_lo * res_mid <= 0.0:
            hi = mid
            res_hi = res_mid
        else:
            lo = mid
            res_lo = res_mid
    best_angle = (lo + hi) / 2.0
    best_x = cx + radius * cos(best_angle)
    best_y = cy + radius * sin(best_angle)
    bisect_value = (hypot(best_x - f1x, best_y - f1y)
                    + hypot(best_x - f2x, best_y - f2y))

    # Guard: the residual zero can be a non-minimal stationary point when
    # a focus lies inside the circle.  A coarse scan detects that case
    # cheaply; only then pay for the golden-section fallback.
    coarse_best = math.inf
    for k in range(12):
        theta = 2.0 * math.pi * k / 12.0
        px = cx + radius * cos(theta)
        py = cy + radius * sin(theta)
        value = (hypot(px - f1x, py - f1y)
                 + hypot(px - f2x, py - f2y))
        if value < coarse_best:
            coarse_best = value
    if coarse_best < bisect_value - 1e-9 * max(1.0, bisect_value):
        golden_point, golden_value = _golden_section_scalar(
            cx, cy, radius, f1x, f1y, f2x, f2y, tol)
        if golden_value < bisect_value:
            return golden_point, golden_value
    return Point(best_x, best_y), bisect_value


def _golden_section_scalar(cx: float, cy: float, radius: float,
                           f1x: float, f1y: float, f2x: float, f2y: float,
                           tol: float) -> Tuple[Point, float]:
    """Scalar twin of :func:`_golden_section_on_circle` (bit-identical)."""
    cos = math.cos
    sin = math.sin
    hypot = math.hypot

    def objective(theta: float) -> float:
        px = cx + radius * cos(theta)
        py = cy + radius * sin(theta)
        return (hypot(px - f1x, py - f1y)
                + hypot(px - f2x, py - f2y))

    samples = 64
    best_idx = 0
    best_val = math.inf
    step = 2.0 * math.pi / samples
    for i in range(samples):
        value = objective(i * step)
        if value < best_val:
            best_val = value
            best_idx = i
    lo = (best_idx - 1) * step
    hi = (best_idx + 1) * step

    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = objective(c), objective(d)
    while (b - a) > tol:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = objective(d)
    best_angle = (a + b) / 2.0
    px = cx + radius * cos(best_angle)
    py = cy + radius * sin(best_angle)
    value = hypot(px - f1x, py - f1y) + hypot(px - f2x, py - f2y)
    return Point(px, py), value
