"""Computational-geometry substrate.

Everything the bundle-charging algorithms need from the plane: points,
disks, segments, Welzl's smallest-enclosing-disk (Algorithm 1 of the
paper), the ellipse-tangency machinery behind Theorems 4/5, convex hulls,
and a uniform-grid spatial index.
"""

from .disk import (Disk, disk_from_three_points, disk_from_two_points,
                   disks_through_pair_with_radius)
from .ellipse import (Ellipse, bisector_residual, focal_sum,
                      min_focal_sum_on_circle)
from .grid_index import GridIndex, grid_cell_size
from .hull import convex_hull, hull_perimeter
from .minidisk import (brute_force_enclosing_disk, enclosing_disk_radius,
                       fits_in_radius, smallest_enclosing_disk)
from .point import (ORIGIN, Point, as_point, centroid, max_distance,
                    polyline_length)
from .segment import Segment
from .soa import (FlatDeployment, flat_candidate_masks, flat_dirty_members,
                  flat_distance_rows, flat_fits_in_radius,
                  flat_members_within)

__all__ = [
    "ORIGIN",
    "Disk",
    "Ellipse",
    "FlatDeployment",
    "GridIndex",
    "Point",
    "Segment",
    "as_point",
    "bisector_residual",
    "brute_force_enclosing_disk",
    "centroid",
    "convex_hull",
    "disk_from_three_points",
    "disk_from_two_points",
    "disks_through_pair_with_radius",
    "enclosing_disk_radius",
    "fits_in_radius",
    "flat_candidate_masks",
    "flat_dirty_members",
    "flat_distance_rows",
    "flat_fits_in_radius",
    "flat_members_within",
    "focal_sum",
    "grid_cell_size",
    "hull_perimeter",
    "max_distance",
    "min_focal_sum_on_circle",
    "polyline_length",
    "smallest_enclosing_disk",
]
