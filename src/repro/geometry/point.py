"""2-D points and elementary vector operations.

The whole library works in the Euclidean plane; this module provides the
single point type everything else builds on.  ``Point`` is an immutable,
hashable value type so points can be dictionary keys and set members.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True, order=True, slots=True)
class Point:
    """An immutable point (or vector) in the plane.

    Supports the usual vector arithmetic so geometric code reads naturally::

        midpoint = (a + b) * 0.5
        direction = (b - a).normalized()

    Points are allocated O(n^2) times in the geometric kernels, so the
    dataclass is slotted: no per-instance ``__dict__``, noticeably less
    memory and faster attribute access.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    def __rmul__(self, scalar: float) -> "Point":
        return self.__mul__(scalar)

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        """Return the dot product with ``other``."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Return the z component of the 2-D cross product."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Return the Euclidean length of this vector."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        """Return the squared Euclidean length (no sqrt)."""
        return self.x * self.x + self.y * self.y

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_squared_to(self, other: "Point") -> float:
        """Return the squared distance to ``other`` (no sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def normalized(self) -> "Point":
        """Return a unit vector in this direction.

        Raises:
            ZeroDivisionError: if this is the zero vector.
        """
        length = self.norm()
        return Point(self.x / length, self.y / length)

    def rotated(self, angle: float) -> "Point":
        """Return this vector rotated counter-clockwise by ``angle`` rad."""
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        return Point(self.x * cos_a - self.y * sin_a,
                     self.x * sin_a + self.y * cos_a)

    def perpendicular(self) -> "Point":
        """Return this vector rotated by +90 degrees."""
        return Point(-self.y, self.x)

    def angle(self) -> float:
        """Return the polar angle of this vector in ``(-pi, pi]``."""
        return math.atan2(self.y, self.x)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def is_close(self, other: "Point", tol: float = 1e-9) -> bool:
        """Return True when both coordinates match within ``tol``."""
        return (math.isclose(self.x, other.x, abs_tol=tol, rel_tol=0.0)
                and math.isclose(self.y, other.y, abs_tol=tol, rel_tol=0.0))

    @staticmethod
    def from_polar(radius: float, angle: float) -> "Point":
        """Build a point from polar coordinates ``(radius, angle)``."""
        return Point(radius * math.cos(angle), radius * math.sin(angle))

    @staticmethod
    def origin() -> "Point":
        """Return the origin (0, 0)."""
        return Point(0.0, 0.0)


ORIGIN = Point(0.0, 0.0)


def as_point(value: "Point | Sequence[float]") -> Point:
    """Coerce a ``Point`` or an ``(x, y)`` sequence into a ``Point``."""
    if isinstance(value, Point):
        return value
    x, y = value
    return Point(float(x), float(y))


def centroid(points: Iterable[Point]) -> Point:
    """Return the arithmetic mean of ``points``.

    Raises:
        ValueError: if ``points`` is empty.
    """
    total_x = 0.0
    total_y = 0.0
    count = 0
    for point in points:
        total_x += point.x
        total_y += point.y
        count += 1
    if count == 0:
        raise ValueError("centroid of an empty point set is undefined")
    return Point(total_x / count, total_y / count)


def polyline_length(points: Sequence[Point], closed: bool = False) -> float:
    """Return the total length of the polyline through ``points``.

    Args:
        points: ordered waypoints.
        closed: when True, also count the segment from the last point back
            to the first (i.e. measure a closed tour).
    """
    if len(points) < 2:
        return 0.0
    total = sum(points[i].distance_to(points[i + 1])
                for i in range(len(points) - 1))
    if closed:
        total += points[-1].distance_to(points[0])
    return total


def max_distance(origin_point: Point, points: Iterable[Point]) -> float:
    """Return the largest distance from ``origin_point`` to ``points``.

    Returns 0.0 for an empty iterable, which matches the convention that a
    stop with no assigned sensors needs zero dwell time.
    """
    best = 0.0
    for point in points:
        best = max(best, origin_point.distance_to(point))
    return best
