"""Line segments and point/segment queries.

Used by the CSS baseline (Skip and Substitute steps walk the tour's
segments) and by the tour optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .disk import Disk
from .point import Point


@dataclass(frozen=True)
class Segment:
    """A directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    def length(self) -> float:
        """Return the segment length."""
        return self.start.distance_to(self.end)

    def point_at(self, t: float) -> Point:
        """Return the point at parameter ``t`` in [0, 1] along the segment."""
        return self.start + (self.end - self.start) * t

    def midpoint(self) -> Point:
        """Return the midpoint."""
        return self.point_at(0.5)

    def closest_parameter(self, point: Point) -> float:
        """Return the parameter ``t`` of the closest segment point."""
        direction = self.end - self.start
        denom = direction.norm_squared()
        if denom == 0.0:
            return 0.0
        t = (point - self.start).dot(direction) / denom
        return min(1.0, max(0.0, t))

    def closest_point(self, point: Point) -> Point:
        """Return the segment point closest to ``point``."""
        return self.point_at(self.closest_parameter(point))

    def distance_to_point(self, point: Point) -> float:
        """Return the distance from ``point`` to this segment."""
        return self.closest_point(point).distance_to(point)

    def intersects_disk(self, disk: Disk) -> bool:
        """Return True when the segment passes through the closed disk."""
        return self.distance_to_point(disk.center) <= disk.radius + 1e-12

    def first_point_in_disk(self, disk: Disk) -> Point:
        """Return the earliest segment point inside ``disk``.

        Assumes :meth:`intersects_disk` is True; if the whole segment lies
        outside, the closest point is returned instead (best effort).
        """
        d = self.end - self.start
        f = self.start - disk.center
        a = d.norm_squared()
        if a == 0.0:
            return self.start
        b = 2.0 * f.dot(d)
        c = f.norm_squared() - disk.radius * disk.radius
        discriminant = b * b - 4.0 * a * c
        if discriminant < 0.0:
            return self.closest_point(disk.center)
        root = math.sqrt(discriminant)
        t1 = (-b - root) / (2.0 * a)
        t2 = (-b + root) / (2.0 * a)
        for t in (t1, t2):
            if 0.0 <= t <= 1.0:
                return self.point_at(t)
        return self.closest_point(disk.center)
