"""Struct-of-arrays geometry engine — flat-coordinate fast kernels.

The object-graph kernels (``Point``/``Disk`` dataclasses, ``GridIndex``
buckets of indices) plateau around 3x because every hot loop pays
attribute dispatch and per-pair allocations.  This module is the raw
speed tier below them: a :class:`FlatDeployment` holds the sensor
coordinates once per pipeline run in ``array('d')`` buffers (pure
stdlib, memoryview-exportable) and the kernels iterate cached per-cell
tuples unpacked straight from those buffers — no ``Point`` or ``Disk``
is materialized anywhere in an inner loop.

Three kernels run on the flat buffers:

* :func:`flat_candidate_masks` — pair-disk candidate enumeration driven
  directly off the grid forward sweep (no materialized point pairs, no
  per-pair ``disks_through_pair_with_radius`` dispatch).  Squared
  distances gate every comparison; ``sqrt``/``hypot`` appear only in
  the reference-ordered center computation, so the produced family is
  bit-identical to the reference enumeration.
* :func:`flat_members_within` / :func:`flat_fits_in_radius` — the
  member query and the decisional MinDisk validation.  The Welzl
  recursion's hot containment checks run over the flat buffers; the
  (rare) boundary-disk reconstructions delegate to the original
  :mod:`repro.geometry.disk` helpers so every float is produced by the
  same expressions as the reference.
* :func:`flat_distance_rows` — the dense TSP distance matrix built in
  one pass over the coordinate arrays.

The backend flag :data:`_USE_REFERENCE` mirrors
:data:`repro.bundling.bitset._USE_REFERENCE`: callers (candidate
enumeration, ``validate_candidates``, :class:`repro.tsp.DistanceMatrix`)
route back to their original implementations when it is set, and
:func:`repro.perf.reference_kernels` flips it together with the other
backends.  Every kernel here is bit-identical to its reference sibling
on all inputs — the parity tests and the PAR001 lint rule keep that
honest.
"""

from __future__ import annotations

import math
import random
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import GeometryError
from ..perf.counters import PERF
from .grid_index import grid_cell_size
from .minidisk import _EPS, _trivial_disk
from .point import Point

__all__ = [
    "FlatDeployment",
    "flat_candidate_masks",
    "flat_distance_rows",
    "flat_dirty_members",
    "flat_fits_in_radius",
    "flat_members_within",
]

#: When True, SoA-backed entry points use their reference implementations.
#: Flipped only via :func:`repro.perf.reference_kernels`.
_USE_REFERENCE = False

#: Shared shuffle source for the flat decisional MinDisk.  Re-seeded to
#: ``0x5EED`` per call, it replays exactly the stream of the reference
#: implementation's default RNG (:data:`repro.geometry.minidisk._DEFAULT_RNG`).
_FLAT_MINIDISK_RNG = random.Random(0x5EED)

#: One grid occupant: ``(x, y, index)``.  The small index (not a
#: ``1 << index`` bit) rides along so the member-scan inner loop
#: accumulates machine-int appends; masks are built once per *unique*
#: member set at the end instead of once per scan — big-int ORs and
#: big-int dict hashing are the dominant cost at n=1000.
_CellPoint = Tuple[float, float, int]


class _MissDict(Dict[int, Optional[List[_CellPoint]]]):
    """Dict-backed cell lookup for grids whose integer key span is too
    wide to back with a flat list (tiny cells over a huge extent).
    Indexing a missing key yields ``None`` — the same "empty window"
    signal as an unfilled list slot — without inserting anything, so the
    kernels index list and dict lookups with identical code.
    """

    def __missing__(self, key: int) -> None:
        return None


#: Cell-keyed lookup: ``lookup[key - base]`` is the cell's entry or
#: ``None``.  A flat list over the padded occupied span when that span
#: is compact (``base`` anchors slot 0 below the occupied bounds), a
#: :class:`_MissDict` with ``base == 0`` otherwise.
_CellLookup = Union[List[Optional[List[_CellPoint]]], _MissDict]


class _FlatGrid:
    """A uniform grid over a :class:`FlatDeployment`, one per cell size.

    ``points`` maps each occupied cell to its occupants as
    ``(x, y, index)`` tuples in ascending index order; neighborhood
    scans concatenate these bucket lists without touching the coordinate
    buffers again.

    Cells are keyed by the single integer ``col * stride + row`` (an int
    hashes to itself, so lookups skip the tuple allocation and tuple
    hashing a ``(col, row)`` key would pay).  ``stride`` exceeds the
    occupied row span by a safety margin, so the encoding is injective
    for every cell the kernels can query: query centers always lie
    within one cell-size of some indexed point, hence within two
    rows/columns of the occupied bounds, far inside the margin.  Callers
    probing arbitrary coordinates (:func:`flat_members_within`) must
    bounds-check against ``col_lo``/``row_hi`` first.
    """

    __slots__ = ("cell_size", "stride", "points",
                 "col_lo", "col_hi", "row_lo", "row_hi")

    #: Extra rows added to the stride beyond the occupied span; keeps
    #: ``col * stride + row`` injective for rows within 8 of the data.
    _MARGIN = 16

    def __init__(self, xs: Sequence[float], ys: Sequence[float],
                 cell_size: float) -> None:
        self.cell_size = cell_size
        floor = math.floor
        cols = [floor(x / cell_size) for x in xs]
        rows = [floor(y / cell_size) for y in ys]
        if rows:
            self.col_lo = min(cols)
            self.col_hi = max(cols)
            self.row_lo = min(rows)
            self.row_hi = max(rows)
        else:
            self.col_lo = self.col_hi = self.row_lo = self.row_hi = 0
        stride = self.row_hi - self.row_lo + self._MARGIN
        self.stride = stride
        points: Dict[int, List[_CellPoint]] = {}
        points_get = points.get
        for index, x, y, col, row in zip(range(len(xs)), xs, ys,
                                         cols, rows):
            key = col * stride + row
            bucket = points_get(key)
            if bucket is None:
                points[key] = [(x, y, index)]
            else:
                bucket.append((x, y, index))
        self.points = points


class FlatDeployment:
    """Read-only struct-of-arrays view of a point set.

    Coordinates live in two ``array('d')`` buffers (exportable as
    zero-copy memoryviews through :meth:`coords`); the kernels iterate
    cached per-cell tuple lists derived from them, so inner loops
    allocate nothing.  Build one per pipeline run — uniform grids are
    cached per cell size on the instance, so candidate enumeration,
    member queries and validation at the same radius share one grid.
    """

    __slots__ = ("_xs", "_ys", "_xs_list", "_ys_list", "_grids")

    def __init__(self, xs: Iterable[float], ys: Iterable[float]) -> None:
        self._xs = array("d", xs)
        self._ys = array("d", ys)
        if len(self._xs) != len(self._ys):
            raise GeometryError(
                f"coordinate buffers disagree: {len(self._xs)} xs vs "
                f"{len(self._ys)} ys")
        # List views of the buffers: CPython indexes a list of floats
        # without boxing a fresh float per access, which the pure-Python
        # inner loops feel; the arrays stay the canonical storage.
        self._xs_list: List[float] = self._xs.tolist()
        self._ys_list: List[float] = self._ys.tolist()
        self._grids: Dict[float, _FlatGrid] = {}
        PERF.add("soa.flat_builds")

    @classmethod
    def from_points(cls, points: Sequence[Point]) -> "FlatDeployment":
        """Build the flat view of a ``Point`` sequence in one pass."""
        xs: List[float] = []
        ys: List[float] = []
        for point in points:
            xs.append(point.x)
            ys.append(point.y)
        return cls(xs, ys)

    def __len__(self) -> int:
        return len(self._xs)

    def point(self, index: int) -> Point:
        """Materialize one coordinate pair as a :class:`Point`."""
        return Point(self._xs[index], self._ys[index])

    def coords(self) -> Tuple["memoryview", "memoryview"]:
        """Return zero-copy read views over the coordinate buffers."""
        return (memoryview(self._xs).toreadonly(),
                memoryview(self._ys).toreadonly())

    def grid(self, cell_size: float) -> _FlatGrid:
        """Return the uniform grid for ``cell_size`` (cached per size)."""
        if cell_size <= 0.0 or not math.isfinite(cell_size):
            raise GeometryError(f"invalid cell size: {cell_size!r}")
        grid = self._grids.get(cell_size)
        if grid is None:
            grid = _FlatGrid(self._xs_list, self._ys_list, cell_size)
            self._grids[cell_size] = grid
            PERF.add("soa.grid_builds")
        return grid


def _build_neighborhoods(buckets: Dict[int, List[_CellPoint]],
                         deltas: Sequence[int],
                         neighborhoods: _CellLookup, base: int) -> int:
    """Fill every member-scan neighborhood in one scatter pass.

    The neighborhood of cell ``key`` (stored at slot ``key - base``) is
    every point a radius-``r`` disk centered in that cell could contain:
    the concatenation of the grid buckets within ``reach`` cells, as
    ``(x, y, idx)`` tuples shared with the buckets.  Scattering each
    occupied bucket into the cells it serves touches each (occupied
    cell, delta) combination exactly once — fewer lookups than gathering
    per queried center cell — and a cell left unfilled provably has an
    empty window (its 3x3 scan would find nothing), so scans treat
    ``None`` as empty.  Returns the number of neighborhoods filled.
    """
    built = 0
    for key, bucket in buckets.items():
        start = key - base
        for delta in deltas:
            target = start + delta
            pts = neighborhoods[target]
            if pts is None:
                neighborhoods[target] = list(bucket)
                built += 1
            else:
                pts += bucket
    return built


def _scan_center(qx: float, qy: float, cell: float, stride: int,
                 base: int, neighborhoods: _CellLookup,
                 radius_sq: float,
                 seen: Dict[Tuple[int, ...], None]) -> None:
    """Record the membership of one disk center (cold path).

    Used for coincident-pair, diameter-pair and same-cell-pair centers;
    the hot mirrored-centers path in :func:`flat_candidate_masks`
    inlines this body.
    """
    floor = math.floor
    pts = neighborhoods[floor(qx / cell) * stride + floor(qy / cell)
                        - base]
    if pts is None:
        return
    members: List[int] = []
    for px, py, idx in pts:
        ddx = px - qx
        ddy = py - qy
        if ddx * ddx + ddy * ddy <= radius_sq:
            members.append(idx)
    if members:
        members.sort()
        seen[tuple(members)] = None


def _pair_disk_centers(ax: float, ay: float, bx: float, by: float,
                       cell: float, stride: int, base: int,
                       neighborhoods: _CellLookup,
                       radius_sq: float, two_radius: float,
                       seen: Dict[Tuple[int, ...], None]) -> None:
    """Scan the (up to two) radius-``r`` disk centers through one pair.

    Cold path for same-cell pairs (a small fraction of the sweep); the
    forward-sweep hot path in :func:`flat_candidate_masks` inlines this
    body.  The float expressions mirror
    :func:`repro.geometry.disk.disks_through_pair_with_radius` exactly.
    """
    separation = math.hypot(ax - bx, ay - by)
    if separation > two_radius:
        return
    if separation == 0.0:
        _scan_center(ax, ay, cell, stride, base, neighborhoods,
                     radius_sq, seen)
        return
    mid_x = (ax + bx) * 0.5
    mid_y = (ay + by) * 0.5
    half = separation / 2.0
    offset_sq = radius_sq - half * half
    if offset_sq <= 0.0:
        _scan_center(mid_x, mid_y, cell, stride, base, neighborhoods,
                     radius_sq, seen)
        return
    offset = math.sqrt(offset_sq)
    perp_x = -((by - ay) / separation) * offset
    perp_y = (bx - ax) / separation * offset
    _scan_center(mid_x + perp_x, mid_y + perp_y, cell, stride, base,
                 neighborhoods, radius_sq, seen)
    _scan_center(mid_x - perp_x, mid_y - perp_y, cell, stride, base,
                 neighborhoods, radius_sq, seen)


def flat_candidate_masks(flat: FlatDeployment, radius: float) -> List[int]:
    """Enumerate the radius-``radius`` candidate-disk member masks.

    The family is the classic two-point maximal-disk discretization —
    one disk centered on every point plus the (up to) two radius-``r``
    disks through each pair at most ``2r`` apart — deduplicated by
    member mask.  Pair enumeration runs directly on the grid forward
    sweep over the per-cell tuple lists; member scans share lazily
    concatenated 3x3-cell neighborhoods per center cell.  Every float
    comparison and every center coordinate reproduces the reference
    implementation's expressions exactly, so the returned list is
    bit-identical to :func:`candidate_member_masks_reference`'s.

    Returns:
        The deduplicated masks in the family's canonical order:
        descending cardinality, then ascending lexicographic on the
        member indices.
    """
    if radius < 0.0:
        raise GeometryError(f"negative candidate radius: {radius!r}")
    n = len(flat)
    if n == 0:
        return []
    cell = grid_cell_size(radius)
    grid = flat.grid(cell)
    buckets = grid.points
    stride = grid.stride
    floor = math.floor
    sqrt = math.sqrt
    hypot = math.hypot
    radius_sq = radius * radius
    reach = math.ceil(radius / cell)
    deltas = [dx * stride + dy
              for dx in range(-reach, reach + 1)
              for dy in range(-reach, reach + 1)]

    # Cell lookups index flat lists when the occupied key span is
    # compact (the common case): slot ``key - base`` holds the cell's
    # entry, ``None`` means "no such cell" — exactly what a dict miss
    # used to signal.  A list subscript beats a dict probe on every
    # forward-bucket gather, scatter write and center scan, which
    # together dominate the sweep's lookup traffic.  The padding is
    # provably sufficient: every query center lies within one cell-size
    # of an indexed point (pair-disk centers are at distance ``radius``
    # from their generating points and ``cell >= radius``), so floored
    # query columns/rows stay within two of the occupied bounds, and
    # the forward sweep reaches at most two cells ahead.  Wide-span
    # grids (tiny cells over a huge coordinate extent) fall back to
    # dict-backed lookups with identical miss semantics via
    # :class:`_MissDict`.
    span = (grid.col_hi - grid.col_lo + 7) * stride
    neighborhoods: _CellLookup
    buckets_seq: _CellLookup
    if span <= 32 * n + 4096:
        base = (grid.col_lo - 3) * stride + (grid.row_lo - 3)
        neighborhoods = [None] * span
        buckets_seq = [None] * span
        for key, bucket in buckets.items():
            buckets_seq[key - base] = bucket
    else:
        base = 0
        neighborhoods = _MissDict()
        buckets_seq = _MissDict(buckets)

    # Member-scan neighborhoods, one scatter pass: center cell -> every
    # point a radius-r disk centered in that cell could contain, as
    # (x, y, idx) tuples shared with the grid buckets.  No closures
    # below: a nested function would turn these hot names into cell
    # variables, demoting every outer-loop access from LOAD_FAST to
    # LOAD_DEREF.
    #
    # Scans deduplicate on sorted *index tuples*, not on masks: hashing
    # a few machine ints is far cheaper than hashing an n-bit integer,
    # and the bitmask is then built once per unique member set at the
    # end instead of OR-accumulated on every scan.
    built = _build_neighborhoods(buckets, deltas, neighborhoods, base)
    seen: Dict[Tuple[int, ...], None] = {}

    # One pass over the occupied cells does both candidate shapes: the
    # single-point disks (a disk centered on every point — the cell's
    # own neighborhood, never a miss since it contains its own bucket)
    # and the pair sweep fused with the pair-disk center scans.
    #
    # Pairs come from the forward-neighbor cell sweep over the *same*
    # radius-cell grid the reference enumeration sweeps, so the examined
    # pair set is identical to the reference's by construction (a
    # coarser sweep grid could disagree on ulp-boundary pairs whose cell
    # assignment straddles a floor rounding).  Each cell concatenates
    # its forward buckets once, so the per-point pair loop is one flat
    # scan, and every accepted pair runs the inlined
    # disks_through_pair_with_radius(a, b, radius) body on the spot —
    # no materialized pair tuples.  ``separation`` is exactly the
    # reference's (b - a).norm(), so it doubles as the normalizer for
    # the perpendicular direction; each unordered pair is visited
    # exactly once, so its orientation is free — both centers are
    # scanned either way, and hypot/sqrt are sign-symmetric, so the
    # center coordinates match the reference bit-for-bit.
    query = 2.0 * radius
    query_sq = query * query
    pair_reach = math.ceil(query / cell)
    forward = [dx * stride + dy
               for dx in range(0, pair_reach + 1)
               for dy in range(-pair_reach, pair_reach + 1)
               if dx > 0 or dy > 0]
    two_radius = 2.0 * radius
    queries = 0
    pair_disks = 0
    for key, bucket in buckets.items():
        kb = key - base
        pts = neighborhoods[kb]
        if pts is not None:  # always true: a cell scatters into itself
            for qx, qy, _ in bucket:
                members: List[int] = []
                for px, py, idx in pts:
                    ddx = px - qx
                    ddy = py - qy
                    if ddx * ddx + ddy * ddy <= radius_sq:
                        members.append(idx)
                if members:
                    members.sort()
                    seen[tuple(members)] = None
        queries += len(bucket)
        size = len(bucket)
        if size > 1:  # same-cell pairs, each exactly once (cold path)
            for a_pos in range(size - 1):
                ax, ay, _ = bucket[a_pos]
                for b_pos in range(a_pos + 1, size):
                    bx, by, _ = bucket[b_pos]
                    ddx = bx - ax
                    ddy = by - ay
                    if ddx * ddx + ddy * ddy <= query_sq:
                        pair_disks += 1
                        _pair_disk_centers(ax, ay, bx, by, cell, stride,
                                           base, neighborhoods,
                                           radius_sq, two_radius, seen)
        fpts: List[_CellPoint] = []
        for delta in forward:
            other = buckets_seq[kb + delta]
            if other:
                fpts += other
        if not fpts:
            continue
        for ax, ay, _ in bucket:
            for bx, by, _ in fpts:
                ddx = bx - ax
                ddy = by - ay
                if ddx * ddx + ddy * ddy > query_sq:
                    continue
                pair_disks += 1
                # ddx/ddy are exactly (b - a); float subtraction is
                # antisymmetric and hypot is sign-symmetric, so
                # hypot(ddx, ddy) is bitwise the reference's
                # (a - b).norm(), and the perpendicular expressions
                # below reuse them verbatim.
                separation = hypot(ddx, ddy)
                if separation > two_radius:
                    continue
                if separation == 0.0:
                    _scan_center(ax, ay, cell, stride, base,
                                 neighborhoods, radius_sq, seen)
                    continue
                mid_x = (ax + bx) * 0.5
                mid_y = (ay + by) * 0.5
                half = separation / 2.0
                offset_sq = radius_sq - half * half
                if offset_sq <= 0.0:
                    _scan_center(mid_x, mid_y, cell, stride, base,
                                 neighborhoods, radius_sq, seen)
                    continue
                offset = sqrt(offset_sq)
                perp_x = -(ddy / separation) * offset
                perp_y = ddx / separation * offset
                # Both mirrored centers, scans inlined.  The two member
                # lists are compared *before* the first sort: equal
                # lists mean the identical member set (a very common
                # outcome — both disks always hold the generating pair),
                # so the second sort + dedup store can be skipped.
                qx = mid_x + perp_x
                qy = mid_y + perp_y
                pts = neighborhoods[floor(qx / cell) * stride
                                    + floor(qy / cell) - base]
                if pts is None:
                    first = None
                else:
                    first = []
                    for px, py, idx in pts:
                        ddx = px - qx
                        ddy = py - qy
                        if ddx * ddx + ddy * ddy <= radius_sq:
                            first.append(idx)
                qx = mid_x - perp_x
                qy = mid_y - perp_y
                pts = neighborhoods[floor(qx / cell) * stride
                                    + floor(qy / cell) - base]
                if pts is None:
                    second = None
                else:
                    second = []
                    for px, py, idx in pts:
                        ddx = px - qx
                        ddy = py - qy
                        if ddx * ddx + ddy * ddy <= radius_sq:
                            second.append(idx)
                if first:
                    if second == first:
                        second = None
                    first.sort()
                    seen[tuple(first)] = None
                if second:
                    second.sort()
                    seen[tuple(second)] = None

    PERF.add("soa.member_queries", queries + 2 * pair_disks)
    PERF.add("soa.pair_disks", pair_disks)
    PERF.add("soa.neighborhood_builds", built)

    # Canonical family order — descending cardinality, then ascending
    # lexicographic on the member indices — imposed here where the index
    # tuples already exist (re-deriving them from the masks costs more
    # than the whole enumeration sweep).  Grouping by length first keeps
    # every sort a plain C-level tuple comparison over a smaller run (no
    # decorated length-key pass), and lets the common 1/2/3-member
    # groups build their masks in single comprehensions instead of a
    # per-tuple accumulation loop.
    by_len: Dict[int, List[Tuple[int, ...]]] = {}
    by_len_get = by_len.get
    for member_tuple in seen:
        group = by_len_get(len(member_tuple))
        if group is None:
            by_len[len(member_tuple)] = [member_tuple]
        else:
            group.append(member_tuple)
    bits = [1 << index for index in range(n)]
    masks: List[int] = []
    for length in sorted(by_len, reverse=True):
        group = by_len[length]
        group.sort()
        if length == 1:
            masks += [bits[t[0]] for t in group]
        elif length == 2:
            masks += [bits[t[0]] | bits[t[1]] for t in group]
        elif length == 3:
            masks += [bits[t[0]] | bits[t[1]] | bits[t[2]] for t in group]
        else:
            masks_append = masks.append
            for member_tuple in group:
                mask = bits[member_tuple[0]]
                for idx in member_tuple[1:]:
                    mask |= bits[idx]
                masks_append(mask)
    return masks


def flat_members_within(flat: FlatDeployment, qx: float, qy: float,
                        radius: float) -> int:
    """Return the membership mask of points within ``radius`` of a query.

    Bit ``i`` is set exactly when point ``i`` lies within the closed
    radius — the same squared-distance comparison as
    :meth:`repro.geometry.GridIndex.neighbors_within`, so the mask is
    the bit-packed twin of that index list on every input.
    """
    if radius < 0.0:
        raise GeometryError(f"negative query radius: {radius!r}")
    cell = grid_cell_size(radius)
    grid = flat.grid(cell)
    buckets_get = grid.points.get
    stride = grid.stride
    reach = math.ceil(radius / cell)
    radius_sq = radius * radius
    base_x = math.floor(qx / cell)
    base_y = math.floor(qy / cell)
    mask = 0
    # The query point is arbitrary, so clamp the visited cell range to
    # the occupied bounds: the integer cell encoding is only injective
    # near the data (see :class:`_FlatGrid`), and cells outside the
    # occupied bounds are empty anyway.
    for col in range(max(base_x - reach, grid.col_lo),
                     min(base_x + reach, grid.col_hi) + 1):
        for row in range(max(base_y - reach, grid.row_lo),
                         min(base_y + reach, grid.row_hi) + 1):
            bucket = buckets_get(col * stride + row)
            if bucket:
                for px, py, idx in bucket:
                    ddx = px - qx
                    ddy = py - qy
                    if ddx * ddx + ddy * ddy <= radius_sq:
                        mask |= 1 << idx
    return mask


def flat_dirty_members(flat: FlatDeployment,
                       centers: Iterable[Tuple[float, float]],
                       radius: float) -> int:
    """Return the union membership mask within ``radius`` of any center.

    This is the dirty-region query of the incremental replanner
    (:mod:`repro.delta.engine`): candidate disks are sensor-anchored
    with the generation radius ``r``, so a disk's membership changes
    exactly when a change site lies within ``r`` of its anchor.  The
    replanner calls this with every changed coordinate to bound the set
    of sensors whose bundles need regeneration.  One shared grid
    (cached on ``flat``) serves every center.
    """
    mask = 0
    for cx, cy in centers:
        mask |= flat_members_within(flat, cx, cy, radius)
    return mask


def flat_fits_in_radius(flat: FlatDeployment, members: Iterable[int],
                        radius: float,
                        rng: Optional[random.Random] = None) -> bool:
    """Decisional MinDisk over the flat buffers.

    Replays Welzl's move-to-front iteration exactly as
    :func:`repro.geometry.minidisk.fits_in_radius` does — the same
    shuffle stream over the same visit order, the same containment
    tolerances — but keeps the hot containment checks on raw
    coordinates.  Boundary-disk reconstructions (the rare path) delegate
    to the original ``disk_from_two_points`` / ``_trivial_disk`` so every
    produced float is bit-identical to the reference's.
    """
    if radius < 0.0:
        raise GeometryError(f"negative radius: {radius!r}")
    order = list(members)
    if rng is None:
        rng = _FLAT_MINIDISK_RNG
        rng.seed(0x5EED)
    rng.shuffle(order)
    xs = flat._xs_list
    ys = flat._ys_list
    hypot = math.hypot

    if not order:
        enclosing = 0.0
    else:
        first = order[0]
        cx = xs[first]
        cy = ys[first]
        cr = 0.0
        limit = (cr + _EPS * max(1.0, cr)) ** 2
        for pos in range(1, len(order)):
            p = order[pos]
            px = xs[p]
            py = ys[p]
            ddx = cx - px
            ddy = cy - py
            if ddx * ddx + ddy * ddy <= limit:
                continue
            # p must be on the boundary of the new disk.
            cx, cy, cr = px, py, 0.0
            limit = (cr + _EPS * max(1.0, cr)) ** 2
            for j_pos in range(pos):
                q = order[j_pos]
                qx = xs[q]
                qy = ys[q]
                ddx = cx - qx
                ddy = cy - qy
                if ddx * ddx + ddy * ddy <= limit:
                    continue
                # p and q are both on the boundary.
                cx = (px + qx) * 0.5
                cy = (py + qy) * 0.5
                cr = hypot(cx - px, cy - py)
                limit = (cr + _EPS * max(1.0, cr)) ** 2
                for k_pos in range(j_pos):
                    s = order[k_pos]
                    ddx = cx - xs[s]
                    ddy = cy - ys[s]
                    if ddx * ddx + ddy * ddy <= limit:
                        continue
                    disk = _trivial_disk([Point(px, py), Point(qx, qy),
                                          Point(xs[s], ys[s])])
                    cx = disk.center.x
                    cy = disk.center.y
                    cr = disk.radius
                    limit = (cr + _EPS * max(1.0, cr)) ** 2
        enclosing = cr
    slack = 1e-9 * max(1.0, radius)
    return enclosing <= radius + slack


def flat_distance_rows(xs: Sequence[float],
                       ys: Sequence[float]) -> List[List[float]]:
    """Build the dense Euclidean distance rows over the flat buffers.

    Each upper-triangle entry is ``hypot(xi - xj, yi - yj)`` — exactly
    the expression ``Point.distance_to`` evaluates — computed in a
    single comprehension over the coordinate pairs; the lower triangle
    is mirrored from the rows already built, just as the reference
    construction mirrors it, so the rows are bit-identical to
    :func:`repro.tsp.distance.distance_rows_reference`'s (including the
    exact ``0.0`` diagonal).
    """
    hypot = math.hypot
    coords = list(zip(xs, ys))
    rows: List[List[float]] = []
    for i, (xi, yi) in enumerate(coords):
        row = [other[i] for other in rows]
        row.append(0.0)
        row += [hypot(xi - xj, yi - yj) for xj, yj in coords[i + 1:]]
        rows.append(row)
    return rows
