"""Welzl's MinDisk: smallest enclosing disk of a planar point set.

This is Algorithm 1 of the paper (a restatement of Welzl 1991).  Two
entry points are provided:

* :func:`smallest_enclosing_disk` — the optimization version (returns the
  disk itself), expected linear time over a shuffled input.
* :func:`fits_in_radius` — the *decisional* version used by the bundle
  generator (Algorithm 2 line 4): does the point set fit inside some disk
  of radius ``r``?

The implementation is iterative (move-to-front style) rather than
recursive, so it never hits Python's recursion limit on large bundles.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from ..errors import GeometryError
from .disk import (Disk, disk_from_three_points, disk_from_two_points)
from .point import Point

#: Relative tolerance for "point inside disk" tests during construction.
_EPS = 1e-10

#: Shared shuffle source for the default (rng=None) path.  Re-seeding a
#: cached ``Random`` yields the same stream as constructing a fresh
#: ``Random(0x5EED)`` while skipping the per-call allocation — measurable
#: because the bundle pipeline calls MinDisk once per selected bundle.
_DEFAULT_RNG = random.Random(0x5EED)


def _trivial_disk(boundary: Sequence[Point]) -> Disk:
    """Return the smallest disk with all of ``boundary`` on its boundary.

    ``boundary`` has at most three points (the support set of the smallest
    enclosing disk in the plane never needs more).
    """
    if not boundary:
        return Disk(Point.origin(), 0.0)
    if len(boundary) == 1:
        return Disk(boundary[0], 0.0)
    if len(boundary) == 2:
        return disk_from_two_points(boundary[0], boundary[1])
    if len(boundary) == 3:
        circum = disk_from_three_points(*boundary)
        if circum is not None:
            return circum
        # Collinear support: fall back to the widest pair.
        candidates = [
            disk_from_two_points(boundary[0], boundary[1]),
            disk_from_two_points(boundary[0], boundary[2]),
            disk_from_two_points(boundary[1], boundary[2]),
        ]
        for disk in sorted(candidates, key=lambda d: d.radius):
            if disk.contains_all(boundary):
                return disk
        return max(candidates, key=lambda d: d.radius)
    raise GeometryError(
        f"support set of a planar min-disk has <= 3 points, got "
        f"{len(boundary)}")


def _inside(disk: Disk, point: Point) -> bool:
    """Containment test with construction tolerance."""
    slack = _EPS * max(1.0, disk.radius)
    return (disk.center.distance_squared_to(point)
            <= (disk.radius + slack) ** 2)


def smallest_enclosing_disk(points: Iterable[Point],
                            rng: Optional[random.Random] = None) -> Disk:
    """Return the smallest disk enclosing ``points``.

    Args:
        points: the input set; an empty input yields a zero disk at the
            origin.
        rng: optional random source used to shuffle the input (the shuffle
            is what makes the expected running time linear).  Pass a seeded
            ``random.Random`` for reproducibility; by default a fixed seed
            is used so results are deterministic.

    Returns:
        The minimum enclosing ``Disk``.  Every input point is contained
        (within floating-point tolerance) and no smaller disk contains all
        of them.
    """
    pts: List[Point] = list(points)
    if not pts:
        return Disk(Point.origin(), 0.0)
    if rng is None:
        rng = _DEFAULT_RNG
        rng.seed(0x5EED)
    shuffled = pts[:]
    rng.shuffle(shuffled)

    disk = Disk(shuffled[0], 0.0)
    for i in range(1, len(shuffled)):
        p = shuffled[i]
        if _inside(disk, p):
            continue
        # p must be on the boundary of the new disk.
        disk = Disk(p, 0.0)
        for j in range(i):
            q = shuffled[j]
            if _inside(disk, q):
                continue
            # p and q are both on the boundary.
            disk = disk_from_two_points(p, q)
            for k in range(j):
                s = shuffled[k]
                if _inside(disk, s):
                    continue
                disk = _trivial_disk([p, q, s])
    return disk


def fits_in_radius(points: Iterable[Point], radius: float,
                   rng: Optional[random.Random] = None) -> bool:
    """Decisional MinDisk: do ``points`` fit in some disk of ``radius``?

    This is the feasibility check the bundle generator performs on every
    candidate bundle (Algorithm 2, lines 4-6).
    """
    if radius < 0.0:
        raise GeometryError(f"negative radius: {radius!r}")
    disk = smallest_enclosing_disk(points, rng=rng)
    slack = 1e-9 * max(1.0, radius)
    return disk.radius <= radius + slack


def enclosing_disk_radius(points: Iterable[Point],
                          rng: Optional[random.Random] = None) -> float:
    """Return only the radius of the smallest enclosing disk."""
    return smallest_enclosing_disk(points, rng=rng).radius


def brute_force_enclosing_disk(points: Sequence[Point]) -> Disk:
    """O(n^4) reference implementation used by the test suite.

    Tries every disk defined by one, two or three input points and returns
    the smallest one that encloses the whole set.  Only suitable for tiny
    inputs; exists so property tests can cross-check Welzl's algorithm.
    """
    pts = list(points)
    if not pts:
        return Disk(Point.origin(), 0.0)
    if len(pts) == 1:
        return Disk(pts[0], 0.0)

    best: Optional[Disk] = None
    candidates: List[Disk] = []
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            candidates.append(disk_from_two_points(pts[i], pts[j]))
            for k in range(j + 1, len(pts)):
                circum = disk_from_three_points(pts[i], pts[j], pts[k])
                if circum is not None:
                    candidates.append(circum)
    for disk in candidates:
        if not disk.contains_all(pts, eps=1e-9):
            continue
        if best is None or disk.radius < best.radius:
            best = disk
    if best is None:
        # All points coincide.
        return Disk(pts[0], 0.0)
    return best
