"""Charging-tour layer (the paper's BTO problem, Section V).

Plans, the Eq. 3 evaluator, the Theorem 4/5 single-anchor optimizer and
the Algorithm 3 tour optimizer.
"""

from .anchor_opt import (AnchorResult, anchor_energy, optimize_anchor,
                         two_bundle_shift)
from .evaluate import PlanMetrics, evaluate_plan, plan_total_energy
from .latency import (LatencyMetrics, completion_times, latency_metrics,
                      reorder_for_latency)
from .optimizer import TourOptimizationReport, optimize_tour
from .plan import ChargingPlan, Stop, stop_for_sensors

__all__ = [
    "AnchorResult",
    "ChargingPlan",
    "LatencyMetrics",
    "PlanMetrics",
    "Stop",
    "TourOptimizationReport",
    "anchor_energy",
    "completion_times",
    "evaluate_plan",
    "latency_metrics",
    "optimize_anchor",
    "optimize_tour",
    "plan_total_energy",
    "reorder_for_latency",
    "stop_for_sensors",
]
