"""Plan evaluation: the Eq. 3 objective, computed one way for everyone.

``total = E_m * tour_length + sum(p_c * dwell_i)`` — movement plus
charger-side radiated energy.  The evaluator also reports the per-sensor
metrics the paper plots (average charging time per sensor, Fig. 12(c) /
13(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..charging import CostParameters, EnergyBreakdown
from ..errors import PlanError
from ..geometry import Point
from .plan import ChargingPlan


@dataclass(frozen=True)
class PlanMetrics:
    """Everything the paper's evaluation plots, for one plan.

    Attributes:
        energy: the full energy ledger.
        stop_count: number of charging stops.
        sensor_count: number of sensors the plan serves.
        average_charging_time_s: total dwell divided by sensors served —
            the paper's "average charging time for each sensor".
        max_stop_distance_m: worst charger-to-sensor distance over stops.
    """

    energy: EnergyBreakdown
    stop_count: int
    sensor_count: int
    average_charging_time_s: float
    max_stop_distance_m: float

    @property
    def total_j(self) -> float:
        """Return total (movement + charging) energy."""
        return self.energy.total_j

    def as_row(self) -> Dict[str, float]:
        """Return a flat dict for tables."""
        row = self.energy.as_dict()
        row["avg_charging_time_s"] = self.average_charging_time_s
        row["max_stop_distance_m"] = self.max_stop_distance_m
        row["sensor_count"] = float(self.sensor_count)
        return row


def evaluate_plan(plan: ChargingPlan, locations: Sequence[Point],
                  cost: CostParameters,
                  require_consistent_dwell: bool = True) -> PlanMetrics:
    """Compute the Eq. 3 objective and companion metrics for ``plan``.

    Args:
        plan: the plan to score.
        locations: sensor locations (indexed by the stops' sensor ids).
        cost: mission cost constants.
        require_consistent_dwell: when True, verify each stop's stored
            dwell is at least the minimum needed for its farthest sensor
            (catches planners that under-dwell).

    Raises:
        PlanError: when a stop under-dwells and the check is enabled.
    """
    energy = EnergyBreakdown()
    waypoints = plan.waypoints()
    if len(waypoints) >= 2:
        for i in range(len(waypoints)):
            a = waypoints[i]
            b = waypoints[(i + 1) % len(waypoints)]
            energy.add_leg(a.distance_to(b), cost)

    worst_overall = 0.0
    served = 0
    for stop in plan.stops:
        worst = stop.worst_distance(locations)
        worst_overall = max(worst_overall, worst)
        served += len(stop.sensors)
        if require_consistent_dwell and stop.sensors:
            distances = [stop.position.distance_to(locations[i])
                         for i in stop.sensors]
            needed = cost.dwell_time_for_distances(distances)
            if stop.dwell_s < needed - 1e-6 * max(1.0, needed):
                raise PlanError(
                    f"stop at {stop.position} dwells {stop.dwell_s:.3f}s "
                    f"but needs {needed:.3f}s under the "
                    f"{cost.dwell_policy} dwell policy")
        energy.add_stop(stop.dwell_s, cost)

    average_time = (plan.total_dwell_s() / served) if served else 0.0
    return PlanMetrics(
        energy=energy,
        stop_count=len(plan.stops),
        sensor_count=served,
        average_charging_time_s=average_time,
        max_stop_distance_m=worst_overall,
    )


def plan_total_energy(plan: ChargingPlan, locations: Sequence[Point],
                      cost: CostParameters) -> float:
    """Shorthand for the total-energy objective alone."""
    return evaluate_plan(plan, locations, cost).total_j
