"""Single-anchor optimization — Theorems 4 and 5 of the paper.

Given a stop between tour neighbours ``prev`` and ``next``, the charger
may park anywhere: moving the anchor off the bundle's SED center shortens
the tour legs but lengthens the worst charging distance (and hence the
dwell).  Theorem 4 reduces the 2-D search to a 1-D family: for each
displacement budget ``d``, the best position on the circle of radius ``d``
around the bundle center is the tangency point with the ellipse whose
foci are the neighbours — equivalently, the circle point minimizing the
sum of focal distances.  Theorem 5 locates that point by bisector-sign
binary search in ``O(log h)`` instead of scanning ``h`` discretized
angles.

:func:`optimize_anchor` runs the 1-D search over ``d`` and returns the
best position found, never worse than the starting anchor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..charging import CostParameters
from ..errors import PlanError
from ..geometry import Point, min_focal_sum_on_circle

#: Default number of displacement budgets sampled in the 1-D search.
DEFAULT_RADIUS_STEPS = 24


@dataclass(frozen=True)
class AnchorResult:
    """Outcome of a single-anchor optimization.

    Attributes:
        position: the chosen anchor.
        energy_j: movement (two legs) + charging energy at that anchor.
        moved: True when the anchor changed from the initial position.
    """

    position: Point
    energy_j: float
    moved: bool


def anchor_energy(position: Point, prev_point: Point, next_point: Point,
                  member_locations: Sequence[Point],
                  cost: CostParameters) -> float:
    """Return the local energy of charging this bundle from ``position``.

    Local energy = movement over the two adjacent legs + charger-side
    charging energy for the farthest member.  Only terms that depend on
    this anchor are counted, so comparing two positions is exact.
    """
    legs = (position.distance_to(prev_point)
            + position.distance_to(next_point))
    charge = cost.charging_energy_for_distances(
        position.distance_to(p) for p in member_locations)
    if math.isinf(charge):
        return math.inf
    return cost.movement_energy(legs) + charge


def optimize_anchor(center: Point, prev_point: Point, next_point: Point,
                    member_locations: Sequence[Point],
                    cost: CostParameters,
                    current: Optional[Point] = None,
                    max_displacement: Optional[float] = None,
                    radius_steps: int = DEFAULT_RADIUS_STEPS
                    ) -> AnchorResult:
    """Find the best anchor for one bundle between two tour neighbours.

    Args:
        center: the bundle's SED center ``C_i`` (minimizes the worst
            charging distance; displacement is measured from here).
        prev_point: the preceding anchor ``C_{i-1}`` on the tour.
        next_point: the following anchor ``C_{i+1}`` on the tour.
        member_locations: locations of the bundle's sensors.
        cost: mission cost constants.
        current: the incumbent anchor to beat; defaults to ``center``.
        max_displacement: cap on how far from ``center`` to search;
            defaults to the shorter adjacent leg (moving farther than a
            neighbour can never pay off).
        radius_steps: displacement discretization level ``h``.

    Returns:
        The best anchor found; ``energy_j`` is the local objective of
        :func:`anchor_energy` and is <= the incumbent's.

    Raises:
        PlanError: on a non-positive ``radius_steps``.
    """
    if radius_steps <= 0:
        raise PlanError(f"radius_steps must be positive: {radius_steps!r}")

    incumbent = current if current is not None else center
    best_position = incumbent
    best_energy = anchor_energy(incumbent, prev_point, next_point,
                                member_locations, cost)
    # Relative acceptance threshold: ignore sub-ppm "improvements" so the
    # sweep loop in Algorithm 3 terminates instead of chasing noise.
    accept_tol = 1e-7 * max(1.0, abs(best_energy))

    # The SED center itself is always a candidate (d = 0).
    center_energy = anchor_energy(center, prev_point, next_point,
                                  member_locations, cost)
    if center_energy < best_energy - accept_tol:
        best_position = center
        best_energy = center_energy

    if max_displacement is None:
        max_displacement = min(center.distance_to(prev_point),
                               center.distance_to(next_point))
    if max_displacement <= 0.0:
        return AnchorResult(best_position, best_energy,
                            best_position != incumbent)

    for step in range(1, radius_steps + 1):
        d = max_displacement * step / radius_steps
        point, _ = min_focal_sum_on_circle(center, d, prev_point,
                                           next_point)
        energy = anchor_energy(point, prev_point, next_point,
                               member_locations, cost)
        if energy < best_energy - accept_tol:
            best_energy = energy
            best_position = point

    return AnchorResult(best_position, best_energy,
                        best_position != incumbent)


def two_bundle_shift(bundle_separation: float, bundle_radius: float,
                     cost: CostParameters,
                     steps: int = 200) -> float:
    """The paper's two-bundle warm-up (Section V-B, Eq. 7/8).

    Two bundles of radius ``r`` have centers ``L`` apart; the charger may
    stop ``x`` short of each center along the connecting line.  Returns
    the energy-minimizing ``x`` found by scanning [0, L/2] — the standard
    numerical method the paper invokes.

    Args:
        bundle_separation: ``L``, the distance between the two centers.
        bundle_radius: ``r``, both bundles' radius.
        cost: mission cost constants.
        steps: scan resolution.

    Returns:
        The optimal pull-in distance ``x >= 0``.
    """
    if bundle_separation < 0.0 or bundle_radius < 0.0:
        raise PlanError("separation and radius must be non-negative")

    def energy(x: float) -> float:
        # Round trip saves 2x of movement; charging worst distance grows
        # from r to r + x at each of the two stops.
        movement = cost.movement_energy(
            2.0 * max(0.0, bundle_separation - 2.0 * x))
        charging = 2.0 * cost.charging_energy_for_distance(
            bundle_radius + x)
        return movement + charging

    best_x = 0.0
    best_energy = energy(0.0)
    limit = bundle_separation / 2.0
    for step in range(1, steps + 1):
        x = limit * step / steps
        value = energy(x)
        if value < best_energy - 1e-12:
            best_energy = value
            best_x = x
    return best_x
