"""Charging-tour optimization — Algorithm 3 of the paper.

Start from the TSP tour over bundle SED centers and sweep the stops,
re-optimizing each anchor against its current tour neighbours with the
Theorem 4/5 search.  Each accepted move strictly decreases total energy,
so the sweep converges; we repeat sweeps until a full pass makes no move
(the paper runs a single ``i = 2..N-1`` pass — multiple passes only help,
and a ``max_sweeps=1`` knob reproduces the paper's exact loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..charging import CostParameters
from ..errors import PlanError
from ..geometry import Point
from .anchor_opt import DEFAULT_RADIUS_STEPS, optimize_anchor
from .plan import ChargingPlan, stop_for_sensors

try:  # tracing is optional: tour refinement works with repro.obs absent
    from ..obs.tracer import obs_span
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()


@dataclass(frozen=True)
class TourOptimizationReport:
    """Bookkeeping from one optimizer run.

    Attributes:
        sweeps: number of full passes performed.
        moves: number of anchors actually moved.
        initial_energy_j: plan objective before optimization.
        final_energy_j: plan objective after optimization.
    """

    sweeps: int
    moves: int
    initial_energy_j: float
    final_energy_j: float

    @property
    def improvement_j(self) -> float:
        """Return the achieved energy reduction (>= 0)."""
        return self.initial_energy_j - self.final_energy_j


def optimize_tour(plan: ChargingPlan, locations: Sequence[Point],
                  cost: CostParameters,
                  centers: Optional[Sequence[Point]] = None,
                  bundle_radius: Optional[float] = None,
                  max_sweeps: int = 8,
                  radius_steps: int = DEFAULT_RADIUS_STEPS
                  ) -> "tuple[ChargingPlan, TourOptimizationReport]":
    """Run Algorithm 3 on ``plan``.

    Args:
        plan: the TSP-based plan to refine (stop order is preserved; only
            stop positions move).
        locations: sensor locations.
        cost: mission cost constants.
        centers: each stop's bundle SED center (the displacement origin of
            Theorem 4).  Defaults to the stops' current positions, which
            is correct when the input plan anchors at SED centers.
        bundle_radius: the generation radius ``r``.  When given, each
            anchor's displacement is capped at ``r - r'_i`` (``r'_i`` =
            the bundle's own enclosing radius) so every member stays
            within the charging bundle radius of the anchor — Definition 3
            of the paper.  When None, the cap is the shorter adjacent
            tour leg (pure energy trade-off, no validity constraint).
        max_sweeps: maximum full passes over the tour.
        radius_steps: the Theorem 4 displacement discretization ``h``.

    Returns:
        ``(optimized_plan, report)``.  The optimized plan's total energy
        is never higher than the input's.

    Raises:
        PlanError: when ``centers`` length mismatches the stop count.
    """
    from .evaluate import plan_total_energy  # local: avoid import cycle

    stops = list(plan.stops)
    if centers is None:
        centers = [stop.position for stop in stops]
    centers = list(centers)
    if len(centers) != len(stops):
        raise PlanError(
            f"need one center per stop: {len(centers)} centers for "
            f"{len(stops)} stops")

    initial_energy = plan_total_energy(plan, locations, cost)
    if len(stops) < 2:
        report = TourOptimizationReport(0, 0, initial_energy,
                                        initial_energy)
        return plan, report

    positions: List[Point] = [stop.position for stop in stops]
    depot = plan.depot
    moves = 0
    sweeps = 0

    # Definition 3 cap: a displaced anchor must keep every bundle member
    # within the charging radius, so d <= r - r'_i per stop.
    caps: List[Optional[float]] = []
    for i, stop in enumerate(stops):
        if bundle_radius is None:
            caps.append(None)
            continue
        member_locations = [locations[s] for s in stop.sensors]
        own_radius = (max(centers[i].distance_to(p)
                          for p in member_locations)
                      if member_locations else 0.0)
        caps.append(max(0.0, bundle_radius - own_radius))

    with obs_span("bto.anchors", stops=len(stops)) as span:
        for _ in range(max_sweeps):
            sweeps += 1
            moved_this_sweep = 0
            for i, stop in enumerate(stops):
                prev_point = _neighbor(positions, depot, i, -1)
                next_point = _neighbor(positions, depot, i, +1)
                member_locations = [locations[s] for s in stop.sensors]
                result = optimize_anchor(
                    centers[i], prev_point, next_point, member_locations,
                    cost, current=positions[i],
                    max_displacement=caps[i],
                    radius_steps=radius_steps)
                if result.moved:
                    positions[i] = result.position
                    moved_this_sweep += 1
            moves += moved_this_sweep
            if moved_this_sweep == 0:
                break

        new_stops = [
            stop_for_sensors(positions[i], sorted(stop.sensors),
                             locations, cost)
            for i, stop in enumerate(stops)
        ]
        optimized = ChargingPlan(stops=tuple(new_stops), depot=depot,
                                 label=plan.label)
        final_energy = plan_total_energy(optimized, locations, cost)

        # The per-anchor moves each reduce the exact local objective, so
        # the global objective cannot increase; guard against
        # regressions anyway.
        if final_energy > initial_energy + 1e-6 * max(
                1.0, initial_energy):
            optimized = plan
            final_energy = initial_energy
        if span:
            span.set(sweeps=sweeps, moves=moves,
                     improvement_j=initial_energy - final_energy)

    report = TourOptimizationReport(sweeps, moves, initial_energy,
                                    final_energy)
    return optimized, report


def _neighbor(positions: Sequence[Point], depot: Optional[Point],
              index: int, direction: int) -> Point:
    """Return the tour neighbour of stop ``index`` in ``direction``.

    The tour is cyclic; when a depot exists it sits between the last and
    first stop, so the first stop's predecessor and the last stop's
    successor are the depot.
    """
    n = len(positions)
    target = index + direction
    if depot is not None:
        if target < 0 or target >= n:
            return depot
        return positions[target]
    return positions[target % n]
