"""Charging latency: when does each sensor actually get charged?

The paper minimizes *energy* and explicitly contrasts itself with Fu et
al. [3], who minimize *charging latency*.  This module computes the
latency side of any plan, so the two objectives can be compared on the
same tours:

* :func:`completion_times` — per-sensor charging completion instants;
* :func:`latency_metrics` — max/mean latency summaries;
* :func:`reorder_for_latency` — a minimum-latency (traveling repairman)
  reordering of a plan's stops: greedy construction on completion time
  plus swap local search.  Movement energy is unchanged only when the
  tour length is; the function reports both so callers see the
  energy/latency trade.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..errors import PlanError
from ..geometry import Point
from .plan import ChargingPlan


@dataclass(frozen=True)
class LatencyMetrics:
    """Summary of a plan's charging latencies.

    Attributes:
        max_s: the last sensor's completion time.
        mean_s: average completion time over sensors.
        mission_s: total mission duration (through the depot return).
    """

    max_s: float
    mean_s: float
    mission_s: float


def completion_times(plan: ChargingPlan, speed_m_per_s: float
                     ) -> Dict[int, float]:
    """Return each sensor's charging completion instant.

    A sensor is "charged" when its *assigned* stop's dwell ends (the
    conservative reading — incidental harvesting may finish some
    earlier, which the discrete-event simulator can report).

    Args:
        plan: the mission.
        speed_m_per_s: charger ground speed.

    Raises:
        PlanError: on a non-positive speed.
    """
    if speed_m_per_s <= 0.0:
        raise PlanError(f"invalid speed: {speed_m_per_s!r}")
    times: Dict[int, float] = {}
    clock = 0.0
    position = plan.depot if plan.depot is not None else (
        plan.stops[0].position if plan.stops else Point(0.0, 0.0))
    for stop in plan.stops:
        clock += position.distance_to(stop.position) / speed_m_per_s
        clock += stop.dwell_s
        position = stop.position
        for sensor_index in stop.sensors:
            times[sensor_index] = clock
    return times


def latency_metrics(plan: ChargingPlan,
                    speed_m_per_s: float) -> LatencyMetrics:
    """Summarize a plan's latencies (and the full mission time)."""
    times = completion_times(plan, speed_m_per_s)
    mission = plan.tour_length() / speed_m_per_s + plan.total_dwell_s()
    if not times:
        return LatencyMetrics(0.0, 0.0, mission)
    values = list(times.values())
    return LatencyMetrics(max_s=max(values),
                          mean_s=sum(values) / len(values),
                          mission_s=mission)


def _mean_completion(order: Sequence[int], plan: ChargingPlan,
                     speed: float) -> float:
    """Mean completion time of visiting ``plan.stops`` in ``order``."""
    clock = 0.0
    position = plan.depot if plan.depot is not None else \
        plan.stops[order[0]].position
    weighted = 0.0
    served = 0
    for stop_index in order:
        stop = plan.stops[stop_index]
        clock += position.distance_to(stop.position) / speed
        clock += stop.dwell_s
        position = stop.position
        weighted += clock * len(stop.sensors)
        served += len(stop.sensors)
    return weighted / served if served else 0.0


def reorder_for_latency(plan: ChargingPlan, speed_m_per_s: float,
                        swap_rounds: int = 3) -> ChargingPlan:
    """Reorder stops to (heuristically) minimize mean charging latency.

    The minimum-latency problem is NP-hard like TSP; we use the
    standard two-phase heuristic: greedy insertion by earliest
    completion gain (sensors-weighted), then adjacent/pairwise swap
    local search on the mean-completion objective.

    Args:
        plan: the mission to reorder (stop contents are untouched).
        speed_m_per_s: charger ground speed.
        swap_rounds: local-search sweeps.

    Returns:
        A plan with the same stops in a (possibly) different order.
    """
    if speed_m_per_s <= 0.0:
        raise PlanError(f"invalid speed: {speed_m_per_s!r}")
    n = len(plan.stops)
    if n <= 1:
        return plan

    # Greedy: repeatedly append the stop minimizing (arrival + dwell)
    # per sensor served — favours close, quick, well-populated stops
    # first, which is what minimizes the sensor-weighted mean.
    remaining = set(range(n))
    order: List[int] = []
    position = plan.depot if plan.depot is not None else \
        plan.stops[0].position
    clock = 0.0
    while remaining:
        def key(stop_index: int) -> float:
            stop = plan.stops[stop_index]
            arrive = clock + position.distance_to(
                stop.position) / speed_m_per_s
            finish = arrive + stop.dwell_s
            return finish / max(1, len(stop.sensors))

        best = min(remaining, key=key)
        stop = plan.stops[best]
        clock += position.distance_to(stop.position) / speed_m_per_s
        clock += stop.dwell_s
        position = stop.position
        order.append(best)
        remaining.remove(best)

    # Swap local search on the true objective.
    best_value = _mean_completion(order, plan, speed_m_per_s)
    for _ in range(max(0, swap_rounds)):
        improved = False
        for i in range(n - 1):
            for j in range(i + 1, n):
                order[i], order[j] = order[j], order[i]
                value = _mean_completion(order, plan, speed_m_per_s)
                if value < best_value - 1e-9:
                    best_value = value
                    improved = True
                else:
                    order[i], order[j] = order[j], order[i]
        if not improved:
            break

    stops = tuple(plan.stops[i] for i in order)
    return replace(plan, stops=stops,
                   label=f"{plan.label}+latency" if plan.label
                   else "latency")
