"""Charging plans: the output every planner produces.

A :class:`ChargingPlan` is an ordered list of :class:`Stop` objects plus
an optional depot.  The mobile charger starts at the depot, visits each
stop in order, dwells for the stop's charging time, and returns to the
depot.  Plans are the common currency between planners, the evaluator,
the tour optimizer and the discrete-event simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import FrozenSet, Iterator, List, Optional, Sequence

from ..charging import CostParameters
from ..errors import PlanError
from ..geometry import Point, polyline_length


@dataclass(frozen=True)
class Stop:
    """One charging stop.

    Attributes:
        position: where the charger parks and radiates.
        sensors: indices of sensors whose requirement this stop is
            responsible for (its "bundle").
        dwell_s: how long the charger radiates here, in seconds.
    """

    position: Point
    sensors: FrozenSet[int]
    dwell_s: float

    def __post_init__(self) -> None:
        if self.dwell_s < 0.0 or math.isnan(self.dwell_s):
            raise PlanError(f"invalid dwell time: {self.dwell_s!r}")

    def worst_distance(self, locations: Sequence[Point]) -> float:
        """Return the farthest assigned-sensor distance from this stop."""
        if not self.sensors:
            return 0.0
        return max(self.position.distance_to(locations[i])
                   for i in self.sensors)


@dataclass(frozen=True)
class ChargingPlan:
    """A complete mission: stop sequence plus optional depot round trip.

    Attributes:
        stops: charging stops in visiting order.
        depot: charger's start/end position; when None the tour is the
            closed cycle through the stops alone.
        label: the producing algorithm's name (for tables).
    """

    stops: tuple
    depot: Optional[Point] = None
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "stops", tuple(self.stops))
        seen: set = set()
        for stop in self.stops:
            overlap = seen & stop.sensors
            if overlap:
                raise PlanError(
                    f"sensors assigned to multiple stops: "
                    f"{sorted(overlap)[:5]}")
            seen |= stop.sensors

    def __len__(self) -> int:
        return len(self.stops)

    def __iter__(self) -> Iterator[Stop]:
        return iter(self.stops)

    @property
    def assigned_sensors(self) -> FrozenSet[int]:
        """Return all sensors some stop is responsible for."""
        assigned: set = set()
        for stop in self.stops:
            assigned |= stop.sensors
        return frozenset(assigned)

    def waypoints(self) -> List[Point]:
        """Return the movement waypoints, including the depot if set."""
        positions = [stop.position for stop in self.stops]
        if self.depot is not None:
            return [self.depot] + positions
        return positions

    def tour_length(self) -> float:
        """Return the closed-tour length (returning to the first point)."""
        return polyline_length(self.waypoints(), closed=True)

    def total_dwell_s(self) -> float:
        """Return the summed charging time over all stops."""
        return sum(stop.dwell_s for stop in self.stops)

    def with_label(self, label: str) -> "ChargingPlan":
        """Return a relabeled copy."""
        return replace(self, label=label)

    def with_stop(self, index: int, stop: Stop) -> "ChargingPlan":
        """Return a copy with stop ``index`` replaced."""
        if not 0 <= index < len(self.stops):
            raise PlanError(f"stop index out of range: {index}")
        stops = list(self.stops)
        stops[index] = stop
        return replace(self, stops=tuple(stops))

    def validate_complete(self, sensor_count: int) -> None:
        """Ensure every sensor ``0..sensor_count-1`` has a charging stop.

        Raises:
            PlanError: listing missing sensor indices.
        """
        assigned = self.assigned_sensors
        missing = [i for i in range(sensor_count) if i not in assigned]
        if missing:
            raise PlanError(
                f"{len(missing)} sensors unassigned: {missing[:10]}")


def stop_for_sensors(position: Point, sensor_indices: Sequence[int],
                     locations: Sequence[Point],
                     cost: CostParameters) -> Stop:
    """Build a stop whose dwell satisfies its farthest assigned sensor.

    The dwell time is ``delta / p_r(worst distance)`` — the minimum time
    that fully charges every assigned sensor, since received power is
    monotonically decreasing in distance.
    """
    sensors = frozenset(sensor_indices)
    distances = [position.distance_to(locations[i])
                 for i in sorted(sensors)]
    dwell = cost.dwell_time_for_distances(distances)
    if math.isinf(dwell):
        worst = max(distances)
        raise PlanError(
            f"stop at {position} cannot charge a sensor {worst:.2f} m "
            f"away: received power is zero at that distance")
    return Stop(position=position, sensors=sensors, dwell_s=dwell)
