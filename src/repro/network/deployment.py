"""Deployment generators.

The paper deploys sensors "randomly ... over a 2-D square field with side
length 1000 m" — that is :func:`uniform_deployment`.  The other generators
provide the density structure its motivation invokes (dense jungles, smart
dust clusters) and power additional experiments:

* :func:`clustered_deployment` — Gaussian clusters (hot spots), where
  bundle charging should shine most.
* :func:`grid_deployment` — a regular lattice (worst case for bundling
  when spacing exceeds 2r).
* :func:`poisson_deployment` — a homogeneous Poisson process, where the
  node *count* itself is random.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from .. import constants
from ..errors import DeploymentError
from ..geometry import Point
from .network import SensorNetwork
from .sensor import Sensor

try:  # tracing is optional: deployment works with repro.obs absent
    from ..obs.tracer import obs_span
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()


def _clamp(value: float, low: float, high: float) -> float:
    return min(high, max(low, value))


def _build_network(locations: Sequence[Point], field_side_m: float,
                   required_j: float,
                   base_station: Optional[Point]) -> SensorNetwork:
    sensors = [Sensor(index=i, location=loc, required_j=required_j)
               for i, loc in enumerate(locations)]
    return SensorNetwork(sensors, field_side_m, base_station=base_station)


def uniform_deployment(count: int, seed: int,
                       field_side_m: float = constants.FIELD_SIDE_M,
                       required_j: float = constants.DELTA_J,
                       base_station: Optional[Point] = None
                       ) -> SensorNetwork:
    """Deploy ``count`` sensors uniformly at random (the paper's setting).

    Args:
        count: number of sensors (paper sweeps 40..200).
        seed: RNG seed; identical seeds give identical deployments.
        field_side_m: square field side (paper: 1000 m).
        required_j: per-sensor charging requirement (paper: 2 J).
        base_station: depot; defaults to the field corner.
    """
    if count < 0:
        raise DeploymentError(f"negative sensor count: {count!r}")
    with obs_span("deploy", kind="uniform", n=count, seed=seed,
                  field_side_m=field_side_m):
        rng = random.Random(seed)
        locations = [Point(rng.uniform(0.0, field_side_m),
                           rng.uniform(0.0, field_side_m))
                     for _ in range(count)]
        return _build_network(locations, field_side_m, required_j,
                              base_station)


def clustered_deployment(count: int, seed: int, clusters: int = 5,
                         spread_m: float = 50.0,
                         field_side_m: float = constants.FIELD_SIDE_M,
                         required_j: float = constants.DELTA_J,
                         base_station: Optional[Point] = None
                         ) -> SensorNetwork:
    """Deploy sensors in Gaussian clusters around random centers.

    Args:
        count: total number of sensors.
        seed: RNG seed.
        clusters: number of cluster centers.
        spread_m: cluster standard deviation.
        field_side_m: square field side.
        required_j: per-sensor charging requirement.
        base_station: depot; defaults to the field corner.
    """
    if count < 0:
        raise DeploymentError(f"negative sensor count: {count!r}")
    if clusters <= 0:
        raise DeploymentError(f"need at least one cluster: {clusters!r}")
    if spread_m < 0.0:
        raise DeploymentError(f"negative spread: {spread_m!r}")
    rng = random.Random(seed)
    centers = [Point(rng.uniform(0.0, field_side_m),
                     rng.uniform(0.0, field_side_m))
               for _ in range(clusters)]
    locations: List[Point] = []
    for _ in range(count):
        center = rng.choice(centers)
        x = _clamp(rng.gauss(center.x, spread_m), 0.0, field_side_m)
        y = _clamp(rng.gauss(center.y, spread_m), 0.0, field_side_m)
        locations.append(Point(x, y))
    return _build_network(locations, field_side_m, required_j, base_station)


def grid_deployment(rows: int, cols: int,
                    field_side_m: float = constants.FIELD_SIDE_M,
                    jitter_m: float = 0.0, seed: int = 0,
                    required_j: float = constants.DELTA_J,
                    base_station: Optional[Point] = None) -> SensorNetwork:
    """Deploy sensors on a ``rows x cols`` lattice with optional jitter.

    Args:
        rows: lattice rows.
        cols: lattice columns.
        field_side_m: square field side.
        jitter_m: uniform perturbation half-width applied per coordinate.
        seed: RNG seed (only used when ``jitter_m > 0``).
        required_j: per-sensor charging requirement.
        base_station: depot; defaults to the field corner.
    """
    if rows <= 0 or cols <= 0:
        raise DeploymentError(
            f"lattice dimensions must be positive: {rows}x{cols}")
    if jitter_m < 0.0:
        raise DeploymentError(f"negative jitter: {jitter_m!r}")
    rng = random.Random(seed)
    x_step = field_side_m / (cols + 1)
    y_step = field_side_m / (rows + 1)
    locations: List[Point] = []
    for row in range(1, rows + 1):
        for col in range(1, cols + 1):
            x = col * x_step
            y = row * y_step
            if jitter_m > 0.0:
                x = _clamp(x + rng.uniform(-jitter_m, jitter_m),
                           0.0, field_side_m)
                y = _clamp(y + rng.uniform(-jitter_m, jitter_m),
                           0.0, field_side_m)
            locations.append(Point(x, y))
    return _build_network(locations, field_side_m, required_j, base_station)


def poisson_deployment(intensity_per_km2: float, seed: int,
                       field_side_m: float = constants.FIELD_SIDE_M,
                       required_j: float = constants.DELTA_J,
                       base_station: Optional[Point] = None
                       ) -> SensorNetwork:
    """Deploy a homogeneous Poisson point process.

    Args:
        intensity_per_km2: expected sensors per square kilometer.
        seed: RNG seed.
        field_side_m: square field side.
        required_j: per-sensor charging requirement.
        base_station: depot; defaults to the field corner.
    """
    if intensity_per_km2 < 0.0:
        raise DeploymentError(
            f"negative intensity: {intensity_per_km2!r}")
    rng = random.Random(seed)
    area_km2 = (field_side_m / 1000.0) ** 2
    expected = intensity_per_km2 * area_km2
    count = _poisson_sample(rng, expected)
    locations = [Point(rng.uniform(0.0, field_side_m),
                       rng.uniform(0.0, field_side_m))
                 for _ in range(count)]
    return _build_network(locations, field_side_m, required_j, base_station)


def _poisson_sample(rng: random.Random, mean: float) -> int:
    """Draw one Poisson variate (Knuth for small means, normal approx)."""
    if mean <= 0.0:
        return 0
    if mean > 700.0:
        # Normal approximation avoids exp underflow for huge intensities.
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def testbed_deployment(required_j: float = constants.TESTBED_DELTA_J
                       ) -> SensorNetwork:
    """Return the paper's six-sensor office testbed (Section VII)."""
    locations = [Point(x, y) for x, y in constants.TESTBED_SENSORS]
    return _build_network(locations, constants.TESTBED_SIDE_M,
                          required_j, base_station=Point(0.0, 0.0))
