"""The sensor network container.

:class:`SensorNetwork` owns the sensors, the field geometry and the base
station, and provides the spatial queries every algorithm layer shares.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from ..errors import DeploymentError
from ..geometry import GridIndex, Point, convex_hull, grid_cell_size


class SensorNetwork:
    """A set of sensors in a rectangular field, plus a base station.

    The base station (depot) is where the mobile charger starts and ends
    its tour; the paper deploys the charger "from the base-station".
    """

    def __init__(self, sensors: Sequence["Sensor"], field_side_m: float,
                 base_station: Optional[Point] = None) -> None:
        """Create a network.

        Args:
            sensors: sensor nodes; indices must be 0..n-1 in order.
            field_side_m: square field side length (meters).
            base_station: depot location; defaults to the field corner
                (0, 0).
        """
        from .sensor import Sensor  # local import avoids cycle at typing

        if field_side_m <= 0.0 or not math.isfinite(field_side_m):
            raise DeploymentError(f"invalid field side: {field_side_m!r}")
        self._sensors: List[Sensor] = list(sensors)
        for expected, sensor in enumerate(self._sensors):
            if sensor.index != expected:
                raise DeploymentError(
                    f"sensor indices must be consecutive from 0; found "
                    f"{sensor.index} at position {expected}")
        self.field_side_m = field_side_m
        self.base_station = base_station or Point(0.0, 0.0)
        self._index_cache: Optional[Tuple[float, GridIndex]] = None

    # --- container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._sensors)

    def __iter__(self) -> Iterator["Sensor"]:
        return iter(self._sensors)

    def __getitem__(self, index: int) -> "Sensor":
        return self._sensors[index]

    @property
    def sensors(self) -> List["Sensor"]:
        """Return the sensor list (by reference)."""
        return self._sensors

    @property
    def locations(self) -> List[Point]:
        """Return all sensor locations, in index order."""
        return [sensor.location for sensor in self._sensors]

    # --- spatial queries -------------------------------------------------

    def spatial_index(self, cell_size: float) -> GridIndex:
        """Return a grid index over sensor locations (cached per size)."""
        if self._index_cache is not None:
            cached_size, cached_index = self._index_cache
            if cached_size == cell_size:
                return cached_index
        index = GridIndex(self.locations, cell_size)
        self._index_cache = (cell_size, index)
        return index

    def neighbors_within(self, sensor_index: int,
                         radius: float) -> List[int]:
        """Return indices of sensors within ``radius`` of a sensor.

        The queried sensor itself is included (it is within radius 0 of
        itself), matching Algorithm 2's "find all its neighbors" step
        where each node seeds its own candidate bundles.
        """
        index = self.spatial_index(grid_cell_size(radius))
        center = self._sensors[sensor_index].location
        return index.neighbors_within(center, radius)

    def density_per_km2(self) -> float:
        """Return sensors per square kilometer."""
        area_km2 = (self.field_side_m / 1000.0) ** 2
        if area_km2 == 0.0:
            return 0.0
        return len(self._sensors) / area_km2

    def hull(self) -> List[Point]:
        """Return the convex hull of the deployment."""
        return convex_hull(self.locations)

    # --- mission state -----------------------------------------------------

    def reset_energy(self) -> None:
        """Clear all sensors' harvested energy."""
        for sensor in self._sensors:
            sensor.reset()

    def unsatisfied(self) -> List["Sensor"]:
        """Return sensors still below their requirement."""
        return [sensor for sensor in self._sensors
                if not sensor.is_satisfied]

    def all_satisfied(self) -> bool:
        """Return True when every sensor met its requirement."""
        return not self.unsatisfied()
