"""Seed discipline.

Every stochastic component in the library takes an explicit seed or an
explicit ``random.Random``; nothing touches the global RNG.  This module
provides the helpers that turn "(experiment, run)" identifiers into
independent, reproducible streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def make_rng(seed: int) -> random.Random:
    """Return an isolated ``random.Random`` for ``seed``."""
    return random.Random(seed)


def derive_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary labeled parts.

    Uses SHA-256 over the repr of the parts, so ``derive_seed("fig12", 3)``
    is stable across processes and Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def seed_sequence(base_seed: int, count: int) -> Iterator[int]:
    """Yield ``count`` independent derived seeds for repeated runs."""
    for run in range(count):
        yield derive_seed(base_seed, run)
