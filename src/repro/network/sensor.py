"""Sensor nodes.

A sensor is a location plus a residual-energy state.  The planning
algorithms only need the location; the discrete-event simulator also
tracks harvested energy against the per-sensor requirement ``delta``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ModelError
from ..geometry import Point


@dataclass
class Sensor:
    """One wireless rechargeable sensor node.

    Attributes:
        index: position of this sensor in its network (stable identifier).
        location: deployment coordinates.
        required_j: energy this sensor must receive during the mission.
        harvested_j: energy received so far (mutated by the simulator).
    """

    index: int
    location: Point
    required_j: float = 2.0
    harvested_j: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"negative sensor index: {self.index!r}")
        if self.required_j < 0.0 or not math.isfinite(self.required_j):
            raise ModelError(
                f"invalid energy requirement: {self.required_j!r}")

    @property
    def is_satisfied(self) -> bool:
        """Return True once harvested energy meets the requirement."""
        return self.harvested_j >= self.required_j - 1e-12

    @property
    def deficit_j(self) -> float:
        """Return the remaining energy needed (never negative)."""
        return max(0.0, self.required_j - self.harvested_j)

    def harvest(self, energy_j: float) -> None:
        """Credit ``energy_j`` joules of received energy.

        Raises:
            ModelError: on a negative or non-finite credit.
        """
        if energy_j < 0.0 or not math.isfinite(energy_j):
            raise ModelError(f"invalid harvest amount: {energy_j!r}")
        self.harvested_j += energy_j

    def reset(self) -> None:
        """Clear harvested energy (reuse the sensor across runs)."""
        self.harvested_j = 0.0
