"""Sensor-network model: nodes, the field, and deployment generators."""

from .deployment import (clustered_deployment, grid_deployment,
                         poisson_deployment, testbed_deployment,
                         uniform_deployment)
from .network import SensorNetwork
from .rng import derive_seed, make_rng, seed_sequence
from .sensor import Sensor

__all__ = [
    "Sensor",
    "SensorNetwork",
    "clustered_deployment",
    "derive_seed",
    "grid_deployment",
    "make_rng",
    "poisson_deployment",
    "seed_sequence",
    "testbed_deployment",
    "uniform_deployment",
]
