"""extConcur — interference-limited concurrent charging (beyond the
paper).

If a fleet could park one charger at every BC stop and radiate
simultaneously, the charging wall-clock would collapse — except that
concurrent transmissions interfere (the paper's refs [14, 38]).  This
experiment sweeps the interference distance and reports the
conflict-free concurrency schedule's dwell speedup and round count,
with and without a fleet-size cap.
"""

from __future__ import annotations

from typing import List

from ..fleet import concurrent_schedule
from ..network import derive_seed, uniform_deployment
from ..planners import BundleChargingPlanner
from .aggregate import mean_std
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "extConcur"

#: Interference distances swept (meters).
INTERFERENCE_DISTANCES = (25.0, 50.0, 100.0, 200.0, 400.0)

#: Fleet-size cap for the capped column.
FLEET_CAP = 8


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate the concurrency table."""
    radius = config.default_radius
    cost = config.cost()
    table = ResultTable(
        f"extConcur: concurrent-dwell speedup vs interference distance "
        f"({config.node_count} nodes, radius {radius:.0f} m)",
        ["interference_m", "rounds", "speedup",
         f"speedup_cap{FLEET_CAP}"])

    per_distance = {d: {"rounds": [], "speedup": [], "capped": []}
                    for d in INTERFERENCE_DISTANCES}
    for run_index in range(config.runs):
        seed = derive_seed(config.base_seed, EXPERIMENT_ID, run_index)
        network = uniform_deployment(config.node_count, seed,
                                     field_side_m=config.field_side_m)
        plan = BundleChargingPlanner(
            radius, tsp_strategy=config.tsp_strategy).plan(network,
                                                           cost)
        for distance in INTERFERENCE_DISTANCES:
            free = concurrent_schedule(plan, distance)
            capped = concurrent_schedule(plan, distance,
                                         max_concurrent=FLEET_CAP)
            per_distance[distance]["rounds"].append(
                float(free.rounds_used))
            per_distance[distance]["speedup"].append(free.speedup)
            per_distance[distance]["capped"].append(capped.speedup)

    for distance in INTERFERENCE_DISTANCES:
        data = per_distance[distance]
        table.add_row(
            interference_m=distance,
            rounds=mean_std(data["rounds"]),
            speedup=mean_std(data["speedup"]),
            **{f"speedup_cap{FLEET_CAP}": mean_std(data["capped"])},
        )
    return [table]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
