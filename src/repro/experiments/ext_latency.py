"""extLatency — the energy/latency trade the paper discusses vs [3].

The paper minimizes energy; Fu et al. [3] minimize charging latency on
the same physics.  This experiment scores every planner on *both*
objectives, and measures how much the minimum-latency reordering
(:func:`repro.tour.reorder_for_latency`) buys each plan — latency falls
while the energy changes by the reordering's tour-length delta.
"""

from __future__ import annotations

from typing import List

from ..network import derive_seed, uniform_deployment
from ..planners import PAPER_ALGORITHMS, make_planner
from ..tour import evaluate_plan, latency_metrics, reorder_for_latency
from .aggregate import mean_std
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "extLatency"

#: Charger ground speed for the latency accounting (m/s).
SPEED_M_PER_S = 1.0


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate the energy/latency scoreboard."""
    radius = config.default_radius
    cost = config.cost()
    table = ResultTable(
        f"extLatency: energy vs mean charging latency "
        f"({config.node_count} nodes, radius {radius:.0f} m, "
        f"{SPEED_M_PER_S:.0f} m/s)",
        ["planner", "energy_kj", "mean_latency_h", "max_latency_h",
         "latency_gain_pct"])

    for name in PAPER_ALGORITHMS:
        energy = []
        mean_latency = []
        max_latency = []
        gains = []
        for run_index in range(config.runs):
            seed = derive_seed(config.base_seed, EXPERIMENT_ID, name,
                               run_index)
            network = uniform_deployment(
                config.node_count, seed,
                field_side_m=config.field_side_m)
            plan = make_planner(
                name, radius,
                tsp_strategy=config.tsp_strategy).plan(network, cost)
            metrics = evaluate_plan(plan, network.locations, cost)
            latencies = latency_metrics(plan, SPEED_M_PER_S)
            reordered = reorder_for_latency(plan, SPEED_M_PER_S)
            after = latency_metrics(reordered, SPEED_M_PER_S)
            energy.append(metrics.total_j / 1000.0)
            mean_latency.append(latencies.mean_s / 3600.0)
            max_latency.append(latencies.max_s / 3600.0)
            if latencies.mean_s > 0.0:
                gains.append(100.0 * (1.0 - after.mean_s
                                      / latencies.mean_s))
            else:
                gains.append(0.0)
        table.add_row(
            planner=name,
            energy_kj=mean_std(energy),
            mean_latency_h=mean_std(mean_latency),
            max_latency_h=mean_std(max_latency),
            latency_gain_pct=mean_std(gains),
        )
    return [table]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
