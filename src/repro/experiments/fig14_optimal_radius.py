"""Fig. 14 — the optimal bundle radius in a dense network (200 nodes).

Sweep the radius for BC and BC-OPT at the paper's densest setting:

* (a) the moving/charging decomposition that creates the optimum;
* (b) total energy — BC has an interior-optimal radius, while BC-OPT
  keeps improving (its tour optimizer converts overly large radii back
  into energy savings; the paper reports BC-OPT up to ~2x better than BC
  at the largest radii).

The Section IV-C radius search (:func:`repro.bundling.find_optimal_radius`)
is also exercised here and its pick is reported in the table title.
"""

from __future__ import annotations

from typing import List

from ..bundling import sweep_radii
from .config import ExperimentConfig
from .runner import kilo, run_averaged, shared_deployments
from .tables import ResultTable

EXPERIMENT_ID = "fig14"

#: The paper's dense setting.
NODE_COUNT = 200


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate both panels of Fig. 14."""
    node_count = min(NODE_COUNT, max(config.node_counts))
    deployments = (shared_deployments(config, node_count, EXPERIMENT_ID)
                   if config.shared_deployment else None)
    aggregated_by_radius = {}
    for radius in config.radii:
        aggregated_by_radius[radius] = run_averaged(
            config, node_count, radius, ["BC", "BC-OPT"], EXPERIMENT_ID,
            deployments=deployments)

    table_a = ResultTable(
        f"Fig. 14(a): BC energy decomposition vs radius "
        f"({node_count} nodes)",
        ["radius_m", "bundles", "movement_kj", "charging_kj"])
    table_b = ResultTable(
        f"Fig. 14(b): total energy (kJ) vs radius ({node_count} nodes)",
        ["radius_m", "BC", "BC-OPT", "bcopt_gain_pct"])

    for radius in config.radii:
        bc = aggregated_by_radius[radius]["BC"]
        opt = aggregated_by_radius[radius]["BC-OPT"]
        table_a.add_row(
            radius_m=radius,
            bundles=bc["stops"],
            movement_kj=kilo(bc["movement_j"]),
            charging_kj=kilo(bc["charging_j"]),
        )
        gain = 100.0 * (1.0 - opt["total_j"].mean / bc["total_j"].mean)
        table_b.add_row(radius_m=radius, **{
            "BC": kilo(bc["total_j"]),
            "BC-OPT": kilo(opt["total_j"]),
            "bcopt_gain_pct": gain,
        })

    # Section IV-C: pick the best radius from the sweep we just ran.
    best = sweep_radii(
        lambda r: aggregated_by_radius[r]["BC"]["total_j"].mean,
        list(config.radii))
    table_b.title += (f" — BC-optimal radius from sweep: "
                      f"{best.best_radius:.0f} m")
    return [table_a, table_b]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
