"""Fig. 16 — the (simulated) Powercast testbed, Section VII.

Six sensors in a 5 m x 5 m office; the robot car runs SC, BC and BC-OPT
at a sweep of bundle radii.  Expected shapes from the paper:

* with a tiny radius every bundle is a singleton, so BC == BC-OPT == SC;
* around r = 1.2 m, BC saves ~8 % and BC-OPT ~13 % of SC's total energy;
* BC-OPT's tour is >= 20 % shorter than SC's.
"""

from __future__ import annotations

from typing import List

from ..planners import (BundleChargingOptPlanner, BundleChargingPlanner,
                        SingleChargingPlanner)
from ..testbed import paper_testbed, run_testbed
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "fig16"

#: Bundle radii swept on the testbed (meters).  1.2 m is the paper's
#: highlighted point.
TESTBED_RADII = (0.2, 0.6, 1.0, 1.2, 1.6, 2.0)


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate both panels of Fig. 16."""
    scenario = paper_testbed()
    # The 6-city instance is solved exactly — no heuristic noise.
    strategy = "exact"

    sc_run = run_testbed(
        SingleChargingPlanner(tsp_strategy=strategy), scenario)

    table_a = ResultTable(
        f"Fig. 16(a): testbed total energy (J) vs bundle radius "
        f"(SC = {sc_run.total_energy_j:.1f} J)",
        ["radius_m", "SC", "BC", "BC-OPT", "bc_saving_pct",
         "bcopt_saving_pct"])
    table_b = ResultTable(
        f"Fig. 16(b): testbed tour length (m) vs bundle radius "
        f"(SC = {sc_run.tour_length_m:.2f} m)",
        ["radius_m", "SC", "BC", "BC-OPT"])

    for radius in TESTBED_RADII:
        bc_run = run_testbed(
            BundleChargingPlanner(radius, tsp_strategy=strategy),
            scenario)
        opt_run = run_testbed(
            BundleChargingOptPlanner(radius, tsp_strategy=strategy),
            scenario)
        bc_saving = 100.0 * (1.0 - bc_run.total_energy_j
                             / sc_run.total_energy_j)
        opt_saving = 100.0 * (1.0 - opt_run.total_energy_j
                              / sc_run.total_energy_j)
        table_a.add_row(
            radius_m=radius,
            SC=sc_run.total_energy_j,
            BC=bc_run.total_energy_j,
            **{"BC-OPT": opt_run.total_energy_j,
               "bc_saving_pct": bc_saving,
               "bcopt_saving_pct": opt_saving})
        table_b.add_row(
            radius_m=radius,
            SC=sc_run.tour_length_m,
            BC=bc_run.tour_length_m,
            **{"BC-OPT": opt_run.tour_length_m})
    return [table_a, table_b]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
