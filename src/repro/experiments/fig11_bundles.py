"""Fig. 11 — bundle generation comparison: grid vs greedy vs optimal.

* (a) bundle count vs radius at a fixed (small) node count;
* (b) bundle count vs node count at a fixed radius.

The exact optimum is branch-and-bound set cover; on instances where the
search exceeds its node budget the cell is reported as NaN (the paper
likewise only shows the optimal line where exhaustive search is viable).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..bundling import greedy_bundles, grid_bundles, optimal_bundles
from ..errors import BundlingError
from ..network import derive_seed, uniform_deployment
from .aggregate import CellStats, mean_std
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "fig11"

#: Node count for the radius sweep (small so the exact line is feasible).
RADIUS_SWEEP_NODES = 40

#: Radius for the node-count sweep.
NODE_SWEEP_RADIUS = 40.0

#: Branch-and-bound node budget per exact solve.
EXACT_BUDGET = 400_000


def _optimal_count(network, radius: float) -> Optional[int]:
    """Exact bundle count, or None when the search budget is exceeded."""
    try:
        return len(optimal_bundles(network, radius,
                                   node_budget=EXACT_BUDGET))
    except BundlingError:
        return None


def _stats(values: List[Optional[float]]) -> CellStats:
    """Aggregate, mapping any None (budget exceeded) to a NaN cell."""
    concrete = [v for v in values if v is not None]
    if not concrete or len(concrete) < len(values):
        return CellStats(math.nan, 0.0, len(concrete))
    return mean_std(concrete)


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate both panels of Fig. 11."""
    table_a = ResultTable(
        f"Fig. 11(a): bundle count vs radius ({RADIUS_SWEEP_NODES} "
        f"nodes) — grid vs greedy vs optimal",
        ["radius_m", "grid", "greedy", "optimal"])
    for radius in config.radii:
        grid_counts: List[float] = []
        greedy_counts: List[float] = []
        optimal_counts: List[Optional[float]] = []
        for run_index in range(config.runs):
            seed = derive_seed(config.base_seed, EXPERIMENT_ID, "radius",
                               radius, run_index)
            network = uniform_deployment(
                RADIUS_SWEEP_NODES, seed,
                field_side_m=config.field_side_m)
            grid_counts.append(len(grid_bundles(network, radius)))
            greedy_counts.append(len(greedy_bundles(network, radius)))
            optimal_counts.append(_optimal_count(network, radius))
        table_a.add_row(radius_m=radius, grid=mean_std(grid_counts),
                        greedy=mean_std(greedy_counts),
                        optimal=_stats(optimal_counts))

    table_b = ResultTable(
        f"Fig. 11(b): bundle count vs node count (radius "
        f"{NODE_SWEEP_RADIUS:.0f} m)",
        ["nodes", "grid", "greedy", "optimal"])
    for node_count in config.node_counts:
        grid_counts = []
        greedy_counts = []
        optimal_counts = []
        for run_index in range(config.runs):
            seed = derive_seed(config.base_seed, EXPERIMENT_ID, "nodes",
                               node_count, run_index)
            network = uniform_deployment(
                node_count, seed, field_side_m=config.field_side_m)
            grid_counts.append(len(grid_bundles(network,
                                                NODE_SWEEP_RADIUS)))
            greedy_counts.append(len(greedy_bundles(network,
                                                    NODE_SWEEP_RADIUS)))
            optimal_counts.append(
                _optimal_count(network, NODE_SWEEP_RADIUS))
        table_b.add_row(nodes=node_count, grid=mean_std(grid_counts),
                        greedy=mean_std(greedy_counts),
                        optimal=_stats(optimal_counts))
    return [table_a, table_b]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
