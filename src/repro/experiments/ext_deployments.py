"""extDeploy — bundle charging across deployment structures (beyond the
paper).

The paper's motivation is *dense* deployments (jungles, smart dust);
its simulations only use uniform fields.  This experiment quantifies
how much more bundle charging pays when the density claim actually
holds: uniform vs Gaussian-clustered vs jittered-lattice deployments at
equal sensor counts.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from ..network import (SensorNetwork, clustered_deployment, derive_seed,
                       grid_deployment, uniform_deployment)
from ..planners import make_planner
from ..tour import evaluate_plan
from .aggregate import mean_std
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "extDeploy"

DeploymentFactory = Callable[[int, int, float], SensorNetwork]


def _uniform(count: int, seed: int, side: float) -> SensorNetwork:
    return uniform_deployment(count, seed, field_side_m=side)


def _clustered(count: int, seed: int, side: float) -> SensorNetwork:
    return clustered_deployment(count, seed, clusters=6, spread_m=40.0,
                                field_side_m=side)


def _lattice(count: int, seed: int, side: float) -> SensorNetwork:
    edge = max(2, round(math.sqrt(count)))
    return grid_deployment(rows=edge, cols=edge, field_side_m=side,
                           jitter_m=20.0, seed=seed)


DEPLOYMENTS: Dict[str, DeploymentFactory] = {
    "uniform": _uniform,
    "clustered": _clustered,
    "lattice": _lattice,
}


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate the deployment-structure table."""
    radius = config.default_radius
    cost = config.cost()
    table = ResultTable(
        f"extDeploy: BC-OPT savings over SC by deployment structure "
        f"(radius {radius:.0f} m)",
        ["deployment", "nodes", "sc_kj", "bcopt_kj", "saving_pct",
         "bundles"])

    for label, factory in DEPLOYMENTS.items():
        sc_totals = []
        opt_totals = []
        bundle_counts = []
        nodes_used = config.node_count
        for run_index in range(config.runs):
            seed = derive_seed(config.base_seed, EXPERIMENT_ID, label,
                               run_index)
            network = factory(config.node_count, seed,
                              config.field_side_m)
            nodes_used = len(network)
            sc_plan = make_planner(
                "SC", radius,
                tsp_strategy=config.tsp_strategy).plan(network, cost)
            opt_plan = make_planner(
                "BC-OPT", radius,
                tsp_strategy=config.tsp_strategy).plan(network, cost)
            sc_totals.append(evaluate_plan(
                sc_plan, network.locations, cost).total_j / 1000.0)
            opt_totals.append(evaluate_plan(
                opt_plan, network.locations, cost).total_j / 1000.0)
            bundle_counts.append(float(len(opt_plan)))
        sc_cell = mean_std(sc_totals)
        opt_cell = mean_std(opt_totals)
        saving = 100.0 * (1.0 - opt_cell.mean / sc_cell.mean)
        table.add_row(deployment=label, nodes=nodes_used,
                      sc_kj=sc_cell, bcopt_kj=opt_cell,
                      saving_pct=saving,
                      bundles=mean_std(bundle_counts))
    return [table]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
