"""extDwell — the Eq. 3 accounting ablation (beyond the paper).

Runs BC under both dwell accountings across a wide radius ladder:

* ``simultaneous`` (the paper's Fig. 1 rule, our default) — one-to-many
  dwell sized by the farthest bundle member;
* ``sequential`` — dwell is the sum of per-member charge times.

The sequential column reproduces the interior optimal radius of the
paper's Figs. 6(b)/14(b); the simultaneous column is monotone over the
same range.  See EXPERIMENTS.md, "Accounting note".
"""

from __future__ import annotations

from typing import List

from ..charging import CostParameters, FriisChargingModel
from ..network import derive_seed, uniform_deployment
from ..planners import BundleChargingPlanner
from ..tour import evaluate_plan
from .aggregate import mean_std
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "extDwell"

#: Wide ladder so both the paper's range and the far side are visible.
RADII = (2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0)


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate the accounting-ablation table."""
    policies = {
        "simultaneous": CostParameters(model=FriisChargingModel()),
        "sequential": CostParameters(model=FriisChargingModel(),
                                     dwell_policy="sequential"),
    }
    table = ResultTable(
        "extDwell: BC total energy (kJ) under both Eq. 3 accountings",
        ["radius_m", "simultaneous", "sequential"])
    for radius in RADII:
        cells = {}
        for label, cost in policies.items():
            totals = []
            for run_index in range(config.runs):
                seed = derive_seed(config.base_seed, EXPERIMENT_ID,
                                   radius, run_index)
                network = uniform_deployment(
                    config.node_count, seed,
                    field_side_m=config.field_side_m)
                plan = BundleChargingPlanner(
                    radius,
                    tsp_strategy=config.tsp_strategy).plan(network, cost)
                metrics = evaluate_plan(plan, network.locations, cost)
                totals.append(metrics.total_j / 1000.0)
            cells[label] = mean_std(totals)
        table.add_row(radius_m=radius, **cells)
    return [table]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
