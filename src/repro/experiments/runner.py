"""Multi-seed experiment execution.

The runner owns the loop every figure shares: deploy a seeded network,
run each algorithm, evaluate the plan, average over seeds.  Figures then
differ only in which parameter they sweep and which metrics they tabulate.

With ``config.jobs > 1`` the per-seed loop fans out over a
``ProcessPoolExecutor``.  Each run's seed is derived independently from
``(base_seed, label, node_count, radius, run_index)`` — no shared RNG
state — and results are merged back in run-index order, so the
aggregated output is identical at any job count.

When the config enables stage memoization (``use_cache`` /
``cache_dir``), the runner activates a :class:`repro.cache.StageCache`
around the per-seed loop: the seeded deployment and the full per-seed
metric row become content-addressed cache stages, and the planner /
bundling layers memoize their own stages under the same activation.
Hits are bit-identical to recomputation, so aggregates are unchanged at
any job count and any cache temperature.  With
``config.shared_deployment`` a radius sweep additionally derives its
deployment seeds *without* the radius and can precompute one deployment
per (node_count, run) for every radius (:func:`shared_deployments`).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .. import constants
from ..charging import CostParameters
from ..errors import ExperimentError
from ..network import SensorNetwork, derive_seed, uniform_deployment
from ..perf.counters import PERF
from ..planners import make_planner
from ..tour import evaluate_plan
from .aggregate import CellStats, aggregate_rows
from .config import ExperimentConfig

try:  # tracing is optional: the runner works with repro.obs absent
    from ..obs.tracer import TRACER, obs_span

    def _tracing_enabled() -> bool:
        return TRACER.enabled

    def _absorb_events(events) -> None:
        TRACER.absorb_events(events)
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()

    def _tracing_enabled() -> bool:
        return False

    def _absorb_events(events) -> None:
        return None

try:  # memoization is optional: the runner works with repro.cache absent
    from ..cache import activation_for_config, stage_memo
except ImportError:  # pragma: no cover - repro.cache stripped/blocked
    from contextlib import nullcontext as _cache_nullcontext

    def activation_for_config(config):  # type: ignore[misc]
        return _cache_nullcontext()

    def stage_memo(stage, params_fn, compute):  # type: ignore[misc]
        return compute()

MetricRow = Dict[str, float]
AggregatedRun = Dict[str, Dict[str, CellStats]]


def run_algorithms_once(network: SensorNetwork, cost: CostParameters,
                        radius: float, algorithms: Sequence[str],
                        tsp_strategy: str = "nn+2opt",
                        seed: int = 0) -> Dict[str, MetricRow]:
    """Plan and evaluate each algorithm once on one network.

    Returns:
        ``{algorithm: metric_row}`` with the metric keys of
        :meth:`repro.tour.PlanMetrics.as_row`.
    """
    results: Dict[str, MetricRow] = {}
    for name in algorithms:
        with obs_span("plan", algorithm=name, radius_m=radius) as span:
            planner = make_planner(name, radius,
                                   tsp_strategy=tsp_strategy, seed=seed)
            plan = planner.plan(network, cost)
            metrics = evaluate_plan(plan, network.locations, cost)
            results[name] = metrics.as_row()
            if span:
                span.set(**results[name])
    return results


def cell_seed(config: ExperimentConfig, experiment_label: str,
              node_count: int, radius: float, run_index: int) -> int:
    """Derive the seed of one (cell, run) pair.

    The paper-default derivation includes the radius, so every sweep
    cell draws an independent deployment.  In the opt-in
    ``shared_deployment`` mode the radius is replaced by a fixed tag:
    all radii of a sweep then share one deployment (and one planner
    seed) per (node_count, run) — the common-random-numbers setup the
    cache exploits across a radius sweep.
    """
    if config.shared_deployment:
        return derive_seed(config.base_seed, experiment_label,
                           node_count, "shared", run_index)
    return derive_seed(config.base_seed, experiment_label, node_count,
                       radius, run_index)


def shared_deployments(config: ExperimentConfig, node_count: int,
                       experiment_label: str
                       ) -> "tuple[SensorNetwork, ...]":
    """Precompute one deployment per run for a shared-mode sweep.

    Only meaningful with ``config.shared_deployment``: the returned
    networks match what every radius cell of the sweep would deploy, so
    drivers hand them to :func:`run_averaged` once and workers receive
    the read-only payload instead of regenerating it per cell.
    """
    if not config.shared_deployment:
        raise ExperimentError("shared_deployments() requires "
                              "config.shared_deployment=True")
    with activation_for_config(config):
        return tuple(
            _cached_deployment(
                config, node_count,
                cell_seed(config, experiment_label, node_count, 0.0,
                          run_index))
            for run_index in range(config.runs))


def deployment_stage(node_count: int, seed: int, field_side_m: float,
                     required_j: float = constants.DELTA_J
                     ) -> SensorNetwork:
    """Deploy (or recall) a seeded uniform network — the ``deployment``
    cache stage.

    Shared between the experiment runner and the planning service
    (:mod:`repro.service.executor`): both derive the stage key from the
    same parameter vocabulary, so a service request for a seeded
    deployment is a cache hit against a sweep that already deployed it
    (and vice versa).
    """
    return stage_memo(
        "deployment",
        lambda: {"kind": "uniform", "n": node_count, "seed": seed,
                 "field_side_m": field_side_m,
                 "required_j": required_j},
        lambda: uniform_deployment(node_count, seed,
                                   field_side_m=field_side_m,
                                   required_j=required_j))


def _cached_deployment(config: ExperimentConfig, node_count: int,
                       seed: int) -> SensorNetwork:
    """Deploy (or recall) the seeded network — the ``deployment`` stage."""
    return deployment_stage(node_count, seed, config.field_side_m)


def run_averaged(config: ExperimentConfig, node_count: int, radius: float,
                 algorithms: Sequence[str], experiment_label: str,
                 deployments: Optional[Sequence[SensorNetwork]] = None
                 ) -> AggregatedRun:
    """Run all algorithms over ``config.runs`` seeded deployments.

    Args:
        config: shared knobs (runs, field, TSP strategy, base seed).
        node_count: sensors per deployment.
        radius: bundle/range radius handed to every planner.
        algorithms: planner names to compare.
        experiment_label: namespaces the seed stream so different figures
            draw independent deployments.
        deployments: optional prebuilt per-run networks (shared-mode
            sweeps); must be ``config.runs`` long and match the cell
            seeds.

    Returns:
        ``{algorithm: {metric: CellStats}}``.
    """
    jobs = min(config.jobs, config.runs)
    networks: Sequence[Optional[SensorNetwork]] = (
        deployments if deployments is not None
        else [None] * config.runs)
    with obs_span("run", experiment=experiment_label,
                  node_count=node_count, radius=radius,
                  runs=config.runs, jobs=jobs) as span:
        if span:
            span.set(seeds=[
                cell_seed(config, experiment_label, node_count, radius,
                          run_index)
                for run_index in range(config.runs)])
        if jobs > 1:
            rows_in_order = _run_seeds_parallel(
                config, node_count, radius, algorithms,
                experiment_label, jobs, networks)
        else:
            with activation_for_config(config):
                rows_in_order = [
                    _run_one_seed(config, node_count, radius,
                                  tuple(algorithms), experiment_label,
                                  run_index, networks[run_index])
                    for run_index in range(config.runs)
                ]
        per_algorithm: Dict[str, list] = {name: [] for name in algorithms}
        for once in rows_in_order:
            for name, row in once.items():
                per_algorithm[name].append(row)
        return {name: aggregate_rows(rows)
                for name, rows in per_algorithm.items()}


def _run_one_seed(config: ExperimentConfig, node_count: int, radius: float,
                  algorithms: Sequence[str], experiment_label: str,
                  run_index: int,
                  network: Optional[SensorNetwork] = None
                  ) -> Dict[str, MetricRow]:
    """One seeded deployment + plan + evaluation (the fan-out unit).

    Top-level so it pickles for :class:`ProcessPoolExecutor`; everything
    it needs travels in its arguments (``ExperimentConfig`` is a frozen
    dataclass of primitives).  Under an active cache the full metric row
    is the ``seed_row`` stage — a warm hit skips deployment and planning
    entirely — and the deployment itself is the ``deployment`` stage.
    """
    seed = cell_seed(config, experiment_label, node_count, radius,
                     run_index)
    with obs_span("seed", run_index=run_index, seed=seed,
                  node_count=node_count):
        def compute_row() -> Dict[str, MetricRow]:
            net = (network if network is not None
                   else _cached_deployment(config, node_count, seed))
            return run_algorithms_once(net, config.cost(), radius,
                                       algorithms,
                                       tsp_strategy=config.tsp_strategy,
                                       seed=seed)

        return stage_memo(
            "seed_row",
            lambda: {"n": node_count, "seed": seed, "radius": radius,
                     "algorithms": list(algorithms),
                     "tsp_strategy": config.tsp_strategy,
                     "field_side_m": config.field_side_m,
                     "cost": config.cost()},
            compute_row)


def _seed_worker(config: ExperimentConfig, node_count: int,
                 radius: float, algorithms: Sequence[str],
                 experiment_label: str, run_index: int,
                 tracing: bool, perf_enabled: bool,
                 network: Optional[SensorNetwork] = None):
    """The pool-side fan-out unit: one seed plus its telemetry.

    Worker processes are reused across seeds, so the registry is reset
    before each run and the returned snapshot is exactly this seed's
    delta; the parent sums the snapshots back into its own registry
    (``PerfRegistry.merge_snapshot``) so op counts are identical at any
    job count.  With tracing on, the worker's span events ride the same
    return tuple and are re-nested under the parent's ``run`` span.
    Each worker activates its own process-local stage cache from the
    config (sharing any on-disk store with every other worker), so
    cache hit/miss counters merge back exactly like kernel counters.
    """
    PERF.enabled = perf_enabled
    PERF.reset()
    if tracing:
        from ..obs.tracer import TRACER as worker_tracer
        worker_tracer.enabled = True
        worker_tracer.reset()
    with activation_for_config(config):
        rows = _run_one_seed(config, node_count, radius, algorithms,
                             experiment_label, run_index, network)
    events = []
    if tracing:
        from ..obs.tracer import TRACER as worker_tracer
        events = worker_tracer.export_events()
    return rows, PERF.snapshot(), events


def _run_seeds_parallel(config: ExperimentConfig, node_count: int,
                        radius: float, algorithms: Sequence[str],
                        experiment_label: str, jobs: int,
                        networks: Sequence[Optional[SensorNetwork]]
                        ) -> List[Dict[str, MetricRow]]:
    """Fan the per-seed loop out over worker processes.

    ``executor.map`` preserves argument order, so rows come back in
    run-index order — aggregation sees the same sequence the serial
    loop produces — and the workers' perf snapshots and trace events
    are merged in that same deterministic order.  Prebuilt deployments
    (shared-mode sweeps) travel to their worker as read-only payloads
    in the map arguments, once per (node_count, seed).
    """
    algorithms = tuple(algorithms)
    tracing = _tracing_enabled()
    with ProcessPoolExecutor(max_workers=jobs) as executor:
        results = list(executor.map(
            _seed_worker,
            [config] * config.runs,
            [node_count] * config.runs,
            [radius] * config.runs,
            [algorithms] * config.runs,
            [experiment_label] * config.runs,
            range(config.runs),
            [tracing] * config.runs,
            [PERF.enabled] * config.runs,
            list(networks),
        ))
    rows_in_order: List[Dict[str, MetricRow]] = []
    for rows, perf_snapshot, events in results:
        rows_in_order.append(rows)
        PERF.merge_snapshot(perf_snapshot)
        if tracing:
            _absorb_events(events)
    return rows_in_order


def metric_series(aggregated: Iterable[AggregatedRun], algorithm: str,
                  metric: str) -> list:
    """Extract one algorithm's metric across a sweep of aggregated runs."""
    return [point[algorithm][metric] for point in aggregated]


def kilo(cell: CellStats) -> CellStats:
    """Rescale a CellStats from joules to kilojoules (or m to km)."""
    return CellStats(cell.mean / 1000.0, cell.std / 1000.0, cell.count)


def pick(row: Mapping[str, CellStats], *metrics: str) -> list:
    """Return the requested metrics from an aggregated row, in order."""
    return [row[m] for m in metrics]
