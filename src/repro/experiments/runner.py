"""Multi-seed experiment execution.

The runner owns the loop every figure shares: deploy a seeded network,
run each algorithm, evaluate the plan, average over seeds.  Figures then
differ only in which parameter they sweep and which metrics they tabulate.

With ``config.jobs > 1`` the per-seed loop fans out over a
``ProcessPoolExecutor``.  Each run's seed is derived independently from
``(base_seed, label, node_count, radius, run_index)`` — no shared RNG
state — and results are merged back in run-index order, so the
aggregated output is identical at any job count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Mapping, Sequence

from ..charging import CostParameters
from ..network import SensorNetwork, derive_seed, uniform_deployment
from ..perf.counters import PERF
from ..planners import make_planner
from ..tour import evaluate_plan
from .aggregate import CellStats, aggregate_rows
from .config import ExperimentConfig

try:  # tracing is optional: the runner works with repro.obs absent
    from ..obs.tracer import TRACER, obs_span

    def _tracing_enabled() -> bool:
        return TRACER.enabled

    def _absorb_events(events) -> None:
        TRACER.absorb_events(events)
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()

    def _tracing_enabled() -> bool:
        return False

    def _absorb_events(events) -> None:
        return None

MetricRow = Dict[str, float]
AggregatedRun = Dict[str, Dict[str, CellStats]]


def run_algorithms_once(network: SensorNetwork, cost: CostParameters,
                        radius: float, algorithms: Sequence[str],
                        tsp_strategy: str = "nn+2opt",
                        seed: int = 0) -> Dict[str, MetricRow]:
    """Plan and evaluate each algorithm once on one network.

    Returns:
        ``{algorithm: metric_row}`` with the metric keys of
        :meth:`repro.tour.PlanMetrics.as_row`.
    """
    results: Dict[str, MetricRow] = {}
    for name in algorithms:
        with obs_span("plan", algorithm=name, radius_m=radius) as span:
            planner = make_planner(name, radius,
                                   tsp_strategy=tsp_strategy, seed=seed)
            plan = planner.plan(network, cost)
            metrics = evaluate_plan(plan, network.locations, cost)
            results[name] = metrics.as_row()
            if span:
                span.set(**results[name])
    return results


def run_averaged(config: ExperimentConfig, node_count: int, radius: float,
                 algorithms: Sequence[str],
                 experiment_label: str) -> AggregatedRun:
    """Run all algorithms over ``config.runs`` seeded deployments.

    Args:
        config: shared knobs (runs, field, TSP strategy, base seed).
        node_count: sensors per deployment.
        radius: bundle/range radius handed to every planner.
        algorithms: planner names to compare.
        experiment_label: namespaces the seed stream so different figures
            draw independent deployments.

    Returns:
        ``{algorithm: {metric: CellStats}}``.
    """
    jobs = min(config.jobs, config.runs)
    with obs_span("run", experiment=experiment_label,
                  node_count=node_count, radius=radius,
                  runs=config.runs, jobs=jobs) as span:
        if span:
            span.set(seeds=[
                derive_seed(config.base_seed, experiment_label,
                            node_count, radius, run_index)
                for run_index in range(config.runs)])
        if jobs > 1:
            rows_in_order = _run_seeds_parallel(
                config, node_count, radius, algorithms,
                experiment_label, jobs)
        else:
            rows_in_order = [
                _run_one_seed(config, node_count, radius,
                              tuple(algorithms), experiment_label,
                              run_index)
                for run_index in range(config.runs)
            ]
        per_algorithm: Dict[str, list] = {name: [] for name in algorithms}
        for once in rows_in_order:
            for name, row in once.items():
                per_algorithm[name].append(row)
        return {name: aggregate_rows(rows)
                for name, rows in per_algorithm.items()}


def _run_one_seed(config: ExperimentConfig, node_count: int, radius: float,
                  algorithms: Sequence[str], experiment_label: str,
                  run_index: int) -> Dict[str, MetricRow]:
    """One seeded deployment + plan + evaluation (the fan-out unit).

    Top-level so it pickles for :class:`ProcessPoolExecutor`; everything
    it needs travels in its arguments (``ExperimentConfig`` is a frozen
    dataclass of primitives).
    """
    seed = derive_seed(config.base_seed, experiment_label, node_count,
                       radius, run_index)
    with obs_span("seed", run_index=run_index, seed=seed,
                  node_count=node_count):
        network = uniform_deployment(node_count, seed,
                                     field_side_m=config.field_side_m)
        return run_algorithms_once(network, config.cost(), radius,
                                   algorithms,
                                   tsp_strategy=config.tsp_strategy,
                                   seed=seed)


def _seed_worker(config: ExperimentConfig, node_count: int,
                 radius: float, algorithms: Sequence[str],
                 experiment_label: str, run_index: int,
                 tracing: bool, perf_enabled: bool):
    """The pool-side fan-out unit: one seed plus its telemetry.

    Worker processes are reused across seeds, so the registry is reset
    before each run and the returned snapshot is exactly this seed's
    delta; the parent sums the snapshots back into its own registry
    (``PerfRegistry.merge_snapshot``) so op counts are identical at any
    job count.  With tracing on, the worker's span events ride the same
    return tuple and are re-nested under the parent's ``run`` span.
    """
    PERF.enabled = perf_enabled
    PERF.reset()
    if tracing:
        from ..obs.tracer import TRACER as worker_tracer
        worker_tracer.enabled = True
        worker_tracer.reset()
    rows = _run_one_seed(config, node_count, radius, algorithms,
                         experiment_label, run_index)
    events = []
    if tracing:
        from ..obs.tracer import TRACER as worker_tracer
        events = worker_tracer.export_events()
    return rows, PERF.snapshot(), events


def _run_seeds_parallel(config: ExperimentConfig, node_count: int,
                        radius: float, algorithms: Sequence[str],
                        experiment_label: str,
                        jobs: int) -> List[Dict[str, MetricRow]]:
    """Fan the per-seed loop out over worker processes.

    ``executor.map`` preserves argument order, so rows come back in
    run-index order — aggregation sees the same sequence the serial
    loop produces — and the workers' perf snapshots and trace events
    are merged in that same deterministic order.
    """
    algorithms = tuple(algorithms)
    tracing = _tracing_enabled()
    with ProcessPoolExecutor(max_workers=jobs) as executor:
        results = list(executor.map(
            _seed_worker,
            [config] * config.runs,
            [node_count] * config.runs,
            [radius] * config.runs,
            [algorithms] * config.runs,
            [experiment_label] * config.runs,
            range(config.runs),
            [tracing] * config.runs,
            [PERF.enabled] * config.runs,
        ))
    rows_in_order: List[Dict[str, MetricRow]] = []
    for rows, perf_snapshot, events in results:
        rows_in_order.append(rows)
        PERF.merge_snapshot(perf_snapshot)
        if tracing:
            _absorb_events(events)
    return rows_in_order


def metric_series(aggregated: Iterable[AggregatedRun], algorithm: str,
                  metric: str) -> list:
    """Extract one algorithm's metric across a sweep of aggregated runs."""
    return [point[algorithm][metric] for point in aggregated]


def kilo(cell: CellStats) -> CellStats:
    """Rescale a CellStats from joules to kilojoules (or m to km)."""
    return CellStats(cell.mean / 1000.0, cell.std / 1000.0, cell.count)


def pick(row: Mapping[str, CellStats], *metrics: str) -> list:
    """Return the requested metrics from an aggregated row, in order."""
    return [row[m] for m in metrics]
