"""Multi-seed experiment execution.

The runner owns the loop every figure shares: deploy a seeded network,
run each algorithm, evaluate the plan, average over seeds.  Figures then
differ only in which parameter they sweep and which metrics they tabulate.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

from ..charging import CostParameters
from ..network import SensorNetwork, derive_seed, uniform_deployment
from ..planners import make_planner
from ..tour import evaluate_plan
from .aggregate import CellStats, aggregate_rows
from .config import ExperimentConfig

MetricRow = Dict[str, float]
AggregatedRun = Dict[str, Dict[str, CellStats]]


def run_algorithms_once(network: SensorNetwork, cost: CostParameters,
                        radius: float, algorithms: Sequence[str],
                        tsp_strategy: str = "nn+2opt",
                        seed: int = 0) -> Dict[str, MetricRow]:
    """Plan and evaluate each algorithm once on one network.

    Returns:
        ``{algorithm: metric_row}`` with the metric keys of
        :meth:`repro.tour.PlanMetrics.as_row`.
    """
    results: Dict[str, MetricRow] = {}
    for name in algorithms:
        planner = make_planner(name, radius, tsp_strategy=tsp_strategy,
                               seed=seed)
        plan = planner.plan(network, cost)
        metrics = evaluate_plan(plan, network.locations, cost)
        results[name] = metrics.as_row()
    return results


def run_averaged(config: ExperimentConfig, node_count: int, radius: float,
                 algorithms: Sequence[str],
                 experiment_label: str) -> AggregatedRun:
    """Run all algorithms over ``config.runs`` seeded deployments.

    Args:
        config: shared knobs (runs, field, TSP strategy, base seed).
        node_count: sensors per deployment.
        radius: bundle/range radius handed to every planner.
        algorithms: planner names to compare.
        experiment_label: namespaces the seed stream so different figures
            draw independent deployments.

    Returns:
        ``{algorithm: {metric: CellStats}}``.
    """
    cost = config.cost()
    per_algorithm: Dict[str, list] = {name: [] for name in algorithms}
    for run_index in range(config.runs):
        seed = derive_seed(config.base_seed, experiment_label, node_count,
                           radius, run_index)
        network = uniform_deployment(node_count, seed,
                                     field_side_m=config.field_side_m)
        once = run_algorithms_once(network, cost, radius, algorithms,
                                   tsp_strategy=config.tsp_strategy,
                                   seed=seed)
        for name, row in once.items():
            per_algorithm[name].append(row)
    return {name: aggregate_rows(rows)
            for name, rows in per_algorithm.items()}


def metric_series(aggregated: Iterable[AggregatedRun], algorithm: str,
                  metric: str) -> list:
    """Extract one algorithm's metric across a sweep of aggregated runs."""
    return [point[algorithm][metric] for point in aggregated]


def kilo(cell: CellStats) -> CellStats:
    """Rescale a CellStats from joules to kilojoules (or m to km)."""
    return CellStats(cell.mean / 1000.0, cell.std / 1000.0, cell.count)


def pick(row: Mapping[str, CellStats], *metrics: str) -> list:
    """Return the requested metrics from an aggregated row, in order."""
    return [row[m] for m in metrics]
