"""Fig. 12 — SC / CSS / BC / BC-OPT across bundle radii.

Three panels at a fixed node count:

* (a) total energy — expected ordering BC-OPT < BC ~ CSS < SC, with the
  bundle algorithms improving as the radius grows;
* (b) tour length — CSS, BC and BC-OPT all shorten the SC tour;
* (c) average per-sensor charging time — SC is optimal (always charges
  at zero distance); BC-OPT's average *decreases* with radius thanks to
  one-to-many charging.
"""

from __future__ import annotations

from typing import List

from ..planners import PAPER_ALGORITHMS
from .config import ExperimentConfig
from .runner import kilo, run_averaged, shared_deployments
from .tables import ResultTable

EXPERIMENT_ID = "fig12"


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate all three panels of Fig. 12."""
    algorithms = list(PAPER_ALGORITHMS)
    # Opt-in common-random-numbers mode: every radius reuses one
    # deployment per run, computed (or cache-recalled) exactly once.
    deployments = (shared_deployments(config, config.node_count,
                                      EXPERIMENT_ID)
                   if config.shared_deployment else None)
    columns = ["radius_m"] + algorithms
    table_a = ResultTable("Fig. 12(a): total energy (kJ) vs bundle radius",
                          columns)
    table_b = ResultTable("Fig. 12(b): tour length (km) vs bundle radius",
                          columns)
    table_c = ResultTable(
        "Fig. 12(c): average charging time per sensor (s) vs bundle "
        "radius", columns)

    for radius in config.radii:
        aggregated = run_averaged(config, config.node_count, radius,
                                  algorithms, EXPERIMENT_ID,
                                  deployments=deployments)
        table_a.add_row(radius_m=radius, **{
            name: kilo(aggregated[name]["total_j"])
            for name in algorithms})
        table_b.add_row(radius_m=radius, **{
            name: kilo(aggregated[name]["tour_length_m"])
            for name in algorithms})
        table_c.add_row(radius_m=radius, **{
            name: aggregated[name]["avg_charging_time_s"]
            for name in algorithms})
    return [table_a, table_b, table_c]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
