"""Fig. 13 — SC / CSS / BC / BC-OPT across network densities.

Same three panels as Fig. 12, swept over the node count at a fixed
bundle radius.  The headline claims this experiment checks:

* SC degrades with density (its tour must reach every sensor);
* BC's advantage over SC grows with density;
* BC-OPT matches CSS on tour length but keeps a lower charging time
  (CSS "has the similar concept of charging bundle, but it does not
  optimize the charging location").
"""

from __future__ import annotations

from typing import List

from ..planners import PAPER_ALGORITHMS
from .config import ExperimentConfig
from .runner import kilo, run_averaged
from .tables import ResultTable

EXPERIMENT_ID = "fig13"


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate all three panels of Fig. 13."""
    algorithms = list(PAPER_ALGORITHMS)
    columns = ["nodes"] + algorithms
    radius = config.default_radius
    table_a = ResultTable(
        f"Fig. 13(a): total energy (kJ) vs node count "
        f"(radius {radius:.0f} m)", columns)
    table_b = ResultTable(
        f"Fig. 13(b): tour length (km) vs node count "
        f"(radius {radius:.0f} m)", columns)
    table_c = ResultTable(
        f"Fig. 13(c): average charging time per sensor (s) vs node count "
        f"(radius {radius:.0f} m)", columns)

    for node_count in config.node_counts:
        aggregated = run_averaged(config, node_count, radius, algorithms,
                                  EXPERIMENT_ID)
        table_a.add_row(nodes=node_count, **{
            name: kilo(aggregated[name]["total_j"])
            for name in algorithms})
        table_b.add_row(nodes=node_count, **{
            name: kilo(aggregated[name]["tour_length_m"])
            for name in algorithms})
        table_c.add_row(nodes=node_count, **{
            name: aggregated[name]["avg_charging_time_s"]
            for name in algorithms})
    return [table_a, table_b, table_c]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
