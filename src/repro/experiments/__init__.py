"""Experiment harness: one module per data figure of the paper.

``EXPERIMENTS`` maps experiment ids (``fig06`` .. ``fig16``) to their
modules; each module exposes ``run(config) -> [ResultTable]`` and a
printing ``main``.  The CLI (:mod:`repro.cli`) is a thin wrapper over
this registry.
"""

from types import ModuleType
from typing import Dict, List

from ..errors import ExperimentError
from . import (ext_deployments, ext_dwell, ext_fleet, ext_interference,
               ext_latency, ext_lifetime, ext_robustness,
               fig06_tradeoff, fig10_examples, fig11_bundles,
               fig12_radius, fig13_nodes, fig14_optimal_radius,
               fig16_testbed)
from .aggregate import CellStats, aggregate_rows, mean_std
from .config import ExperimentConfig
from .expectations import (EXPECTATIONS, Finding, render_findings,
                           run_reproduction_check)
from .runner import run_algorithms_once, run_averaged
from .stats import (TTestResult, paired_t_test, student_t_sf,
                    welch_t_test)
from .tables import ResultTable, print_tables, render_tables

#: Paper figures first (ids match the paper), extensions after.
EXPERIMENTS: Dict[str, ModuleType] = {
    "fig06": fig06_tradeoff,
    "fig10": fig10_examples,
    "fig11": fig11_bundles,
    "fig12": fig12_radius,
    "fig13": fig13_nodes,
    "fig14": fig14_optimal_radius,
    "fig16": fig16_testbed,
    "extDwell": ext_dwell,
    "extDeploy": ext_deployments,
    "extFleet": ext_fleet,
    "extLifetime": ext_lifetime,
    "extLatency": ext_latency,
    "extRobust": ext_robustness,
    "extConcur": ext_interference,
}


def experiment_ids() -> List[str]:
    """Return all experiment ids, in figure order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str,
                   config: ExperimentConfig) -> List[ResultTable]:
    """Run one experiment by id.

    Raises:
        ExperimentError: for an unknown id.
    """
    try:
        module = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; choose from "
            f"{experiment_ids()}") from None
    return module.run(config)


__all__ = [
    "CellStats",
    "EXPECTATIONS",
    "EXPERIMENTS",
    "ExperimentConfig",
    "Finding",
    "ResultTable",
    "TTestResult",
    "aggregate_rows",
    "paired_t_test",
    "student_t_sf",
    "welch_t_test",
    "experiment_ids",
    "mean_std",
    "print_tables",
    "render_findings",
    "render_tables",
    "run_algorithms_once",
    "run_averaged",
    "run_experiment",
    "run_reproduction_check",
]
