"""Statistical significance for algorithm comparisons.

"BC-OPT beat BC by 2 kJ over 10 seeds" means little without a
significance statement; this module provides Welch's unequal-variance
t-test (implemented directly — Student-t tail probability via the
regularized incomplete beta function, so no SciPy dependency at
runtime) and a paired comparison helper for the common
same-deployments-different-algorithms design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ExperimentError


@dataclass(frozen=True)
class TTestResult:
    """A two-sided Welch t-test outcome.

    Attributes:
        statistic: the t statistic (sign: mean(a) - mean(b)).
        degrees_of_freedom: Welch-Satterthwaite estimate.
        p_value: two-sided tail probability.
    """

    statistic: float
    degrees_of_freedom: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Return True when the difference is significant at alpha."""
        return self.p_value < alpha


def _mean_var(values: Sequence[float]) -> "tuple[float, float]":
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, variance


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _beta_cf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (NR's ``betacf``)."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 400):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)`` (NR's ``betai``)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = (a * math.log(x) + b * math.log(1.0 - x)
                 - _log_beta(a, b))
    front = math.exp(log_front)
    # The continued fraction converges fast on the left of the mean;
    # use the symmetry relation otherwise.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - front * _beta_cf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """Survival function P(T > t) of Student's t with ``df`` dof."""
    if df <= 0.0:
        raise ExperimentError(f"invalid degrees of freedom: {df!r}")
    x = df / (df + t * t)
    tail = 0.5 * _betainc(df / 2.0, 0.5, x)
    return tail if t >= 0.0 else 1.0 - tail


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> TTestResult:
    """Two-sided Welch's t-test for mean(a) != mean(b).

    Raises:
        ExperimentError: when either sample has fewer than two values
            or both variances are zero.
    """
    if len(a) < 2 or len(b) < 2:
        raise ExperimentError(
            "Welch's test needs at least two values per sample")
    mean_a, var_a = _mean_var(a)
    mean_b, var_b = _mean_var(b)
    se_a = var_a / len(a)
    se_b = var_b / len(b)
    if se_a + se_b == 0.0:
        if mean_a == mean_b:
            return TTestResult(0.0, float(len(a) + len(b) - 2), 1.0)
        raise ExperimentError(
            "zero variance in both samples with different means")
    statistic = (mean_a - mean_b) / math.sqrt(se_a + se_b)
    df = (se_a + se_b) ** 2 / (
        se_a ** 2 / (len(a) - 1) + se_b ** 2 / (len(b) - 1))
    p_value = 2.0 * student_t_sf(abs(statistic), df)
    return TTestResult(statistic, df, min(1.0, p_value))


def paired_t_test(a: Sequence[float], b: Sequence[float]) -> TTestResult:
    """Paired two-sided t-test (same seeds, two algorithms).

    Raises:
        ExperimentError: on mismatched lengths or fewer than two pairs.
    """
    if len(a) != len(b):
        raise ExperimentError(
            f"paired samples must match: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ExperimentError("paired test needs at least two pairs")
    differences = [x - y for x, y in zip(a, b)]
    mean, variance = _mean_var(differences)
    if variance == 0.0:
        if mean == 0.0:
            return TTestResult(0.0, float(len(a) - 1), 1.0)
        raise ExperimentError("zero-variance nonzero paired difference")
    statistic = mean / math.sqrt(variance / len(differences))
    df = float(len(differences) - 1)
    p_value = 2.0 * student_t_sf(abs(statistic), df)
    return TTestResult(statistic, df, min(1.0, p_value))
