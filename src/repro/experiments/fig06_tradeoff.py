"""Fig. 6 — the bundle-charging trade-off (Section IV-C).

Sweep the bundle radius with the BC planner and report:

* (a) trajectory length (decreasing in r) and total charging time
  (increasing in r);
* (b) total energy, which is U-shaped with an interior optimal radius.
"""

from __future__ import annotations

from typing import List

from ..planners import PAPER_ALGORITHMS
from .config import ExperimentConfig
from .runner import kilo, run_averaged
from .tables import ResultTable

EXPERIMENT_ID = "fig06"


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate both panels of Fig. 6 as tables."""
    table_a = ResultTable(
        "Fig. 6(a): BC trade-off — tour length and charging time vs "
        "bundle radius",
        ["radius_m", "bundles", "tour_length_km", "charging_time_ks"])
    table_b = ResultTable(
        "Fig. 6(b): BC total energy vs bundle radius (U-shaped)",
        ["radius_m", "movement_kj", "charging_kj", "total_kj"])

    for radius in config.radii:
        aggregated = run_averaged(config, config.node_count, radius,
                                  ["BC"], EXPERIMENT_ID)
        row = aggregated["BC"]
        table_a.add_row(
            radius_m=radius,
            bundles=row["stops"],
            tour_length_km=kilo(row["tour_length_m"]),
            charging_time_ks=kilo(row["charging_time_s"]),
        )
        table_b.add_row(
            radius_m=radius,
            movement_kj=kilo(row["movement_j"]),
            charging_kj=kilo(row["charging_j"]),
            total_kj=kilo(row["total_j"]),
        )
    return [table_a, table_b]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables


assert "BC" in PAPER_ALGORITHMS
