"""Statistical aggregation over repeated runs.

The paper averages each data point over 100 random seeds; these helpers
collect per-run metric dictionaries and reduce them to mean/std cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

from ..errors import ExperimentError


@dataclass(frozen=True)
class CellStats:
    """Mean and spread of one metric over repeated runs.

    Attributes:
        mean: arithmetic mean.
        std: sample standard deviation (0 for a single run).
        count: number of runs aggregated.
    """

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        if self.count <= 1:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g}±{self.std:.2g}"


def mean_std(values: Sequence[float]) -> CellStats:
    """Reduce raw values to a :class:`CellStats`.

    Raises:
        ExperimentError: on an empty sequence.
    """
    if not values:
        raise ExperimentError("cannot aggregate zero runs")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return CellStats(mean, 0.0, 1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return CellStats(mean, math.sqrt(variance), n)


def aggregate_rows(rows: Iterable[Mapping[str, float]]
                   ) -> Dict[str, CellStats]:
    """Aggregate metric dictionaries key-by-key.

    All rows must share the same keys.

    Raises:
        ExperimentError: on no rows or on mismatched keys.
    """
    collected: Dict[str, List[float]] = {}
    count = 0
    for row in rows:
        count += 1
        if not collected:
            collected = {key: [value] for key, value in row.items()}
            continue
        if set(row) != set(collected):
            raise ExperimentError(
                f"run metric keys diverge: {sorted(row)} vs "
                f"{sorted(collected)}")
        for key, value in row.items():
            collected[key].append(value)
    if count == 0:
        raise ExperimentError("cannot aggregate zero runs")
    return {key: mean_std(values) for key, values in collected.items()}


def ratio(numerator: CellStats, denominator: CellStats) -> float:
    """Return the ratio of two cell means (guarding zero denominators)."""
    if denominator.mean == 0.0:
        return math.inf if numerator.mean > 0.0 else 1.0
    return numerator.mean / denominator.mean
