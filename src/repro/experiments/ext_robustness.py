"""extRobust — failure-injection robustness per planner (beyond the
paper).

Real links deliver less than Eq. 1 predicts.  For each planner we
binary-search the *break-even harvest scale* — the largest model
optimism the plan survives (smaller = more headroom) — and report the
incidental-harvest fraction that creates that headroom.  The paper's
one-to-many argument predicts bundle-style plans should not be *less*
robust than SC despite charging from farther away; this experiment
checks that.
"""

from __future__ import annotations

from typing import List

from ..network import derive_seed, uniform_deployment
from ..planners import PAPER_ALGORITHMS, make_planner
from ..sim import robustness_margin, validate_plan
from .aggregate import mean_std
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "extRobust"


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate the robustness scoreboard."""
    radius = config.default_radius
    cost = config.cost()
    # Margin search re-simulates the mission ~10 times per run; keep
    # the instance size moderate.
    node_count = min(config.node_count, 80)
    table = ResultTable(
        f"extRobust: break-even harvest scale per planner "
        f"({node_count} nodes, radius {radius:.0f} m; lower = more "
        f"headroom)",
        ["planner", "break_even_scale", "headroom_pct",
         "incidental_pct"])

    for name in PAPER_ALGORITHMS:
        margins = []
        incidentals = []
        for run_index in range(config.runs):
            seed = derive_seed(config.base_seed, EXPERIMENT_ID, name,
                               run_index)
            network = uniform_deployment(
                node_count, seed, field_side_m=config.field_side_m)
            plan = make_planner(
                name, radius,
                tsp_strategy=config.tsp_strategy).plan(network, cost)
            margins.append(robustness_margin(plan, network, cost,
                                             tolerance=2e-3))
            result = validate_plan(plan, network, cost)
            incidentals.append(100.0 * result.incidental_fraction)
        margin_cell = mean_std(margins)
        table.add_row(
            planner=name,
            break_even_scale=margin_cell,
            headroom_pct=100.0 * (1.0 - margin_cell.mean),
            incidental_pct=mean_std(incidentals),
        )
    return [table]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
