"""Fig. 10 — three running examples with 50 nodes.

The paper's figure shows one 50-node deployment bundled at three radii,
with the BC tour (black) and the BC-OPT tour (dotted red).  We emit the
quantitative content: bundle count, both tour lengths, and both energies
per radius — including the figure's two qualitative claims:

* at a tiny radius BC-OPT ~ SC (sensors visited one by one);
* as the radius grows the bundle count and tour length drop sharply.
"""

from __future__ import annotations

from typing import List

from ..network import derive_seed, uniform_deployment
from ..planners import (BundleChargingOptPlanner, BundleChargingPlanner,
                        SingleChargingPlanner)
from ..tour import evaluate_plan
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "fig10"

#: The three example radii (small / medium / large), meters.
EXAMPLE_RADII = (5.0, 25.0, 60.0)

#: Fixed node count of the figure.
NODE_COUNT = 50


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate the Fig. 10 example data."""
    seed = derive_seed(config.base_seed, EXPERIMENT_ID)
    network = uniform_deployment(NODE_COUNT, seed,
                                 field_side_m=config.field_side_m)
    cost = config.cost()

    sc_plan = SingleChargingPlanner(
        tsp_strategy=config.tsp_strategy).plan(network, cost)
    sc_metrics = evaluate_plan(sc_plan, network.locations, cost)

    table = ResultTable(
        f"Fig. 10: 50-node examples (SC tour = "
        f"{sc_metrics.energy.tour_length_m:.0f} m, SC total = "
        f"{sc_metrics.total_j / 1000:.1f} kJ)",
        ["radius_m", "bundles", "bc_tour_m", "bcopt_tour_m",
         "bc_total_kj", "bcopt_total_kj"])

    for radius in EXAMPLE_RADII:
        bc = BundleChargingPlanner(radius,
                                   tsp_strategy=config.tsp_strategy)
        bc_plan = bc.plan(network, cost)
        bc_metrics = evaluate_plan(bc_plan, network.locations, cost)

        bc_opt = BundleChargingOptPlanner(
            radius, tsp_strategy=config.tsp_strategy)
        opt_plan = bc_opt.plan(network, cost)
        opt_metrics = evaluate_plan(opt_plan, network.locations, cost)

        table.add_row(
            radius_m=radius,
            bundles=len(bc_plan),
            bc_tour_m=bc_metrics.energy.tour_length_m,
            bcopt_tour_m=opt_metrics.energy.tour_length_m,
            bc_total_kj=bc_metrics.total_j / 1000.0,
            bcopt_total_kj=opt_metrics.total_j / 1000.0,
        )
    return [table]


def render_examples(config: ExperimentConfig,
                    width: int = 72, height: int = 24) -> str:
    """Render the three example tours as ASCII art (the figure itself).

    The paper's Fig. 10 is a picture of tours; this is our terminal
    equivalent — sensors ``*``, anchors ``A``, depot ``D``, tour ``.``.
    """
    from ..planners import BundleChargingOptPlanner
    from ..viz import render_plan

    seed = derive_seed(config.base_seed, EXPERIMENT_ID)
    network = uniform_deployment(NODE_COUNT, seed,
                                 field_side_m=config.field_side_m)
    cost = config.cost()
    panels = []
    for radius in EXAMPLE_RADII:
        plan = BundleChargingOptPlanner(
            radius, tsp_strategy=config.tsp_strategy).plan(network, cost)
        art = render_plan(plan, network.locations,
                          config.field_side_m, width=width,
                          height=height)
        panels.append(f"-- BC-OPT tour, bundle radius {radius:.0f} m --\n"
                      f"{art}")
    return "\n\n".join(panels)


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print (tables + ASCII tours)."""
    from .tables import print_tables
    config = config or ExperimentConfig.default()
    tables = run(config)
    print_tables(tables)
    print()
    print(render_examples(config))
    return tables
