"""Encoded paper expectations and the reproduction-verdict harness.

EXPERIMENTS.md records shapes we claim to reproduce; this module makes
those claims *executable*: each figure gets a list of named predicates
over its regenerated tables, and :func:`run_reproduction_check` runs
every figure and returns a pass/fail scoreboard.  ``bundle-charging
check`` prints it.

Checks are deliberately shape-level (orderings, monotonicity, signs) so
they hold at reduced seed counts; magnitude comparisons live in
EXPERIMENTS.md prose where the caveats can live next to them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from .config import ExperimentConfig
from .tables import ResultTable

Checker = Callable[[Sequence[ResultTable]], bool]


@dataclass(frozen=True)
class Finding:
    """One expectation's verdict.

    Attributes:
        experiment_id: which figure the check belongs to.
        claim: the paper claim being checked.
        passed: the verdict.
    """

    experiment_id: str
    claim: str
    passed: bool


def _non_increasing(values: Sequence[float], slack: float = 0.0) -> bool:
    return all(b <= a + slack for a, b in zip(values, values[1:]))


def _check_fig06(tables: Sequence[ResultTable]) -> List[Finding]:
    trade, energy = tables
    tour = trade.mean_of("tour_length_km")
    time = trade.mean_of("charging_time_ks")
    bundles = trade.mean_of("bundles")
    return [
        Finding("fig06", "tour length decreases with bundle radius",
                tour[-1] < tour[0]),
        Finding("fig06", "total charging time increases with radius",
                time[-1] > time[0]),
        Finding("fig06", "bundle count decreases with radius",
                _non_increasing(bundles, slack=1e-9)),
        Finding("fig06", "ledger decomposes (move + charge = total)",
                all(abs(row["total_kj"].mean - row["movement_kj"].mean
                        - row["charging_kj"].mean) < 1e-6
                    for row in energy.rows)),
    ]


def _check_fig10(tables: Sequence[ResultTable]) -> List[Finding]:
    (table,) = tables
    bundles = table.mean_of("bundles")
    bc = table.mean_of("bc_total_kj")
    opt = table.mean_of("bcopt_total_kj")
    return [
        Finding("fig10", "larger example radius -> fewer bundles",
                _non_increasing(bundles, slack=1e-9)),
        Finding("fig10", "BC-OPT tour never costs more than BC",
                all(o <= b + 1e-6 for b, o in zip(bc, opt))),
    ]


def _check_fig11(tables: Sequence[ResultTable]) -> List[Finding]:
    findings = []
    for table in tables:
        grid = table.mean_of("grid")
        greedy = table.mean_of("greedy")
        optimal = table.mean_of("optimal")
        findings.append(Finding(
            "fig11", f"greedy never needs more bundles than grid "
                     f"({table.title.split(':')[0]})",
            all(gr <= g + 1e-9 for g, gr in zip(grid, greedy))))
        findings.append(Finding(
            "fig11", f"greedy within the exact optimum's ballpark "
                     f"({table.title.split(':')[0]})",
            all(math.isnan(o) or gr <= o * 1.05 + 0.5
                for gr, o in zip(greedy, optimal))))
    return findings


def _check_fig12(tables: Sequence[ResultTable]) -> List[Finding]:
    energy, tour, charge_time = tables
    sc = energy.mean_of("SC")
    bc = energy.mean_of("BC")
    opt = energy.mean_of("BC-OPT")
    sc_time = charge_time.mean_of("SC")
    css_time = charge_time.mean_of("CSS")
    return [
        Finding("fig12", "SC energy is radius-independent (flat)",
                max(sc) - min(sc) < 0.05 * max(sc)),
        Finding("fig12", "BC-OPT beats BC at every radius",
                all(o <= b + 1e-6 for b, o in zip(bc, opt))),
        Finding("fig12", "BC-OPT beats SC at the largest radius",
                opt[-1] < sc[-1]),
        Finding("fig12", "bundle algorithms shorten the SC tour",
                tour.mean_of("BC-OPT")[-1] < tour.mean_of("SC")[-1]),
        Finding("fig12", "SC per-sensor charging time constant",
                max(sc_time) - min(sc_time) < 1e-6),
        Finding("fig12", "CSS charging time above SC and growing",
                css_time[-1] > css_time[0]
                and all(c >= s - 1e-9
                        for c, s in zip(css_time, sc_time))),
    ]


def _check_fig13(tables: Sequence[ResultTable]) -> List[Finding]:
    energy = tables[0]
    sc = energy.mean_of("SC")
    bc = energy.mean_of("BC")
    opt = energy.mean_of("BC-OPT")
    gain_sparse = 1.0 - bc[0] / sc[0]
    gain_dense = 1.0 - bc[-1] / sc[-1]
    return [
        Finding("fig13", "energy grows with network density",
                sc[-1] > sc[0] and opt[-1] > opt[0]),
        Finding("fig13", "BC-OPT is the cheapest at every density",
                all(o <= min(s, b) + 1e-6
                    for s, b, o in zip(sc, bc, opt))),
        Finding("fig13", "BC's gain over SC grows with density",
                gain_dense >= gain_sparse - 0.02),
    ]


def _check_fig14(tables: Sequence[ResultTable]) -> List[Finding]:
    decomposition, totals = tables
    movement = decomposition.mean_of("movement_kj")
    charging = decomposition.mean_of("charging_kj")
    gains = totals.mean_of("bcopt_gain_pct")
    return [
        Finding("fig14", "movement energy falls with radius",
                movement[-1] < movement[0]),
        Finding("fig14", "charging energy rises with radius",
                charging[-1] > charging[0]),
        Finding("fig14", "BC-OPT gain over BC is never negative",
                all(g >= -1e-6 for g in gains)),
    ]


def _check_fig16(tables: Sequence[ResultTable]) -> List[Finding]:
    energy, tour = tables
    radii = energy.mean_of("radius_m")
    bc_saving = energy.mean_of("bc_saving_pct")
    opt_saving = energy.mean_of("bcopt_saving_pct")
    at_min = 0
    at_12 = radii.index(1.2) if 1.2 in radii else len(radii) // 2
    return [
        Finding("fig16", "BC equals SC at a tiny radius",
                abs(bc_saving[at_min]) < 1e-6),
        Finding("fig16", "BC saves energy at r = 1.2 m",
                bc_saving[at_12] > 0.0),
        Finding("fig16", "BC-OPT saves more than BC at r = 1.2 m",
                opt_saving[at_12] > bc_saving[at_12]),
        Finding("fig16", "BC-OPT tour >= 20% shorter than SC",
                tour.mean_of("BC-OPT")[at_12]
                < 0.8 * tour.mean_of("SC")[at_12]),
    ]


EXPECTATIONS: Dict[str, Callable[[Sequence[ResultTable]],
                                 List[Finding]]] = {
    "fig06": _check_fig06,
    "fig10": _check_fig10,
    "fig11": _check_fig11,
    "fig12": _check_fig12,
    "fig13": _check_fig13,
    "fig14": _check_fig14,
    "fig16": _check_fig16,
}


def run_reproduction_check(config: ExperimentConfig
                           ) -> List[Finding]:
    """Regenerate every paper figure and evaluate its expectations."""
    from . import run_experiment

    findings: List[Finding] = []
    for experiment_id, checker in EXPECTATIONS.items():
        tables = run_experiment(experiment_id, config)
        findings.extend(checker(tables))
    return findings


def render_findings(findings: Sequence[Finding]) -> str:
    """Return the scoreboard as text."""
    lines = ["== Reproduction check =="]
    passed = 0
    for finding in findings:
        mark = "PASS" if finding.passed else "FAIL"
        passed += finding.passed
        lines.append(f"  [{mark}] {finding.experiment_id}: "
                     f"{finding.claim}")
    lines.append(f"{passed}/{len(findings)} expectations hold")
    return "\n".join(lines)
