"""Result tables: the harness's ASCII/CSV output format.

Every experiment emits :class:`ResultTable` objects whose rows mirror the
corresponding paper figure's data series, so "regenerating Fig. 12(a)"
means printing one of these tables.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ExperimentError
from .aggregate import CellStats

CellValue = Union[float, int, str, CellStats]


class ResultTable:
    """A titled table with named columns and formatted rendering."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        """Create a table.

        Args:
            title: heading (e.g. ``"Fig. 12(a): total energy (kJ)"``).
            columns: ordered column names; rows must supply exactly these.
        """
        if not columns:
            raise ExperimentError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, CellValue]] = []

    def add_row(self, **values: CellValue) -> None:
        """Append a row given as column=value keywords.

        Raises:
            ExperimentError: when the keys do not match the columns.
        """
        if set(values) != set(self.columns):
            raise ExperimentError(
                f"row keys {sorted(values)} do not match columns "
                f"{sorted(self.columns)}")
        self.rows.append(dict(values))

    def column(self, name: str) -> List[CellValue]:
        """Return one column's cells, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"unknown column: {name!r}")
        return [row[name] for row in self.rows]

    def mean_of(self, name: str) -> List[float]:
        """Return a column as plain floats (CellStats reduced to mean)."""
        values = []
        for cell in self.column(name):
            if isinstance(cell, CellStats):
                values.append(cell.mean)
            else:
                values.append(float(cell))
        return values

    # --- rendering ------------------------------------------------------

    @staticmethod
    def _format(cell: CellValue) -> str:
        if isinstance(cell, CellStats):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        """Return the table as aligned ASCII text."""
        header = list(self.columns)
        body = [[self._format(row[col]) for col in header]
                for row in self.rows]
        widths = [max(len(header[i]),
                      *(len(line[i]) for line in body)) if body
                  else len(header[i])
                  for i in range(len(header))]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(header[i].rjust(widths[i])
                               for i in range(len(header))))
        lines.append("  ".join("-" * widths[i]
                               for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].rjust(widths[i])
                                   for i in range(len(header))))
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        """Write the table (means only for CellStats) to a CSV file."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            for row in self.rows:
                writer.writerow([
                    cell.mean if isinstance(cell, CellStats) else cell
                    for cell in (row[col] for col in self.columns)
                ])


def render_tables(tables: Sequence[ResultTable],
                  separator: str = "\n\n") -> str:
    """Render several tables as one report string."""
    return separator.join(table.render() for table in tables)


def print_tables(tables: Sequence[ResultTable],
                 csv_dir: Optional[str] = None) -> None:
    """Print tables to stdout and optionally dump CSVs next to them."""
    print(render_tables(tables))
    if csv_dir is not None:
        import os
        import re
        os.makedirs(csv_dir, exist_ok=True)
        for table in tables:
            slug = re.sub(r"[^a-z0-9]+", "_", table.title.lower()).strip("_")
            table.to_csv(os.path.join(csv_dir, f"{slug}.csv"))
