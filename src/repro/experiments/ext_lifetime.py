"""extLifetime — long-horizon operation per planner (beyond the paper).

Runs the drain/trigger/recharge loop for 30 simulated days under each
planner and reports rounds, charger energy per day, and availability —
the operational comparison the paper's single-mission metrics imply but
never run.
"""

from __future__ import annotations

from typing import List

from ..lifetime import ConstantDrain, LifetimeSimulator
from ..network import derive_seed, uniform_deployment
from ..planners import PAPER_ALGORITHMS, make_planner
from .aggregate import mean_std
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "extLifetime"

HORIZON_S = 30 * 86_400.0
DRAIN_RATE_W = 5e-6
BATTERY_J = 2.0
TRIGGER_J = 0.5


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate the lifetime comparison table."""
    radius = config.default_radius
    node_count = min(config.node_count, 60)  # lifetime runs are heavy
    trigger_count = max(1, node_count // 8)
    table = ResultTable(
        f"extLifetime: 30-day operation ({node_count} nodes, radius "
        f"{radius:.0f} m, {DRAIN_RATE_W * 1e6:.0f} uW drain)",
        ["planner", "rounds", "energy_per_day_kj", "availability_pct",
         "min_battery_j"])

    for name in PAPER_ALGORITHMS:
        rounds = []
        energy = []
        availability = []
        min_battery = []
        for run_index in range(config.runs):
            seed = derive_seed(config.base_seed, EXPERIMENT_ID, name,
                               run_index)
            network = uniform_deployment(
                node_count, seed, field_side_m=config.field_side_m)
            simulator = LifetimeSimulator(
                network=network,
                planner=make_planner(name, radius,
                                     tsp_strategy=config.tsp_strategy),
                cost=config.cost(),
                consumption=ConstantDrain(
                    rate_w=DRAIN_RATE_W, spread=0.3,
                    sensor_count=node_count, seed=seed),
                battery_capacity_j=BATTERY_J,
                trigger_threshold_j=TRIGGER_J,
                trigger_count=trigger_count,
            )
            result = simulator.run(horizon_s=HORIZON_S)
            rounds.append(float(result.round_count))
            energy.append(result.energy_per_day_j / 1000.0)
            availability.append(100.0 * result.availability)
            min_battery.append(result.min_battery_j)
        table.add_row(
            planner=name,
            rounds=mean_std(rounds),
            energy_per_day_kj=mean_std(energy),
            availability_pct=mean_std(availability),
            min_battery_j=mean_std(min_battery),
        )
    return [table]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
