"""Experiment configuration.

One dataclass holds everything a paper-figure run needs: the paper's
full-scale parameters are the defaults, and :meth:`ExperimentConfig.fast`
returns a scaled-down variant for CI/benchmarks (fewer seeds, fewer
nodes) that preserves every qualitative shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .. import constants
from ..charging import CostParameters
from ..errors import ExperimentError


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared experiment knobs.

    Attributes:
        runs: random seeds averaged per data point (paper: 100).
        node_count: default sensor count for radius sweeps (paper: 100).
        node_counts: sweep values for density experiments (paper: 40-200).
        radii: bundle-radius sweep values (paper: 5-40 m).
        default_radius: radius used by node-count sweeps.
        field_side_m: deployment field side.
        tsp_strategy: TSP pipeline name for all planners.
        base_seed: root of the per-run seed derivation.
        jobs: worker processes for the per-seed loop (1 = serial).  The
            per-run seeds are derived, not sequential, so results are
            identical at any job count; only wall-clock changes.
        use_cache: enable the in-memory stage-memoization cache
            (:mod:`repro.cache`).  Hits are bit-identical to recompute,
            so results are unchanged; only wall-clock changes.
        cache_dir: opt-in on-disk cache store shared across runs (and
            across ``--jobs`` workers); implies stage memoization.
        cache_entries: LRU bound of the in-memory stage cache.
        shadow_verify: fraction of cache hits to shadow-verify (the hit
            is recomputed and must be bit-identical, else the run
            fails loudly).  0 disables, 1 checks every hit.
        warm_start: opt-in TSP 2-opt warm start from the previous tour
            of the same size.  Changes which local optimum 2-opt finds,
            so it is excluded from paper-figure defaults.
        shared_deployment: opt-in sweep mode deriving deployment seeds
            *without* the radius, so a radius sweep reuses one
            deployment per (node_count, run) across all radii (common
            random numbers).  Changes the sampled deployments, so it is
            excluded from paper-figure defaults.
    """

    runs: int = 10
    node_count: int = 100
    node_counts: Tuple[int, ...] = constants.NODE_COUNTS
    radii: Tuple[float, ...] = constants.BUNDLE_RADII_M
    default_radius: float = 20.0
    field_side_m: float = constants.FIELD_SIDE_M
    tsp_strategy: str = "nn+2opt"
    base_seed: int = 20190707  # ICDCS 2019 presentation week
    jobs: int = 1
    use_cache: bool = False
    cache_dir: Optional[str] = None
    cache_entries: int = 256
    shadow_verify: float = 0.0
    warm_start: bool = False
    shared_deployment: bool = False

    def __post_init__(self) -> None:
        if self.runs <= 0:
            raise ExperimentError(f"runs must be positive: {self.runs!r}")
        if self.jobs <= 0:
            raise ExperimentError(f"jobs must be positive: {self.jobs!r}")
        if self.cache_entries <= 0:
            raise ExperimentError(
                f"cache_entries must be positive: {self.cache_entries!r}")
        if not 0.0 <= self.shadow_verify <= 1.0:
            raise ExperimentError(
                f"shadow_verify must be in [0, 1]: {self.shadow_verify!r}")
        if self.node_count <= 0:
            raise ExperimentError(
                f"node_count must be positive: {self.node_count!r}")
        if not (math.isfinite(self.default_radius)
                and self.default_radius > 0.0):
            raise ExperimentError(
                f"default_radius must be a positive finite number: "
                f"{self.default_radius!r}")
        if not self.radii:
            raise ExperimentError("need at least one radius")
        if not self.node_counts:
            raise ExperimentError("need at least one node count")

    def cost(self) -> CostParameters:
        """Return the paper's cost parameters (fresh instance)."""
        return CostParameters.paper_defaults()

    @staticmethod
    def paper() -> "ExperimentConfig":
        """Full paper scale: 100 runs per point (slow!)."""
        return ExperimentConfig(runs=constants.PAPER_RUNS)

    @staticmethod
    def default() -> "ExperimentConfig":
        """Laptop scale: 10 runs per point."""
        return ExperimentConfig()

    @staticmethod
    def fast() -> "ExperimentConfig":
        """CI/benchmark scale: tiny but shape-preserving."""
        return ExperimentConfig(
            runs=2,
            node_count=60,
            node_counts=(40, 80, 120),
            radii=(10.0, 20.0, 30.0, 40.0),
        )

    def with_runs(self, runs: int) -> "ExperimentConfig":
        """Return a copy with a different run count."""
        return replace(self, runs=runs)
