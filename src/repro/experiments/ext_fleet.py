"""extFleet — multi-charger makespan scaling (beyond the paper).

Splits the BC-OPT mission across k = 1..8 chargers (contiguous-cut
m-TSP, :func:`repro.fleet.split_plan`) and reports makespan, speedup
and the energy overhead of the extra depot legs — the deployment
question the paper's refs [26, 27] motivate.
"""

from __future__ import annotations

from typing import List

from ..fleet import split_plan
from ..network import derive_seed, uniform_deployment
from ..planners import BundleChargingOptPlanner
from .aggregate import mean_std
from .config import ExperimentConfig
from .tables import ResultTable

EXPERIMENT_ID = "extFleet"

FLEET_SIZES = (1, 2, 3, 4, 6, 8)

#: Charger ground speed for the makespan accounting (m/s).
SPEED_M_PER_S = 1.0


def run(config: ExperimentConfig) -> List[ResultTable]:
    """Regenerate the fleet-scaling table."""
    radius = config.default_radius
    cost = config.cost()
    table = ResultTable(
        f"extFleet: BC-OPT mission split over k chargers "
        f"({config.node_count} nodes, radius {radius:.0f} m)",
        ["chargers", "makespan_h", "speedup", "energy_kj",
         "overhead_pct"])

    per_k = {k: {"makespan": [], "energy": []} for k in FLEET_SIZES}
    for run_index in range(config.runs):
        seed = derive_seed(config.base_seed, EXPERIMENT_ID, run_index)
        network = uniform_deployment(config.node_count, seed,
                                     field_side_m=config.field_side_m)
        plan = BundleChargingOptPlanner(
            radius, tsp_strategy=config.tsp_strategy).plan(network,
                                                           cost)
        for k in FLEET_SIZES:
            fleet = split_plan(plan, k, cost,
                               speed_m_per_s=SPEED_M_PER_S)
            per_k[k]["makespan"].append(fleet.makespan_s / 3600.0)
            per_k[k]["energy"].append(fleet.total_energy_j / 1000.0)

    base_makespan = mean_std(per_k[1]["makespan"]).mean
    base_energy = mean_std(per_k[1]["energy"]).mean
    for k in FLEET_SIZES:
        makespan = mean_std(per_k[k]["makespan"])
        energy = mean_std(per_k[k]["energy"])
        speedup = (base_makespan / makespan.mean
                   if makespan.mean > 0 else 1.0)
        overhead = 100.0 * (energy.mean / base_energy - 1.0) \
            if base_energy > 0 else 0.0
        table.add_row(chargers=k, makespan_h=makespan,
                      speedup=speedup, energy_kj=energy,
                      overhead_pct=overhead)
    return [table]


def main(config: ExperimentConfig = None) -> List[ResultTable]:
    """CLI entry point: run and print."""
    from .tables import print_tables
    tables = run(config or ExperimentConfig.default())
    print_tables(tables)
    return tables
