"""Simulated testbed hardware (paper Section VII).

We do not have the physical Powercast robot-car rig, so this module
models its components explicitly — the substitution DESIGN.md documents:

* :class:`RobotCar` — a 0.3 m/s ground vehicle with the same 5.59 J/m
  movement cost the paper reuses from simulation.
* :class:`PowerharvesterSensor` — a P2110-backed node that reports its
  harvested energy to the access point.
* :class:`AccessPoint` — collects sensor reports, like the laptop+AP in
  Fig. 15.

The RF front end lives in :class:`repro.charging.PowercastChargingModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from .. import constants
from ..errors import ModelError
from ..geometry import Point


@dataclass
class RobotCar:
    """The TX91501-carrying robot car.

    Attributes:
        speed_m_per_s: ground speed (paper: 0.3 m/s).
        move_cost_j_per_m: movement energy cost (paper reuses 5.59 J/m).
        position: current location.
        odometer_m: total driven distance.
        energy_spent_j: movement energy spent so far.
    """

    speed_m_per_s: float = constants.TESTBED_SPEED_M_PER_S
    move_cost_j_per_m: float = constants.MOVE_COST_J_PER_M
    position: Point = field(default_factory=lambda: Point(0.0, 0.0))
    odometer_m: float = 0.0
    energy_spent_j: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_m_per_s <= 0.0:
            raise ModelError(f"invalid speed: {self.speed_m_per_s!r}")
        if self.move_cost_j_per_m < 0.0:
            raise ModelError(
                f"invalid move cost: {self.move_cost_j_per_m!r}")

    def drive_to(self, destination: Point) -> float:
        """Drive to ``destination``; return the travel time in seconds."""
        length = self.position.distance_to(destination)
        self.position = destination
        self.odometer_m += length
        self.energy_spent_j += length * self.move_cost_j_per_m
        return length / self.speed_m_per_s


@dataclass
class PowerharvesterSensor:
    """A P2110-equipped sensor that reports harvests to the AP.

    Attributes:
        index: sensor id.
        location: deployment position.
        required_j: target energy (paper: 4 mJ per node).
        harvested_j: running total.
    """

    index: int
    location: Point
    required_j: float = constants.TESTBED_DELTA_J
    harvested_j: float = 0.0

    def receive(self, power_w: float, duration_s: float) -> float:
        """Harvest ``power_w`` for ``duration_s``; return the credit."""
        if power_w < 0.0 or duration_s < 0.0:
            raise ModelError("power and duration must be non-negative")
        credit = power_w * duration_s
        self.harvested_j += credit
        return credit

    @property
    def charged(self) -> bool:
        """True once the requirement is met."""
        return self.harvested_j >= self.required_j - 1e-15


class AccessPoint:
    """Collects per-sensor harvest reports (the laptop + AP of Fig. 15)."""

    def __init__(self) -> None:
        self._reports: List[Dict] = []

    def report(self, sensor_index: int, time_s: float,
               harvested_j: float) -> None:
        """Record one report frame."""
        if not math.isfinite(time_s) or time_s < 0.0:
            raise ModelError(f"invalid report time: {time_s!r}")
        self._reports.append({
            "sensor": sensor_index,
            "time_s": time_s,
            "harvested_j": harvested_j,
        })

    @property
    def reports(self) -> List[Dict]:
        """Return all collected reports."""
        return list(self._reports)

    def latest_by_sensor(self) -> Dict[int, float]:
        """Return the last reported harvest per sensor."""
        latest: Dict[int, float] = {}
        for frame in self._reports:
            latest[frame["sensor"]] = frame["harvested_j"]
        return latest
