"""Testbed runner: execute a planner on the simulated hardware.

Unlike the field simulator (which credits harvests analytically per
dwell), the testbed runner steps the robot car and sensors through the
mission with the hardware objects of :mod:`repro.testbed.hardware`, and
the AP collects live reports — the closest synthetic equivalent of the
paper's Fig. 15 rig.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ValidationError
from ..planners import Planner
from ..tour import ChargingPlan, evaluate_plan
from .hardware import AccessPoint, PowerharvesterSensor, RobotCar
from .scenario import TestbedScenario

#: AP report interval while charging (seconds).
REPORT_INTERVAL_S = 1.0


@dataclass(frozen=True)
class TestbedRun:
    """Result of one testbed mission.

    Attributes:
        plan: the executed plan.
        total_energy_j: movement + radiated charging energy.
        movement_energy_j: robot-car movement energy.
        charging_energy_j: radiated energy (p_c * total dwell).
        tour_length_m: driven distance.
        mission_time_s: wall-clock mission duration.
        charged_sensors: how many sensors met their requirement.
        reports: number of AP report frames collected.
    """

    plan: ChargingPlan
    total_energy_j: float
    movement_energy_j: float
    charging_energy_j: float
    tour_length_m: float
    mission_time_s: float
    charged_sensors: int
    reports: int


def run_testbed(planner: Planner, scenario: TestbedScenario,
                strict: bool = True) -> TestbedRun:
    """Plan and execute one mission on the simulated testbed.

    Args:
        planner: any registered planner (SC / CSS / BC / BC-OPT).
        scenario: the testbed configuration.
        strict: raise when a sensor ends under-charged.

    Raises:
        ValidationError: in strict mode on an under-charged sensor.
    """
    network = scenario.network
    cost = scenario.cost
    plan = planner.plan(network, cost)
    # Static economics (for cross-checking against the drive-through).
    metrics = evaluate_plan(plan, network.locations, cost)

    car = RobotCar(speed_m_per_s=scenario.speed_m_per_s,
                   move_cost_j_per_m=cost.move_cost_j_per_m,
                   position=plan.depot or plan.stops[0].position)
    sensors = [PowerharvesterSensor(index=s.index, location=s.location,
                                    required_j=s.required_j)
               for s in network]
    ap = AccessPoint()

    clock_s = 0.0
    charging_energy = 0.0
    for stop in plan.stops:
        clock_s += car.drive_to(stop.position)
        clock_s += _dwell(stop, sensors, cost, ap, clock_s)
        charging_energy += cost.model.source_power_w * stop.dwell_s
    if plan.depot is not None:
        clock_s += car.drive_to(plan.depot)

    charged = sum(1 for sensor in sensors if sensor.charged)
    if strict and charged < len(sensors):
        lagging = [s.index for s in sensors if not s.charged]
        raise ValidationError(
            f"testbed mission left sensors {lagging} under-charged")

    total = car.energy_spent_j + charging_energy
    # Cross-check: the hardware walk must agree with the static evaluator.
    if abs(total - metrics.total_j) > 1e-6 * max(1.0, metrics.total_j):
        raise ValidationError(
            f"testbed economics ({total:.6f} J) diverged from the plan "
            f"evaluator ({metrics.total_j:.6f} J)")

    return TestbedRun(
        plan=plan,
        total_energy_j=total,
        movement_energy_j=car.energy_spent_j,
        charging_energy_j=charging_energy,
        tour_length_m=car.odometer_m,
        mission_time_s=clock_s,
        charged_sensors=charged,
        reports=len(ap.reports),
    )


def _dwell(stop, sensors: List[PowerharvesterSensor], cost,
           ap: AccessPoint, start_s: float) -> float:
    """Radiate at ``stop`` for its dwell; sensors harvest, AP collects."""
    dwell = stop.dwell_s
    if dwell <= 0.0:
        return 0.0
    # Report frames at a fixed cadence, plus one final frame at dwell end.
    ticks = int(dwell // REPORT_INTERVAL_S)
    boundaries = [REPORT_INTERVAL_S * t for t in range(1, ticks + 1)]
    if not boundaries or boundaries[-1] < dwell:
        boundaries.append(dwell)
    previous = 0.0
    for boundary in boundaries:
        interval = boundary - previous
        previous = boundary
        for sensor in sensors:
            distance = stop.position.distance_to(sensor.location)
            power = cost.model.received_power(distance)
            if power <= 0.0:
                continue
            sensor.receive(power, interval)
            ap.report(sensor.index, start_s + boundary,
                      sensor.harvested_j)
    return dwell


def compare_planners(planners: Dict[str, Planner],
                     scenario: TestbedScenario
                     ) -> List[Tuple[str, TestbedRun]]:
    """Run several planners on the same scenario; return labeled results."""
    results = []
    for name, planner in planners.items():
        results.append((name, run_testbed(planner, scenario)))
    return results
