"""Simulated Powercast testbed (the paper's Section VII rig)."""

from .hardware import AccessPoint, PowerharvesterSensor, RobotCar
from .runner import (REPORT_INTERVAL_S, TestbedRun, compare_planners,
                     run_testbed)
from .scenario import TestbedScenario, paper_testbed

__all__ = [
    "AccessPoint",
    "PowerharvesterSensor",
    "REPORT_INTERVAL_S",
    "RobotCar",
    "TestbedRun",
    "TestbedScenario",
    "compare_planners",
    "paper_testbed",
    "run_testbed",
]
