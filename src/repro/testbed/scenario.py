"""The paper's testbed scenario: 6 sensors in a 5 m x 5 m office.

Coordinates (1,1), (1,3), (1,4), (2,4), (4,4), (4,1) from Section VII.
The scenario packages network + cost parameters so the planners and the
testbed runner consume one object.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants
from ..charging import CostParameters, PowercastChargingModel
from ..network import SensorNetwork, testbed_deployment


@dataclass(frozen=True)
class TestbedScenario:
    """A ready-to-run testbed configuration.

    Attributes:
        network: the 6-sensor office network.
        cost: Powercast model + movement cost + 4 mJ requirement.
        speed_m_per_s: robot-car speed.
    """

    network: SensorNetwork
    cost: CostParameters
    speed_m_per_s: float


def paper_testbed(harvester_efficiency: float = 0.55,
                  required_j: float = constants.TESTBED_DELTA_J
                  ) -> TestbedScenario:
    """Build the Section VII scenario.

    Args:
        harvester_efficiency: P2110 RF-to-DC efficiency to assume.
        required_j: per-sensor energy target (paper: 4 mJ).
    """
    model = PowercastChargingModel(
        harvester_efficiency=harvester_efficiency)
    network = testbed_deployment(required_j=required_j)
    cost = CostParameters(
        model=model,
        move_cost_j_per_m=constants.MOVE_COST_J_PER_M,
        delta_j=required_j,
    )
    return TestbedScenario(
        network=network,
        cost=cost,
        speed_m_per_s=constants.TESTBED_SPEED_M_PER_S,
    )
