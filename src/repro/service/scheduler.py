"""The planning scheduler: bounded queue, micro-batching, worker pool.

Requests enter as canonical request dicts and are grouped into
**micro-batches** by :func:`repro.service.request.request_digest`:
while a digest is open (queued or executing), every further submission
of the same canonical request *joins* the existing batch — one compute,
N responses — which is safe precisely because payloads are pure
functions of the canonical request.

**Admission control** bounds the number of open batches at
``queue_limit``.  A submission that would open batch ``queue_limit+1``
is shed immediately with :class:`OverloadedError` (the HTTP layer maps
it to 429) instead of queuing unboundedly; joins are always admitted
because they add no work.  ``Q + k`` concurrent distinct requests
against a limit of ``Q`` therefore yield exactly ``k`` rejections.

A fixed pool of ``jobs`` worker threads drains the queue — the serving
analogue of the experiment runner's ``--jobs`` fan-out, but with
threads, since one process must share one cache and one tracer.  When
span tracing is live, computes serialize under a module lock (the
tracer's span stack is not thread-safe) and each request records a
``service.request`` span.

Shutdown is graceful by default: :meth:`PlanningScheduler.shutdown`
stops admissions (:class:`DrainingError`), lets the queue drain, then
joins the workers.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..clock import monotonic
from ..errors import ServiceError
from .request import request_digest

try:  # tracing is optional: the scheduler works with repro.obs absent
    from ..obs.tracer import TRACER as _TRACER, obs_span

    def _tracing_enabled() -> bool:
        return _TRACER.enabled
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()

    def _tracing_enabled() -> bool:
        return False

#: Serializes traced computes: the span tracer keeps one process-wide
#: stack, so only one worker may trace at a time.  Held only while
#: tracing is enabled; the untraced hot path runs fully parallel.
_TRACE_LOCK = threading.Lock()


def _reinit_trace_lock() -> None:
    """Replace the trace lock after fork.

    A fork can land while a parent worker thread holds the lock; the
    child inherits it locked with no thread to release it.  Worker
    threads themselves do not survive the fork, so a fresh lock is the
    correct child state (the pre-forked worker pool of ROADMAP item 1
    forks before serving threads start, making this a safety net).
    """
    global _TRACE_LOCK
    _TRACE_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # not available on all platforms
    os.register_at_fork(after_in_child=_reinit_trace_lock)

__all__ = ["DrainingError", "OverloadedError", "PlanningScheduler"]

Compute = Callable[[Dict[str, Any]], Tuple[Dict[str, Any], str]]


class OverloadedError(ServiceError):
    """Admission rejection: the open-batch queue is full (HTTP 429)."""


class DrainingError(ServiceError):
    """Admission rejection: the service is shutting down (HTTP 503)."""


class Batch:
    """One open micro-batch: a canonical request and its completion.

    Attributes:
        digest: the canonical request digest (the batching key).
        request: the canonical request dict.
        done: set once ``payload``/``outcome`` or ``error`` is final.
        waiters: how many submissions share this batch.
        submitted: monotonic admission time (queue-wait anchor).
        queue_wait_s: admission → compute-start delay, set on dequeue.
        compute_s: compute duration, set when the batch settles.
    """

    __slots__ = ("digest", "request", "done", "payload", "outcome",
                 "error", "waiters", "submitted", "queue_wait_s",
                 "compute_s")

    def __init__(self, digest: str, request: Dict[str, Any]) -> None:
        self.digest = digest
        self.request = request
        self.done = threading.Event()
        self.payload: Optional[Dict[str, Any]] = None
        self.outcome = "off"
        self.error: Optional[BaseException] = None
        self.waiters = 1
        self.submitted = monotonic()
        self.queue_wait_s: Optional[float] = None
        self.compute_s: Optional[float] = None


class PlanningScheduler:
    """Micro-batching request scheduler over a thread worker pool.

    Args:
        compute: ``request -> (payload, outcome)`` — typically
            :func:`repro.service.executor.execute_request` partially
            applied to the service cache.
        jobs: worker-thread count.
        queue_limit: maximum open (queued + executing) batches.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`
            receiving per-batch queue-wait/compute histograms labeled
            by planner and cache outcome.  A plain duck-typed object so
            the scheduler never imports ``repro.obs`` itself.
    """

    def __init__(self, compute: Compute, jobs: int = 2,
                 queue_limit: int = 32,
                 metrics: Optional[Any] = None) -> None:
        if jobs <= 0:
            raise ServiceError(f"jobs must be positive: {jobs!r}")
        if queue_limit <= 0:
            raise ServiceError(
                f"queue_limit must be positive: {queue_limit!r}")
        self._compute = compute
        self._metrics = metrics
        self.queue_limit = queue_limit
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._settled = threading.Condition(self._lock)
        self._queue: "deque[Batch]" = deque()
        self._inflight: Dict[str, Batch] = {}
        self._open = 0
        self._draining = False
        self._stopped = False
        self._counters = {
            "accepted": 0, "joined": 0, "rejected": 0, "drained": 0,
            "completed": 0, "failed": 0, "timeouts": 0,
        }
        self._workers: List[threading.Thread] = [
            threading.Thread(target=self._worker_loop,
                             name=f"plan-worker-{index}", daemon=True)
            for index in range(jobs)
        ]
        for worker in self._workers:
            worker.start()

    # --- admission --------------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> Batch:
        """Admit one canonical request; return the batch serving it.

        Raises:
            DrainingError: the scheduler is shutting down.
            OverloadedError: admitting a new batch would exceed
                ``queue_limit`` (joins never overload).
        """
        digest = request_digest(request)
        with self._lock:
            if self._draining:
                self._counters["drained"] += 1
                raise DrainingError(
                    "service is draining; request not admitted")
            batch = self._inflight.get(digest)
            if batch is not None:
                batch.waiters += 1
                self._counters["accepted"] += 1
                self._counters["joined"] += 1
                return batch
            if self._open >= self.queue_limit:
                self._counters["rejected"] += 1
                raise OverloadedError(
                    f"open-batch limit reached "
                    f"({self.queue_limit}); request shed")
            batch = Batch(digest, request)
            self._inflight[digest] = batch
            self._open += 1
            self._queue.append(batch)
            self._counters["accepted"] += 1
            self._work.notify()
            return batch

    def wait(self, batch: Batch, timeout_s: Optional[float]) -> bool:
        """Block until ``batch`` settles; False on timeout (counted)."""
        if batch.done.wait(timeout_s):
            return True
        with self._lock:
            self._counters["timeouts"] += 1
        return False

    # --- execution --------------------------------------------------------

    def _run(self, batch: Batch) -> Tuple[Dict[str, Any], str]:
        if not _tracing_enabled():
            return self._compute(batch.request)
        with _TRACE_LOCK:
            with obs_span("service.request",
                          request_sha256=batch.digest,
                          planner=batch.request["planner"]) as span:
                payload, outcome = self._compute(batch.request)
                if span:
                    span.set(cache_outcome=outcome,
                             waiters=batch.waiters)
                return payload, outcome

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._stopped:
                    self._work.wait()
                if not self._queue:
                    return
                batch = self._queue.popleft()
            started = monotonic()
            batch.queue_wait_s = started - batch.submitted
            failed = False
            try:
                batch.payload, batch.outcome = self._run(batch)
            except BaseException as exc:  # settle waiters, keep worker
                batch.error = exc
                failed = True
            batch.compute_s = monotonic() - started
            with self._lock:
                self._inflight.pop(batch.digest, None)
                self._open -= 1
                self._counters["failed" if failed else "completed"] += 1
                batch.done.set()
                self._settled.notify_all()
            metrics = self._metrics
            if metrics is not None:
                planner = batch.request.get("planner", "?")
                outcome = "error" if failed else batch.outcome
                metrics.observe("service.queue_wait_seconds",
                                batch.queue_wait_s, planner=planner)
                metrics.observe("service.compute_seconds",
                                batch.compute_s, planner=planner,
                                outcome=outcome)
                metrics.inc("service.batches", planner=planner,
                            outcome=outcome)

    # --- lifecycle --------------------------------------------------------

    def shutdown(self, drain: bool = True,
                 timeout_s: Optional[float] = None) -> None:
        """Stop admissions and the workers.

        Args:
            drain: finish every open batch first (graceful); otherwise
                queued-but-unstarted batches settle with
                :class:`DrainingError`.
            timeout_s: optional bound on the graceful drain wait.
        """
        with self._lock:
            self._draining = True
            if drain:
                while self._open:
                    if not self._settled.wait(timeout=timeout_s):
                        break
            else:
                while self._queue:
                    batch = self._queue.popleft()
                    self._inflight.pop(batch.digest, None)
                    self._open -= 1
                    batch.error = DrainingError(
                        "service shut down before execution")
                    batch.done.set()
            self._stopped = True
            self._work.notify_all()
        for worker in self._workers:
            worker.join()

    # --- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Return a consistent snapshot of queue state and counters."""
        with self._lock:
            return {
                "jobs": len(self._workers),
                "queue_limit": self.queue_limit,
                "queue_depth": len(self._queue),
                "open_batches": self._open,
                "draining": self._draining,
                "counters": dict(self._counters),
            }
