"""Request execution: canonical request -> deterministic payload.

:func:`plan_payload` is the pure function at the heart of the service —
it deploys (or reconstructs) the sensor network, runs the requested
planner and evaluates the resulting charging plan, returning a plain
JSON-able payload.  The payload depends only on the canonical request,
which is what makes the service's byte-identity contract possible.

:func:`execute_request` layers the stage cache on top: the whole
payload is one content-addressed ``service_request`` stage, and the
deployment underneath reuses the experiment runner's ``deployment``
stage (so a warm sweep cache also warms the service, and vice versa).
Both layers follow the ImportError-safe pattern — with ``repro.cache``
absent the service still answers, reporting ``"cache": "off"``.
"""

from __future__ import annotations

from typing import Any, Dict, MutableMapping, Optional, Tuple

from ..delta.engine import DEFAULT_MAX_RATIO, repair_plan
from ..delta.session import (PlanSession, plan_to_dict, state_digest)
from ..delta.store import SessionStore
from ..errors import DeltaError
from ..geometry import Point
from ..network import Sensor, SensorNetwork
from ..planners import make_planner
from ..tour import evaluate_plan
from .request import build_cost, request_digest

try:  # memoization is optional: the service works with repro.cache absent
    from ..cache import StageCache, activate_cache, stage_memo
    _HAVE_CACHE = True
except ImportError:  # pragma: no cover - repro.cache stripped/blocked
    from contextlib import nullcontext as _cache_nullcontext

    StageCache = None  # type: ignore[assignment, misc]
    _HAVE_CACHE = False

    def activate_cache(cache):  # type: ignore[misc]
        return _cache_nullcontext()

    def stage_memo(stage, params_fn, compute):  # type: ignore[misc]
        return compute()

__all__ = ["cache_for_service", "delta_plan_payload", "execute_delta",
           "execute_request", "plan_payload", "request_network"]


def request_network(request: Dict[str, Any]) -> SensorNetwork:
    """Materialize the sensor network of a canonical request.

    Uniform deployments route through the experiment runner's
    ``deployment`` cache stage (shared key vocabulary — a service
    deployment and a sweep deployment with the same parameters are one
    cache entry); inline deployments are rebuilt directly from the
    request's coordinates.
    """
    spec = request["deployment"]
    required_j = request["charging"]["delta_j"]
    if spec["kind"] == "uniform":
        from ..experiments.runner import deployment_stage
        return deployment_stage(spec["n"], spec["seed"],
                                spec["field_side_m"],
                                required_j=required_j)
    sensors = [Sensor(index, Point(x, y), required_j=required_j)
               for index, (x, y) in enumerate(spec["sensors"])]
    return SensorNetwork(sensors, spec["field_side_m"])


def _plan_dict(plan: Any) -> Dict[str, Any]:
    """Serialize a :class:`repro.tour.ChargingPlan` JSON-ably.

    Delegates to :func:`repro.delta.session.plan_to_dict` — the single
    source of the plan wire shape — so a ``/v1/plan`` payload and a
    ``/v1/plan/delta`` payload carrying the same plan are byte-equal.
    """
    return plan_to_dict(plan)


def plan_payload(request: Dict[str, Any]) -> Dict[str, Any]:
    """Compute the deterministic payload of one canonical request.

    Pure: the same canonical request always yields a payload whose
    canonical JSON is byte-identical (floats round-trip through
    ``repr``; sensor sets serialize sorted).
    """
    cost = build_cost(request["charging"])
    network = request_network(request)
    planner = make_planner(request["planner"], request["radius_m"],
                           tsp_strategy=request["tsp_strategy"],
                           seed=request["seed"])
    plan = planner.plan(network, cost)
    metrics = evaluate_plan(plan, network.locations, cost)
    return {
        "request": request,
        "request_sha256": request_digest(request),
        "plan": _plan_dict(plan),
        "metrics": metrics.as_row(),
        "sensor_count": len(network),
    }


def execute_request(request: Dict[str, Any],
                    cache: Optional["StageCache"] = None
                    ) -> Tuple[Dict[str, Any], str]:
    """Serve one canonical request, through the cache when available.

    Returns:
        ``(payload, outcome)`` where outcome is ``hit`` (served from the
        cache), ``miss`` (computed and stored), or ``off`` (no cache).
        The payload is identical in all three cases — the cache's
        bit-identity contract is what licenses the ``hit`` path.
    """
    if cache is None or not _HAVE_CACHE:
        return plan_payload(request), "off"
    params = {"request": request}
    outcome = ("hit" if cache.contains("service_request", params)
               else "miss")
    with activate_cache(cache):
        payload = stage_memo("service_request", lambda: params,
                             lambda: plan_payload(request))
    return payload, outcome


def delta_plan_payload(request: Dict[str, Any], session: PlanSession
                       ) -> Tuple[Dict[str, Any], Any]:
    """Repair one session against a canonical delta request.

    Pure given ``(request, session)`` — and the session is itself a
    pure function of its handle (handles are content digests), so the
    payload is fully determined by the canonical request, which is what
    licenses caching it under the ``delta_request`` stage.

    Returns:
        ``(payload, report)`` — the deterministic payload plus the
        :class:`~repro.delta.engine.RepairReport` (whose shadow-only
        fields stay out of the payload).
    """
    cost = build_cost(session.request["charging"])
    new_state, report = repair_plan(
        session.state, request["deltas"], cost,
        shadow=request.get("_shadow", False),
        max_ratio=request.get("_max_ratio", DEFAULT_MAX_RATIO))
    if report.strategy == "noop":
        successor = session.handle
    else:
        successor = (f"{session.root}."
                     f"{state_digest(session.root, new_state)}")
    metrics = evaluate_plan(new_state.plan, new_state.locations, cost)
    # Strip the transport-side underscore knobs (shadow configuration)
    # before embedding/digesting: the wire request is what the payload
    # must be a pure function of.
    wire_request = {key: value for key, value in request.items()
                    if not key.startswith("_")}
    payload = {
        "request": wire_request,
        "request_sha256": request_digest(wire_request),
        "plan": plan_to_dict(new_state.plan),
        "metrics": metrics.as_row(),
        "alive_count": report.alive_count,
        "session": successor,
        "repair": report.as_payload_dict(),
    }
    return payload, report


def execute_delta(request: Dict[str, Any], sessions: SessionStore,
                  cache: Optional["StageCache"] = None, *,
                  shadow: bool = False,
                  max_ratio: float = DEFAULT_MAX_RATIO,
                  report_sink: Optional[MutableMapping] = None
                  ) -> Tuple[Dict[str, Any], str]:
    """Serve one canonical delta request, through the cache when on.

    The session is resolved here (not at admission) so the scheduler's
    compute stays a pure function of the canonical request; eviction
    between admission and compute surfaces as a :class:`DeltaError`.
    Shadow verification runs *inside* the compute — a bound violation
    fails the request rather than silently serving the repair — but its
    knobs and results never reach the payload, so bytes are identical
    with shadow on or off.

    Returns:
        ``(payload, outcome)`` exactly like :func:`execute_request`.
        When the repair actually ran (miss/off), its report lands in
        ``report_sink`` keyed by the request digest — transport-side
        only, for the ``X-BC-Delta-Ratio`` header and delta metrics.
    """
    handle = request["session"]
    session = sessions.get(handle)
    if session is None:
        raise DeltaError(
            f"session {handle!r} is no longer retained "
            f"(re-establish it via /v1/plan)")
    digest = request_digest(request)
    # Shadow knobs ride on underscore keys the payload strips: they are
    # transport configuration, not request content, and must not change
    # the cache key or the payload bytes.
    compute_request = dict(request)
    compute_request["_shadow"] = shadow
    compute_request["_max_ratio"] = max_ratio

    computed: Dict[str, Any] = {}

    def _compute() -> Dict[str, Any]:
        payload, report = delta_plan_payload(compute_request, session)
        computed["report"] = report
        return payload

    if cache is None or not _HAVE_CACHE:
        payload = _compute()
        outcome = "off"
    else:
        params = {"request": request}
        outcome = ("hit" if cache.contains("delta_request", params)
                   else "miss")
        with activate_cache(cache):
            payload = stage_memo("delta_request", lambda: params,
                                 _compute)
    if report_sink is not None and "report" in computed:
        report_sink[digest] = computed["report"]
    return payload, outcome


def cache_for_service(config: Any) -> Optional["StageCache"]:
    """Build the service's stage cache from a :class:`ServiceConfig`.

    Returns None (degraded or disabled mode) when caching is turned off
    or ``repro.cache`` is absent; the scheduler then reports every
    response as ``"cache": "off"``.
    """
    if not _HAVE_CACHE:
        return None
    if not (config.use_cache or config.cache_dir):
        return None
    return StageCache(max_entries=config.cache_entries,
                      cache_dir=config.cache_dir)
