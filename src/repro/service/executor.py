"""Request execution: canonical request -> deterministic payload.

:func:`plan_payload` is the pure function at the heart of the service —
it deploys (or reconstructs) the sensor network, runs the requested
planner and evaluates the resulting charging plan, returning a plain
JSON-able payload.  The payload depends only on the canonical request,
which is what makes the service's byte-identity contract possible.

:func:`execute_request` layers the stage cache on top: the whole
payload is one content-addressed ``service_request`` stage, and the
deployment underneath reuses the experiment runner's ``deployment``
stage (so a warm sweep cache also warms the service, and vice versa).
Both layers follow the ImportError-safe pattern — with ``repro.cache``
absent the service still answers, reporting ``"cache": "off"``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..geometry import Point
from ..network import Sensor, SensorNetwork
from ..planners import make_planner
from ..tour import evaluate_plan
from .request import build_cost, request_digest

try:  # memoization is optional: the service works with repro.cache absent
    from ..cache import StageCache, activate_cache, stage_memo
    _HAVE_CACHE = True
except ImportError:  # pragma: no cover - repro.cache stripped/blocked
    from contextlib import nullcontext as _cache_nullcontext

    StageCache = None  # type: ignore[assignment, misc]
    _HAVE_CACHE = False

    def activate_cache(cache):  # type: ignore[misc]
        return _cache_nullcontext()

    def stage_memo(stage, params_fn, compute):  # type: ignore[misc]
        return compute()

__all__ = ["cache_for_service", "execute_request", "plan_payload",
           "request_network"]


def request_network(request: Dict[str, Any]) -> SensorNetwork:
    """Materialize the sensor network of a canonical request.

    Uniform deployments route through the experiment runner's
    ``deployment`` cache stage (shared key vocabulary — a service
    deployment and a sweep deployment with the same parameters are one
    cache entry); inline deployments are rebuilt directly from the
    request's coordinates.
    """
    spec = request["deployment"]
    required_j = request["charging"]["delta_j"]
    if spec["kind"] == "uniform":
        from ..experiments.runner import deployment_stage
        return deployment_stage(spec["n"], spec["seed"],
                                spec["field_side_m"],
                                required_j=required_j)
    sensors = [Sensor(index, Point(x, y), required_j=required_j)
               for index, (x, y) in enumerate(spec["sensors"])]
    return SensorNetwork(sensors, spec["field_side_m"])


def _plan_dict(plan: Any) -> Dict[str, Any]:
    """Serialize a :class:`repro.tour.ChargingPlan` JSON-ably."""
    depot = plan.depot
    return {
        "label": plan.label,
        "depot": [depot.x, depot.y] if depot is not None else None,
        "stops": [
            {
                "position": [stop.position.x, stop.position.y],
                "sensors": sorted(stop.sensors),
                "dwell_s": stop.dwell_s,
            }
            for stop in plan.stops
        ],
        "tour_length_m": plan.tour_length(),
    }


def plan_payload(request: Dict[str, Any]) -> Dict[str, Any]:
    """Compute the deterministic payload of one canonical request.

    Pure: the same canonical request always yields a payload whose
    canonical JSON is byte-identical (floats round-trip through
    ``repr``; sensor sets serialize sorted).
    """
    cost = build_cost(request["charging"])
    network = request_network(request)
    planner = make_planner(request["planner"], request["radius_m"],
                           tsp_strategy=request["tsp_strategy"],
                           seed=request["seed"])
    plan = planner.plan(network, cost)
    metrics = evaluate_plan(plan, network.locations, cost)
    return {
        "request": request,
        "request_sha256": request_digest(request),
        "plan": _plan_dict(plan),
        "metrics": metrics.as_row(),
        "sensor_count": len(network),
    }


def execute_request(request: Dict[str, Any],
                    cache: Optional["StageCache"] = None
                    ) -> Tuple[Dict[str, Any], str]:
    """Serve one canonical request, through the cache when available.

    Returns:
        ``(payload, outcome)`` where outcome is ``hit`` (served from the
        cache), ``miss`` (computed and stored), or ``off`` (no cache).
        The payload is identical in all three cases — the cache's
        bit-identity contract is what licenses the ``hit`` path.
    """
    if cache is None or not _HAVE_CACHE:
        return plan_payload(request), "off"
    params = {"request": request}
    outcome = ("hit" if cache.contains("service_request", params)
               else "miss")
    with activate_cache(cache):
        payload = stage_memo("service_request", lambda: params,
                             lambda: plan_payload(request))
    return payload, outcome


def cache_for_service(config: Any) -> Optional["StageCache"]:
    """Build the service's stage cache from a :class:`ServiceConfig`.

    Returns None (degraded or disabled mode) when caching is turned off
    or ``repro.cache`` is absent; the scheduler then reports every
    response as ``"cache": "off"``.
    """
    if not _HAVE_CACHE:
        return None
    if not (config.use_cache or config.cache_dir):
        return None
    return StageCache(max_entries=config.cache_entries,
                      cache_dir=config.cache_dir)
