"""End-to-end service smoke check (used by CI as a job gate).

Starts a real server on an ephemeral port, drives it with ``urllib``
over actual sockets, and asserts the service's headline contracts:

1. the same request served twice returns **byte-identical payloads**,
   with the first a cache miss and the second a hit (when the cache is
   available — ``off``/``off`` in degraded builds);
2. malformed JSON and an unknown planner both answer 400 with typed
   error envelopes;
3. ``/healthz`` and ``/metrics`` respond and the metrics document
   carries the service-metrics schema;
4. a batch with duplicate items shares one compute (joined > 0);
5. shutdown is a graceful drain (exercised by stopping the server).

With ``--workers N`` (N >= 2) the sequence instead exercises the
pre-forked pool (:mod:`repro.service.pool`): same-shard routing of
identical requests, payload byte-identity against a single-process
server, aggregated ``/metrics`` with per-worker rows, and a drain
that leaves no orphan processes behind.

Run directly: ``python -m repro.service.smoke [--workers N]``.
Exit status 0 = all contracts hold.
"""

from __future__ import annotations

import argparse
import errno
import json
import os
import socket
import sys
import tempfile
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from .config import ServiceConfig
from .http import start_server, stop_server
from .metrics import metrics_problems
from .request import (METRICS_SCHEMA_V2, canonical_json,
                      canonical_request, response_problems)

__all__ = ["run_pool_smoke", "run_smoke"]


def _call(url: str, body: Optional[bytes] = None
          ) -> Tuple[int, Dict[str, str], Any]:
    """POST ``body`` (or GET) to ``url``; return (status, headers, doc)."""
    request = urllib.request.Request(
        url, data=body,
        headers={"Content-Type": "application/json"} if body else {})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            raw = response.read()
            status = response.status
            headers = dict(response.headers)
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        headers = dict(error.headers)
    return status, headers, json.loads(raw.decode("utf-8"))


def _plan_request(node_count: int) -> Dict[str, Any]:
    return {
        "schema": "bundle-charging/request/v1",
        "deployment": {"kind": "uniform", "n": node_count, "seed": 7},
        "planner": "BC",
        "radius_m": 20.0,
    }


def run_smoke(node_count: int = 60) -> int:
    """Run the smoke sequence; return 0 on success, 1 on any failure."""
    failures = []

    def check(condition: bool, label: str) -> None:
        print(("ok   " if condition else "FAIL ") + label)
        if not condition:
            failures.append(label)

    config = ServiceConfig(port=0, jobs=2, queue_limit=8, timeout_s=60.0)
    server, _ = start_server(config)
    base = f"http://{config.host}:{server.port}"
    body = json.dumps(_plan_request(node_count)).encode("utf-8")
    try:
        # 1. byte-identical replay + cache hit on the second serving.
        status_a, headers_a, doc_a = _call(f"{base}/v1/plan", body)
        status_b, headers_b, doc_b = _call(f"{base}/v1/plan", body)
        check(status_a == 200 and status_b == 200, "plan requests answer 200")
        check(not response_problems(doc_a), "envelope validates")
        payload_a = canonical_json(doc_a.get("payload"))
        payload_b = canonical_json(doc_b.get("payload"))
        check(payload_a == payload_b, "repeat payloads byte-identical")
        cache_available = doc_a.get("cache") != "off"
        if cache_available:
            check(doc_a.get("cache") == "miss"
                  and doc_b.get("cache") == "hit",
                  "cache outcome miss then hit")
            check(headers_a.get("X-BC-Cache") == "miss"
                  and headers_b.get("X-BC-Cache") == "hit",
                  "X-BC-Cache header matches envelope")
        else:
            check(doc_b.get("cache") == "off",
                  "degraded mode reports cache off")

        # 2. typed 400s for malformed and unknown-planner requests.
        status, _, doc = _call(f"{base}/v1/plan", b"{not json")
        check(status == 400
              and doc.get("error", {}).get("code") == "invalid-json",
              "malformed JSON answers 400 invalid-json")
        bad = dict(_plan_request(node_count), planner="NOPE")
        status, _, doc = _call(f"{base}/v1/plan",
                               json.dumps(bad).encode("utf-8"))
        check(status == 400
              and doc.get("error", {}).get("code") == "unknown-planner",
              "unknown planner answers 400 unknown-planner")

        # 3. health + metrics.
        status, _, doc = _call(f"{base}/healthz")
        check(status == 200 and doc.get("status") == "ok",
              "healthz answers ok")
        status, _, doc = _call(f"{base}/metrics")
        check(status == 200 and doc.get("schema") == METRICS_SCHEMA_V2,
              "metrics carries the service-metrics/v2 schema")
        check(not metrics_problems(doc), "metrics document validates")
        check(isinstance(doc.get("uptime_s"), (int, float)),
              "metrics reports uptime")

        # 4. duplicate batch items share one compute.
        other = dict(_plan_request(node_count), seed=1)
        canonical_request(other)  # sanity: the variant is valid too
        batch = {"requests": [_plan_request(node_count),
                              _plan_request(node_count), other]}
        status, _, doc = _call(f"{base}/v1/batch",
                               json.dumps(batch).encode("utf-8"))
        responses = doc.get("responses", [])
        check(status == 200 and len(responses) == 3
              and all(r.get("status") == "ok" for r in responses),
              "batch answers 3 ok envelopes")
        check(canonical_json(responses[0].get("payload"))
              == canonical_json(responses[1].get("payload")),
              "duplicate batch items byte-identical")
        status, _, doc = _call(f"{base}/metrics")
        joined = (doc.get("scheduler", {}).get("counters", {})
                  .get("joined", 0))
        check(joined >= 1 or responses[1].get("cache") in ("hit", "off"),
              "duplicate batch items shared one compute (join or hit)")
    finally:
        # 5. graceful drain.
        stop_server(server, drain=True)
    stats = server.scheduler.stats()
    check(stats["queue_depth"] == 0 and stats["open_batches"] == 0,
          "graceful drain leaves no open batches")

    if failures:
        print(f"{len(failures)} smoke check(s) failed", file=sys.stderr)
        return 1
    print("service smoke: all checks passed")
    return 0


def run_pool_smoke(workers: int = 2, node_count: int = 60) -> int:
    """Smoke the pre-forked pool; return 0 on success, 1 on failure."""
    from .pool import start_pool, stop_pool

    if not hasattr(os, "fork"):
        print("pool smoke skipped: platform has no os.fork()")
        return 0
    failures = []

    def check(condition: bool, label: str) -> None:
        print(("ok   " if condition else "FAIL ") + label)
        if not condition:
            failures.append(label)

    body = json.dumps(_plan_request(node_count)).encode("utf-8")

    # Reference payload from a plain single-process server.
    single = ServiceConfig(port=0, jobs=2, timeout_s=60.0)
    server, _ = start_server(single)
    try:
        _, _, doc = _call(
            f"http://{single.host}:{server.port}/v1/plan", body)
        reference = canonical_json(doc.get("payload"))
    finally:
        stop_server(server, drain=True)

    with tempfile.TemporaryDirectory(prefix="bc-smoke-") as warm:
        config = ServiceConfig(port=0, jobs=2, workers=workers,
                               timeout_s=60.0, cache_dir=warm)
        dispatcher, _ = start_pool(config)
        base = f"http://{config.host}:{dispatcher.port}"
        pids = [handle.pid for handle in dispatcher.workers]
        try:
            # 1. identical requests land on the same worker shard and
            #    the second serving is a shared-warm-tier hit.
            status_a, headers_a, doc_a = _call(f"{base}/v1/plan", body)
            status_b, headers_b, doc_b = _call(f"{base}/v1/plan", body)
            check(status_a == 200 and status_b == 200,
                  "pool plan requests answer 200")
            shard_a = headers_a.get("X-BC-Worker")
            shard_b = headers_b.get("X-BC-Worker")
            check(shard_a is not None and shard_a == shard_b,
                  "identical requests route to the same worker")
            check(doc_b.get("cache") == "hit",
                  "second serving hits the shared warm tier")

            # 2. payload bytes match the single-process server.
            check(canonical_json(doc_a.get("payload")) == reference,
                  "pool payload byte-identical to single server")

            # 3. aggregated metrics: one row per worker + dispatcher.
            status, _, doc = _call(f"{base}/metrics")
            check(status == 200
                  and doc.get("schema") == METRICS_SCHEMA_V2,
                  "pool metrics carries the service-metrics/v2 schema")
            check(not metrics_problems(doc),
                  "pool metrics document validates")
            rows = doc.get("workers", [])
            check(len(rows) == workers
                  and all(row.get("healthy") for row in rows),
                  f"metrics aggregates {workers} healthy workers")
            check(doc.get("dispatcher", {}).get("workers") == workers,
                  "dispatcher section reports the pool size")
        finally:
            # 4. graceful drain: no orphans, socket released.
            stop_pool(dispatcher, drain=True)
        orphans = []
        for pid in pids:
            try:
                os.kill(pid, 0)
                orphans.append(pid)
            except ProcessLookupError:
                pass
        check(orphans == [], "drain leaves no orphan workers")
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            refused = probe.connect_ex(
                (config.host, dispatcher.port)) == errno.ECONNREFUSED
        finally:
            probe.close()
        check(refused, "dispatcher socket released after drain")

    if failures:
        print(f"{len(failures)} pool smoke check(s) failed",
              file=sys.stderr)
        return 1
    print(f"pool smoke ({workers} workers): all checks passed")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="bundle-charging service smoke check")
    parser.add_argument("--workers", type=int, default=1,
                        help="pool size; >= 2 smokes the pre-forked "
                             "pool instead of the single server")
    parser.add_argument("--nodes", type=int, default=60,
                        help="deployment size of the smoke request")
    args = parser.parse_args(argv)
    if args.workers > 1:
        return run_pool_smoke(args.workers, args.nodes)
    return run_smoke(args.nodes)


if __name__ == "__main__":
    sys.exit(main())
