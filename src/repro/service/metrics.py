"""Service metrics: the ``/metrics`` document and its text exposition.

The JSON document (schema ``bundle-charging/service-metrics/v2``)
merges five sources into one self-describing snapshot:

* process identity: uptime, start timestamp, and the run-provenance
  manifest built at server startup (git SHA, package version, python,
  platform) — so a scraped snapshot can always be traced back to the
  code that produced it;
* the scheduler's queue/admission counters;
* the process-wide :data:`repro.perf.PERF` registry (kernel timers and
  the cache hit/miss/evict counters);
* the stage cache's store statistics;
* the server's :class:`repro.obs.metrics.MetricsRegistry` — request
  latency/queue-wait/compute histograms labeled by planner and cache
  outcome, with interpolated p50/p90/p95/p99 summaries inlined.

Every v1 key (``scheduler``, ``perf``, ``cache``) is still present at
the same place, so a v1 consumer keeps working; the ``schema`` field is
the discriminator.  :func:`prometheus_text` renders the same document
as Prometheus text exposition (served for ``Accept: text/plain`` or
``?format=prometheus``) without importing ``repro.obs`` — degraded
builds still expose counters and gauges, just no engine histograms.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..perf.counters import PERF, PerfRegistry
from .request import METRICS_SCHEMA, METRICS_SCHEMA_V2

try:  # observability is optional: summaries degrade away without it
    from ..obs.metrics import merge_snapshots as _merge_engine
    from ..obs.metrics import render_prometheus as _render_engine
    from ..obs.metrics import summarize_histogram as _summarize
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    _merge_engine = None  # type: ignore[assignment]
    _render_engine = None  # type: ignore[assignment]
    _summarize = None  # type: ignore[assignment]

__all__ = ["aggregate_worker_metrics", "metrics_problems",
           "metrics_snapshot", "prometheus_text"]

#: Keys shared by both schema generations.
_V1_KEYS = ("scheduler", "perf", "cache")
#: Keys v2 adds on top of the v1 shape.
_V2_KEYS = ("uptime_s", "started_unix", "provenance", "metrics")
#: Scheduler gauges summed across workers by the pool aggregation.
_SCHED_SUMMED = ("jobs", "queue_limit", "queue_depth", "open_batches")


def metrics_snapshot(scheduler: Any,
                     cache: Optional[Any] = None,
                     uptime_s: Optional[float] = None,
                     started_unix: Optional[float] = None,
                     provenance: Optional[Dict[str, Any]] = None,
                     registry: Optional[Any] = None) -> Dict[str, Any]:
    """Build the ``/metrics`` document.

    Args:
        scheduler: a :class:`repro.service.scheduler.PlanningScheduler`.
        cache: the service's :class:`repro.cache.StageCache`, or None
            when caching is off or ``repro.cache`` is absent.
        uptime_s: seconds since the server started (monotonic delta,
            measured by the caller).
        started_unix: wall-clock start timestamp of the process.
        provenance: the server's base run-provenance manifest, or None
            in degraded builds.
        registry: the server's metrics engine
            (:class:`repro.obs.metrics.MetricsRegistry`), or None when
            metrics are disabled or ``repro.obs`` is absent.
    """
    snapshot = PERF.snapshot()
    engine: Optional[Dict[str, Any]] = None
    if registry is not None and getattr(registry, "enabled", False):
        engine = registry.snapshot()
        if _summarize is not None:
            engine["histograms"] = [_summarize(entry)
                                    for entry in engine["histograms"]]
    return {
        "schema": METRICS_SCHEMA_V2,
        "uptime_s": (round(uptime_s, 6)
                     if uptime_s is not None else None),
        "started_unix": (round(started_unix, 6)
                         if started_unix is not None else None),
        "provenance": provenance,
        "scheduler": scheduler.stats(),
        "perf": {
            "counters": snapshot.get("counters", {}),
            "timers": snapshot.get("timers", {}),
        },
        "cache": cache.stats() if cache is not None else None,
        "metrics": engine,
    }


def aggregate_worker_metrics(entries: List[Dict[str, Any]],
                             uptime_s: Optional[float] = None,
                             started_unix: Optional[float] = None,
                             provenance: Optional[Dict[str, Any]] = None,
                             ring_replicas: Optional[int] = None
                             ) -> Dict[str, Any]:
    """Merge per-worker ``/metrics`` v2 documents into one pool view.

    The multi-process ``started_unix``/``uptime_s`` semantics: the
    top-level fields are the *parent's* (the pool is one service with
    one start time), while each worker's own pair lives in its row of
    the additive ``workers`` section.  Everything countable merges via
    the existing hand-off paths — scheduler counters and perf
    registries sum (:meth:`repro.perf.PerfRegistry.merge_snapshot`),
    engine histograms bucket-merge
    (:func:`repro.obs.metrics.merge_snapshots`) and are re-summarized.
    The in-memory cache tier sums across workers; the disk tier is the
    *shared* warm store, so it is reported once, not N times.

    Args:
        entries: one dict per worker with keys ``worker``, ``pid``,
            ``port``, ``routed``, and ``document`` (the worker's
            scraped v2 document, or None when the scrape failed —
            the row is then marked unhealthy and skipped).
        uptime_s: parent uptime (monotonic delta).
        started_unix: parent wall-clock start time.
        provenance: the dispatcher's base manifest, or None degraded.
        ring_replicas: vnodes per worker on the dispatch ring.
    """
    scheduler: Dict[str, Any] = {key: 0 for key in _SCHED_SUMMED}
    scheduler["draining"] = False
    counters: Dict[str, int] = {}
    perf = PerfRegistry(enabled=True)
    memory: Dict[str, int] = {"entries": 0, "bytes": 0,
                              "max_entries": 0}
    cache: Optional[Dict[str, Any]] = None
    engines: List[Dict[str, Any]] = []
    workers: List[Dict[str, Any]] = []
    for entry in entries:
        document = entry.get("document")
        row: Dict[str, Any] = {
            "worker": entry["worker"],
            "pid": entry.get("pid"),
            "port": entry.get("port"),
            "routed": int(entry.get("routed", 0)),
            "healthy": document is not None,
            "uptime_s": None,
            "started_unix": None,
        }
        if document is not None:
            row["uptime_s"] = document.get("uptime_s")
            row["started_unix"] = document.get("started_unix")
            sched = document.get("scheduler") or {}
            for key in _SCHED_SUMMED:
                value = sched.get(key)
                if isinstance(value, (int, float)):
                    scheduler[key] += value
            scheduler["draining"] = (scheduler["draining"]
                                     or bool(sched.get("draining")))
            for name, value in (sched.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
            perf.merge_snapshot(document.get("perf") or {})
            stats = document.get("cache")
            if isinstance(stats, dict):
                if cache is None:
                    cache = {"memory": memory}
                    for key in ("shadow_rate", "warm_start", "disk"):
                        if key in stats:
                            cache[key] = stats[key]
                tier = stats.get("memory")
                if isinstance(tier, dict):
                    for key in memory:
                        value = tier.get(key)
                        if isinstance(value, int):
                            memory[key] += value
            engine = document.get("metrics")
            if engine is not None:
                engines.append(engine)
        workers.append(row)
    scheduler["counters"] = dict(sorted(counters.items()))
    merged_engine: Optional[Dict[str, Any]] = None
    if engines and _merge_engine is not None:
        merged_engine = _merge_engine(engines)
        if _summarize is not None:
            merged_engine["histograms"] = [
                _summarize(entry)
                for entry in merged_engine["histograms"]]
    snapshot = perf.snapshot()
    dispatcher: Dict[str, Any] = {
        "workers": len(entries),
        "routed_total": sum(row["routed"] for row in workers),
    }
    if ring_replicas is not None:
        dispatcher["ring_replicas"] = ring_replicas
    return {
        "schema": METRICS_SCHEMA_V2,
        "uptime_s": (round(uptime_s, 6)
                     if uptime_s is not None else None),
        "started_unix": (round(started_unix, 6)
                         if started_unix is not None else None),
        "provenance": provenance,
        "scheduler": scheduler,
        "perf": {
            "counters": snapshot.get("counters", {}),
            "timers": snapshot.get("timers", {}),
        },
        "cache": cache,
        "metrics": merged_engine,
        "workers": workers,
        "dispatcher": dispatcher,
    }


def metrics_problems(document: Any) -> List[str]:
    """Return structural problems of a ``/metrics`` document.

    Accepts both schema generations: the v1 shape (``scheduler`` /
    ``perf`` / ``cache``) and the v2 superset (adds ``uptime_s``,
    ``started_unix``, ``provenance``, ``metrics``).  Multi-worker
    documents from :func:`aggregate_worker_metrics` stay schema v2
    with two *additive* sections, both validated when present:
    ``workers`` (one row per pool worker) and ``dispatcher`` (routing
    totals).
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["metrics document must be a JSON object"]
    schema = document.get("schema")
    if schema not in (METRICS_SCHEMA, METRICS_SCHEMA_V2):
        problems.append(
            f"unknown metrics schema {schema!r} (expected "
            f"{METRICS_SCHEMA!r} or {METRICS_SCHEMA_V2!r})")
        return problems
    for key in _V1_KEYS:
        if key not in document:
            problems.append(f"metrics document missing key {key!r}")
    scheduler = document.get("scheduler")
    if isinstance(scheduler, dict):
        if not isinstance(scheduler.get("counters"), dict):
            problems.append("scheduler section carries no counters")
    elif "scheduler" in document:
        problems.append("scheduler section must be an object")
    if schema == METRICS_SCHEMA:
        return problems
    for key in _V2_KEYS:
        if key not in document:
            problems.append(f"v2 metrics document missing key {key!r}")
    for key in ("uptime_s", "started_unix"):
        value = document.get(key)
        if value is not None and not isinstance(value, (int, float)):
            problems.append(f"{key} must be a number or null, "
                            f"got {value!r}")
    provenance = document.get("provenance")
    if provenance is not None and not isinstance(provenance, dict):
        problems.append("provenance must be an object or null")
    engine = document.get("metrics")
    if engine is not None:
        if not isinstance(engine, dict):
            problems.append("metrics section must be an object or null")
        else:
            for section in ("counters", "gauges", "histograms"):
                if not isinstance(engine.get(section), list):
                    problems.append(
                        f"metrics.{section} must be a list")
            for index, entry in enumerate(engine.get("histograms")
                                          or []):
                if not isinstance(entry, dict):
                    problems.append(
                        f"metrics.histograms[{index}] must be an object")
                    continue
                for key in ("name", "boundaries", "counts", "count",
                            "sum"):
                    if key not in entry:
                        problems.append(
                            f"metrics.histograms[{index}] missing "
                            f"key {key!r}")
    workers = document.get("workers")
    if workers is not None:
        if not isinstance(workers, list):
            problems.append("workers section must be a list")
        else:
            for index, row in enumerate(workers):
                if not isinstance(row, dict):
                    problems.append(
                        f"workers[{index}] must be an object")
                    continue
                for key in ("worker", "routed", "healthy"):
                    if key not in row:
                        problems.append(
                            f"workers[{index}] missing key {key!r}")
                for key in ("worker", "routed"):
                    value = row.get(key)
                    if key in row and (not isinstance(value, int)
                                       or isinstance(value, bool)):
                        problems.append(
                            f"workers[{index}].{key} must be an "
                            f"integer, got {value!r}")
                if "healthy" in row \
                        and not isinstance(row["healthy"], bool):
                    problems.append(
                        f"workers[{index}].healthy must be a boolean")
                for key in ("uptime_s", "started_unix"):
                    value = row.get(key)
                    if value is not None \
                            and not isinstance(value, (int, float)):
                        problems.append(
                            f"workers[{index}].{key} must be a "
                            f"number or null, got {value!r}")
    dispatcher = document.get("dispatcher")
    if dispatcher is not None:
        if not isinstance(dispatcher, dict):
            problems.append("dispatcher section must be an object")
        else:
            for key in ("workers", "routed_total"):
                value = dispatcher.get(key)
                if key not in dispatcher:
                    problems.append(
                        f"dispatcher section missing key {key!r}")
                elif not isinstance(value, int) \
                        or isinstance(value, bool):
                    problems.append(
                        f"dispatcher.{key} must be an integer, "
                        f"got {value!r}")
    return problems


# --- Prometheus text exposition ------------------------------------------

def _prom_name(name: str) -> str:
    """Sanitize a dotted/aliased name into Prometheus metric form."""
    sanitized = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch in "_:")) else "_"
        for ch in str(name))
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _line(lines: List[str], metric: str, value: Any,
          kind: Optional[str] = None,
          seen: Optional[Dict[str, str]] = None) -> None:
    if value is None:
        return
    if kind and seen is not None and seen.get(metric) != kind:
        seen[metric] = kind
        lines.append(f"# TYPE {metric} {kind}")
    if isinstance(value, bool):
        value = int(value)
    lines.append(f"{metric} {value}")


def prometheus_text(document: Dict[str, Any]) -> str:
    """Render a ``/metrics`` v2 document as Prometheus exposition text.

    Self-contained string formatting over the JSON document: process
    gauges, scheduler counters/gauges, cache stats and perf counters/
    timers always render; the engine section (labeled histograms) is
    delegated to :func:`repro.obs.metrics.render_prometheus` and simply
    omitted in degraded builds where it is ``None`` anyway.
    """
    lines: List[str] = []
    seen: Dict[str, str] = {}
    _line(lines, "bc_uptime_seconds", document.get("uptime_s"),
          "gauge", seen)
    _line(lines, "bc_process_start_time_seconds",
          document.get("started_unix"), "gauge", seen)

    scheduler = document.get("scheduler") or {}
    for name in ("jobs", "queue_limit", "queue_depth", "open_batches",
                 "draining"):
        _line(lines, f"bc_scheduler_{name}", scheduler.get(name),
              "gauge", seen)
    for name, value in (scheduler.get("counters") or {}).items():
        _line(lines, f"bc_scheduler_{_prom_name(name)}_total", value,
              "counter", seen)

    cache = document.get("cache")
    if isinstance(cache, dict):
        for name, value in sorted(cache.items()):
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                _line(lines, f"bc_cache_{_prom_name(name)}", value,
                      "gauge", seen)

    perf = document.get("perf") or {}
    for name, value in (perf.get("counters") or {}).items():
        _line(lines, f"bc_perf_{_prom_name(name)}_total", value,
              "counter", seen)
    for name, stats in (perf.get("timers") or {}).items():
        metric = f"bc_perf_{_prom_name(name)}"
        _line(lines, f"{metric}_seconds_total", stats.get("total_s"),
              "counter", seen)
        _line(lines, f"{metric}_calls_total", stats.get("calls"),
              "counter", seen)

    dispatcher = document.get("dispatcher")
    if isinstance(dispatcher, dict):
        _line(lines, "bc_dispatcher_workers",
              dispatcher.get("workers"), "gauge", seen)
        _line(lines, "bc_dispatcher_routed_total",
              dispatcher.get("routed_total"), "counter", seen)
    for row in document.get("workers") or []:
        if not isinstance(row, dict) or "worker" not in row:
            continue
        labels = f'{{worker="{row["worker"]}"}}'
        for metric, kind, value in (
                ("bc_worker_up", "gauge", row.get("healthy")),
                ("bc_worker_routed_total", "counter",
                 row.get("routed")),
                ("bc_worker_uptime_seconds", "gauge",
                 row.get("uptime_s")),
                ("bc_worker_start_time_seconds", "gauge",
                 row.get("started_unix"))):
            if value is None:
                continue
            if seen.get(metric) != kind:
                seen[metric] = kind
                lines.append(f"# TYPE {metric} {kind}")
            if isinstance(value, bool):
                value = int(value)
            lines.append(f"{metric}{labels} {value}")

    text = "\n".join(lines) + ("\n" if lines else "")
    engine = document.get("metrics")
    if engine is not None and _render_engine is not None:
        text += _render_engine(engine)
    return text
