"""Service metrics: one JSON snapshot for the ``/metrics`` endpoint.

The snapshot merges the scheduler's queue/admission counters, the
process-wide :data:`repro.perf.PERF` registry (which already carries
the cache hit/miss/evict counters), and the stage cache's store
statistics.  Everything is plain JSON; the schema tag is
``bundle-charging/service-metrics/v1``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..perf.counters import PERF
from .request import METRICS_SCHEMA

__all__ = ["metrics_snapshot"]


def metrics_snapshot(scheduler: Any,
                     cache: Optional[Any] = None) -> Dict[str, Any]:
    """Build the ``/metrics`` document.

    Args:
        scheduler: a :class:`repro.service.scheduler.PlanningScheduler`.
        cache: the service's :class:`repro.cache.StageCache`, or None
            when caching is off or ``repro.cache`` is absent.
    """
    snapshot = PERF.snapshot()
    return {
        "schema": METRICS_SCHEMA,
        "scheduler": scheduler.stats(),
        "perf": {
            "counters": snapshot.get("counters", {}),
            "timers": snapshot.get("timers", {}),
        },
        "cache": cache.stats() if cache is not None else None,
    }
