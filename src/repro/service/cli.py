"""``bundle-charging serve`` — run the planning service.

Flags map 1:1 onto :class:`ServiceConfig`.  The accept loop runs on a
daemon thread; the foreground thread waits for SIGINT/SIGTERM and then
performs a graceful drain (finish open batches, flush the trace,
close the socket), so Ctrl-C never drops an admitted request.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

from ..errors import ServiceError
from .config import ServiceConfig
from .http import start_server, stop_server

__all__ = ["build_parser", "main", "serve_config"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bundle-charging serve",
        description="Serve charging-plan requests over HTTP "
                    "(/v1/plan, /v1/batch, /healthz, /metrics).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8080,
                        help="bind port; 0 picks an ephemeral port "
                             "(default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker threads per process "
                             "(default: %(default)s)")
    parser.add_argument("--workers", type=int, default=1,
                        help="pre-forked worker processes; above 1 a "
                             "parent dispatcher shards requests by "
                             "canonical digest over a consistent-hash "
                             "ring (default: %(default)s)")
    parser.add_argument("--queue-limit", type=int, default=32,
                        help="open-batch admission bound; beyond it "
                             "requests are shed with 429 "
                             "(default: %(default)s)")
    parser.add_argument("--timeout-s", type=float, default=30.0,
                        help="per-request wait budget "
                             "(default: %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the stage cache (responses "
                             "report cache: off)")
    parser.add_argument("--cache-dir", default=None,
                        help="persist cache entries on disk "
                             "(shared with experiment runs)")
    parser.add_argument("--cache-entries", type=int, default=1024,
                        help="in-memory cache LRU bound "
                             "(default: %(default)s)")
    parser.add_argument("--trace-dir", default=None,
                        help="enable span tracing; write service.jsonl "
                             "there on shutdown")
    parser.add_argument("--planners", default=None,
                        help="comma-separated planner allowlist "
                             "(default: serve all registered planners)")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable the latency metrics engine "
                             "(payloads are identical either way)")
    parser.add_argument("--access-log", default=None,
                        help="append one JSONL access record per "
                             "settled request to this file")
    parser.add_argument("--sessions", type=int, default=256,
                        help="retained plan sessions (LRU) behind "
                             "/v1/plan/delta; eviction only costs a "
                             "client re-establishment "
                             "(default: %(default)s)")
    parser.add_argument("--delta-shadow-verify", action="store_true",
                        help="run a full replan beside every delta "
                             "repair and fail requests whose energy "
                             "exceeds the bounded ratio (expensive; "
                             "payload bytes unchanged)")
    parser.add_argument("--delta-max-ratio", type=float, default=1.05,
                        help="repaired/full energy ratio enforced "
                             "under --delta-shadow-verify "
                             "(default: %(default)s)")
    return parser


def serve_config(args: argparse.Namespace) -> ServiceConfig:
    """Build a validated :class:`ServiceConfig` from parsed flags.

    Raises:
        ServiceError: on any invalid or inconsistent flag value.
    """
    planners = None
    if args.planners is not None:
        planners = tuple(name.strip()
                         for name in args.planners.split(",")
                         if name.strip())
    return ServiceConfig(
        host=args.host, port=args.port, jobs=args.jobs,
        workers=args.workers,
        queue_limit=args.queue_limit, timeout_s=args.timeout_s,
        use_cache=not args.no_cache, cache_dir=args.cache_dir,
        cache_entries=args.cache_entries, trace_dir=args.trace_dir,
        planners=planners, metrics=not args.no_metrics,
        access_log=args.access_log,
        session_entries=args.sessions,
        delta_shadow_verify=args.delta_shadow_verify,
        delta_max_ratio=args.delta_max_ratio)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    pooled = False
    try:
        config = serve_config(args)
        if config.workers > 1:
            from .pool import start_pool, stop_pool
            server, _ = start_pool(config)
            pooled = True
        else:
            server, _ = start_server(config)
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stop = threading.Event()

    def _request_stop(signum, frame) -> None:
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _request_stop)
    if pooled:
        shards = ", ".join(f"{handle.index}:{handle.port}"
                           for handle in server.workers)
        print(f"serving on http://{config.host}:{server.port} "
              f"(workers={config.workers}, jobs={config.jobs}/worker, "
              f"queue_limit={config.queue_limit}, shards=[{shards}])")
    else:
        print(f"serving on http://{config.host}:{server.port} "
              f"(jobs={config.jobs}, "
              f"queue_limit={config.queue_limit}, "
              f"cache={'on' if server.cache is not None else 'off'})")
    stop.wait()
    print("draining...", file=sys.stderr)
    if pooled:
        stop_pool(server, drain=True)
    else:
        stop_server(server, drain=True)
    print("stopped.", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
