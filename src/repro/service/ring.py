"""Consistent-hash ring over the canonical request digest space.

The pre-forked worker pool shards requests by their canonical SHA-256
(:func:`repro.service.request.request_digest`): the dispatcher maps a
digest onto the ring and forwards to the owning worker, so identical
in-flight requests always land on the same process and the scheduler's
micro-batching keeps collapsing duplicates across clients.

Implementation is the textbook construction: each node contributes
``replicas`` virtual points, placed by hashing ``"<node>#<replica>"``
with SHA-256 (never :func:`hash` — it is salted per process and the
parent and any observer must agree on the mapping).  A key routes to
the first point clockwise from its own position.  Two properties the
unit tests pin down:

* **balance** — with the default 160 vnodes per node, shard sizes stay
  within a modest factor of the mean for 2..16 nodes;
* **stability** — removing one of N nodes remaps only ~1/N of a fixed
  corpus; every key whose owner survives keeps its owner.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ServiceError

__all__ = ["DEFAULT_REPLICAS", "HashRing"]

#: Virtual points per node; 160 keeps the max/mean shard ratio tight
#: (see tests/service/test_ring.py) at negligible build cost.
DEFAULT_REPLICAS = 160

#: Hex digits of a digest folded into a ring position (64-bit keyspace).
_KEY_HEX_DIGITS = 16


def _point(label: str) -> int:
    """Deterministic ring position of a vnode or key label."""
    digest = hashlib.sha256(label.encode("utf-8")).hexdigest()
    return int(digest[:_KEY_HEX_DIGITS], 16)


class HashRing:
    """Immutable consistent-hash ring mapping digests to node names."""

    def __init__(self, nodes: Sequence[str],
                 replicas: int = DEFAULT_REPLICAS) -> None:
        names = [str(node) for node in nodes]
        if not names:
            raise ServiceError("hash ring needs at least one node")
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate ring nodes: {names!r}")
        if replicas <= 0:
            raise ServiceError(
                f"replicas must be positive: {replicas!r}")
        self.nodes: Tuple[str, ...] = tuple(names)
        self.replicas = replicas
        points: List[Tuple[int, str]] = []
        for node in names:
            for replica in range(replicas):
                points.append((_point(f"{node}#{replica}"), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def node_for(self, digest_hex: str) -> str:
        """Owner of a hex digest (e.g. a canonical request SHA-256)."""
        key = int(str(digest_hex)[:_KEY_HEX_DIGITS], 16)
        index = bisect_right(self._points, key) % len(self._points)
        return self._owners[index]

    def without(self, node: str) -> "HashRing":
        """A new ring with ``node`` removed (failover / drain view)."""
        if node not in self.nodes:
            raise ServiceError(f"unknown ring node {node!r}")
        survivors = [name for name in self.nodes if name != node]
        return HashRing(survivors, replicas=self.replicas)

    def shard_counts(self, digests: Iterable[str]) -> Dict[str, int]:
        """Requests-per-node histogram of a digest corpus."""
        counts = {node: 0 for node in self.nodes}
        for digest in digests:
            counts[self.node_for(digest)] += 1
        return counts
