"""Request/response protocol of the planning service.

The wire format is deliberately small and *deterministic*:

* A planning request is a JSON object validated against the explicit
  ``bundle-charging/request/v1`` schema and normalized into a
  **canonical request** — every optional field filled with its default,
  every number coerced through ``float()``/``int()`` — so that two
  bodies describing the same planning problem normalize to the same
  canonical dict, hash to the same :func:`request_digest`, and
  therefore share one micro-batch and one cache entry.
* A response is an **envelope** (``bundle-charging/response/v1``)
  wrapping a **payload**.  The payload is a pure function of the
  canonical request — byte-identical across repeats, processes and
  servers when serialized with :func:`canonical_json` — and the
  envelope carries the transport-level facts that legitimately vary
  between repeats: the cache outcome (``hit``/``miss``/``off``), the
  payload digest, and the per-response provenance record.  Timestamps
  live only in transport headers and provenance, never in the payload.

Everything here is pure stdlib and imports neither ``repro.obs`` nor
``repro.cache``, so the protocol stays importable in degraded builds.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Dict, List, Optional, Tuple

from .. import constants
from ..charging import (CostParameters, DWELL_POLICIES, FriisChargingModel,
                        IdealDiskChargingModel, LinearChargingModel)
from ..errors import ModelError, ServiceError
from ..planners import known_planners
from ..tsp.solver import DEFAULT_STRATEGY, STRATEGY_NAMES

#: Schema tags of the service wire format.
REQUEST_SCHEMA = "bundle-charging/request/v1"
RESPONSE_SCHEMA = "bundle-charging/response/v1"
METRICS_SCHEMA = "bundle-charging/service-metrics/v1"
METRICS_SCHEMA_V2 = "bundle-charging/service-metrics/v2"
ACCESS_SCHEMA = "bundle-charging/access/v1"

#: Cache outcomes an envelope may report (``off`` = caching disabled
#: or ``repro.cache`` absent — the degraded-mode contract).
CACHE_OUTCOMES = ("hit", "miss", "off")

#: Hard caps keeping a single request bounded.
MAX_SENSORS = 5000
MAX_SEED = 2 ** 63

#: The charging-model vocabulary of request ``charging.model``.
#: ``paper`` is an alias normalizing to the Section VI-A Friis setup.
CHARGING_MODELS = ("paper", "friis", "linear", "ideal")

_TOP_LEVEL_KEYS = frozenset({
    "schema", "deployment", "planner", "radius_m", "tsp_strategy",
    "seed", "charging",
})
_DEPLOYMENT_KEYS = frozenset({"kind", "n", "seed", "sensors",
                              "field_side_m"})
_CHARGING_KEYS = frozenset({"model", "params", "move_cost_j_per_m",
                            "delta_j", "dwell_policy"})
_MODEL_PARAM_KEYS = {
    "friis": ("alpha", "beta", "source_power_w"),
    "linear": ("peak_efficiency", "cutoff_m", "source_power_w"),
    "ideal": ("efficiency", "range_m", "source_power_w"),
}
# Bit-identical to the experiment pipeline's defaults: CHARGE_POWER_W
# is 0.9/60.0, one ulp away from the literal 0.015.
_FRIIS_DEFAULTS = {"alpha": constants.ALPHA, "beta": constants.BETA,
                   "source_power_w": constants.CHARGE_POWER_W}

__all__ = [
    "ACCESS_SCHEMA",
    "CACHE_OUTCOMES",
    "CHARGING_MODELS",
    "MAX_SENSORS",
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_V2",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "RequestError",
    "build_cost",
    "canonical_json",
    "canonical_request",
    "error_envelope",
    "ok_envelope",
    "payload_digest",
    "request_digest",
    "request_problems",
    "response_problems",
]


class RequestError(ServiceError):
    """An invalid planning request, carrying a typed error code.

    Attributes:
        code: machine-readable error class (``invalid-request``,
            ``unsupported-schema``, ``unknown-planner``, ...).
        problems: one human-readable string per validation failure.
    """

    def __init__(self, code: str, problems: List[str]) -> None:
        super().__init__(f"{code}: " + "; ".join(problems))
        self.code = code
        self.problems = list(problems)


def canonical_json(value: Any) -> str:
    """Serialize ``value`` canonically (sorted keys, tight separators).

    This is the byte-identity serialization: the same dict always
    renders to the same bytes (floats go through ``repr``, which
    round-trips every IEEE-754 double).
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Dict[str, Any]) -> str:
    """Return the SHA-256 hex digest of a payload's canonical JSON."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


def request_digest(canonical: Dict[str, Any]) -> str:
    """Return the SHA-256 digest identifying a canonical request.

    Identical planning problems share a digest, which is the
    micro-batching key and part of the ``service_request`` cache key.
    """
    return payload_digest(canonical)


def _is_number(value: Any) -> bool:
    return (isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value))


def _is_integer(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _normalize_deployment(spec: Any, problems: List[str]
                          ) -> Optional[Dict[str, Any]]:
    if not isinstance(spec, dict):
        problems.append("'deployment' must be an object")
        return None
    unknown = sorted(set(spec) - _DEPLOYMENT_KEYS)
    if unknown:
        problems.append(f"deployment has unknown keys {unknown}")
    kind = spec.get("kind")
    if kind not in ("uniform", "inline"):
        problems.append(
            f"deployment.kind must be 'uniform' or 'inline', "
            f"got {kind!r}")
        return None
    field_side = spec.get("field_side_m", constants.FIELD_SIDE_M)
    if not _is_number(field_side) or field_side <= 0.0:
        problems.append(
            f"deployment.field_side_m must be a positive number, "
            f"got {field_side!r}")
        return None
    if kind == "uniform":
        count = spec.get("n")
        if not _is_integer(count) or not 1 <= count <= MAX_SENSORS:
            problems.append(
                f"deployment.n must be an integer in [1, {MAX_SENSORS}],"
                f" got {count!r}")
            return None
        seed = spec.get("seed", 0)
        if not _is_integer(seed) or abs(seed) >= MAX_SEED:
            problems.append(
                f"deployment.seed must be a bounded integer, "
                f"got {seed!r}")
            return None
        if "sensors" in spec:
            problems.append(
                "deployment.sensors is only valid with kind 'inline'")
        return {"kind": "uniform", "n": int(count), "seed": int(seed),
                "field_side_m": float(field_side)}
    sensors = spec.get("sensors")
    if (not isinstance(sensors, list)
            or not 1 <= len(sensors) <= MAX_SENSORS):
        problems.append(
            f"deployment.sensors must be a list of 1..{MAX_SENSORS} "
            f"[x, y] pairs")
        return None
    locations: List[List[float]] = []
    for index, pair in enumerate(sensors):
        if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not all(_is_number(coord) for coord in pair)):
            problems.append(
                f"deployment.sensors[{index}] must be a finite "
                f"[x, y] pair, got {pair!r}")
            return None
        locations.append([float(pair[0]), float(pair[1])])
    if "n" in spec or "seed" in spec:
        problems.append(
            "deployment.n/seed are only valid with kind 'uniform'")
    return {"kind": "inline", "sensors": locations,
            "field_side_m": float(field_side)}


def _normalize_charging(spec: Any, problems: List[str]
                        ) -> Optional[Dict[str, Any]]:
    if spec is None:
        spec = {}
    if not isinstance(spec, dict):
        problems.append("'charging' must be an object")
        return None
    unknown = sorted(set(spec) - _CHARGING_KEYS)
    if unknown:
        problems.append(f"charging has unknown keys {unknown}")
    model = spec.get("model", "paper")
    if model not in CHARGING_MODELS:
        problems.append(
            f"charging.model must be one of {list(CHARGING_MODELS)}, "
            f"got {model!r}")
        return None
    if model == "paper":
        model = "friis"
    raw_params = spec.get("params", {})
    if not isinstance(raw_params, dict):
        problems.append("charging.params must be an object")
        return None
    wanted = _MODEL_PARAM_KEYS[model]
    unknown = sorted(set(raw_params) - set(wanted))
    if unknown:
        problems.append(
            f"charging.params has unknown keys {unknown} for model "
            f"{model!r}")
    params: Dict[str, float] = {}
    defaults = _FRIIS_DEFAULTS if model == "friis" else {}
    for name in wanted:
        value = raw_params.get(name, defaults.get(name))
        if value is None:
            problems.append(
                f"charging.params.{name} is required for model "
                f"{model!r}")
            return None
        if not _is_number(value):
            problems.append(
                f"charging.params.{name} must be a finite number, "
                f"got {value!r}")
            return None
        params[name] = float(value)
    move_cost = spec.get("move_cost_j_per_m", constants.MOVE_COST_J_PER_M)
    delta = spec.get("delta_j", constants.DELTA_J)
    policy = spec.get("dwell_policy", "simultaneous")
    if not _is_number(move_cost) or move_cost < 0.0:
        problems.append(
            f"charging.move_cost_j_per_m must be a non-negative "
            f"number, got {move_cost!r}")
        return None
    if not _is_number(delta) or delta <= 0.0:
        problems.append(
            f"charging.delta_j must be a positive number, got {delta!r}")
        return None
    if policy not in DWELL_POLICIES:
        problems.append(
            f"charging.dwell_policy must be one of "
            f"{list(DWELL_POLICIES)}, got {policy!r}")
        return None
    canonical = {"model": model, "params": params,
                 "move_cost_j_per_m": float(move_cost),
                 "delta_j": float(delta), "dwell_policy": policy}
    try:
        build_cost(canonical)
    except ModelError as exc:
        problems.append(f"charging parameters rejected: {exc}")
        return None
    return canonical


def _normalize(body: Any) -> Tuple[Optional[Dict[str, Any]], List[str],
                                   str]:
    """Validate + canonicalize; return (canonical, problems, code)."""
    problems: List[str] = []
    code = "invalid-request"
    if not isinstance(body, dict):
        return None, ["request body must be a JSON object"], code
    schema = body.get("schema", REQUEST_SCHEMA)
    if schema != REQUEST_SCHEMA:
        return None, [f"unsupported request schema {schema!r} "
                      f"(expected {REQUEST_SCHEMA!r})"], \
            "unsupported-schema"
    unknown = sorted(set(body) - _TOP_LEVEL_KEYS)
    if unknown:
        problems.append(f"request has unknown keys {unknown}")

    deployment = _normalize_deployment(body.get("deployment"), problems)

    planner = body.get("planner")
    if not isinstance(planner, str) or planner not in known_planners():
        problems.append(
            f"planner must be one of {known_planners()}, "
            f"got {planner!r}")
        code = "unknown-planner" if isinstance(planner, str) else code

    radius = body.get("radius_m")
    if not _is_number(radius) or radius <= 0.0:
        problems.append(
            f"radius_m must be a positive finite number, got {radius!r}")

    strategy = body.get("tsp_strategy", DEFAULT_STRATEGY)
    if strategy not in STRATEGY_NAMES:
        problems.append(
            f"tsp_strategy must be one of {list(STRATEGY_NAMES)}, "
            f"got {strategy!r}")

    seed = body.get("seed", 0)
    if not _is_integer(seed) or abs(seed) >= MAX_SEED:
        problems.append(f"seed must be a bounded integer, got {seed!r}")

    charging = _normalize_charging(body.get("charging"), problems)

    if problems or deployment is None or charging is None:
        return None, problems, code
    return {
        "schema": REQUEST_SCHEMA,
        "deployment": deployment,
        "planner": planner,
        "radius_m": float(radius),
        "tsp_strategy": strategy,
        "seed": int(seed),
        "charging": charging,
    }, [], code


def request_problems(body: Any) -> List[str]:
    """Return every validation problem of a request body (empty = valid)."""
    _, problems, _ = _normalize(body)
    return problems


def canonical_request(body: Any) -> Dict[str, Any]:
    """Validate ``body`` and return its canonical request form.

    Raises:
        RequestError: with a typed code and the full problem list.
    """
    canonical, problems, code = _normalize(body)
    if canonical is None:
        raise RequestError(code, problems)
    return canonical


def build_cost(charging: Dict[str, Any]) -> CostParameters:
    """Instantiate the :class:`CostParameters` of a canonical request.

    Deterministic: the same canonical charging dict always builds an
    identical model (the request's cache key therefore fully determines
    the physics).
    """
    params = charging["params"]
    model_name = charging["model"]
    if model_name == "friis":
        model = FriisChargingModel(
            alpha=params["alpha"], beta=params["beta"],
            source_power_w=params["source_power_w"])
    elif model_name == "linear":
        model = LinearChargingModel(
            peak_efficiency=params["peak_efficiency"],
            cutoff_m=params["cutoff_m"],
            source_power_w=params["source_power_w"])
    else:
        model = IdealDiskChargingModel(
            efficiency=params["efficiency"], range_m=params["range_m"],
            source_power_w=params["source_power_w"])
    return CostParameters(
        model=model,
        move_cost_j_per_m=charging["move_cost_j_per_m"],
        delta_j=charging["delta_j"],
        dwell_policy=charging["dwell_policy"])


def ok_envelope(payload: Dict[str, Any], cache: str,
                provenance: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Any]:
    """Wrap a deterministic payload in a success envelope.

    The payload and its digest are byte-stable across repeats; the
    ``cache`` outcome and ``provenance`` are transport metadata and may
    legitimately differ between two servings of the same request.
    """
    if cache not in CACHE_OUTCOMES:
        raise ServiceError(f"unknown cache outcome {cache!r}")
    envelope: Dict[str, Any] = {
        "schema": RESPONSE_SCHEMA,
        "status": "ok",
        "cache": cache,
        "payload": payload,
        "payload_sha256": payload_digest(payload),
    }
    if provenance is not None:
        envelope["provenance"] = provenance
    return envelope


def error_envelope(code: str, message: str,
                   problems: Optional[List[str]] = None
                   ) -> Dict[str, Any]:
    """Build a typed error envelope (no payload, no cache outcome)."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if problems:
        error["problems"] = list(problems)
    return {"schema": RESPONSE_SCHEMA, "status": "error", "error": error}


def response_problems(envelope: Any) -> List[str]:
    """Return every structural problem of a response envelope.

    Shared with :mod:`repro.obs.validate`, which re-exports it as the
    response-schema checker for CI gates and tests.
    """
    problems: List[str] = []
    if not isinstance(envelope, dict):
        return ["response envelope must be a JSON object"]
    if envelope.get("schema") != RESPONSE_SCHEMA:
        problems.append(
            f"unknown response schema {envelope.get('schema')!r} "
            f"(expected {RESPONSE_SCHEMA!r})")
    status = envelope.get("status")
    if status not in ("ok", "error"):
        problems.append(f"status must be 'ok' or 'error', got {status!r}")
        return problems
    if status == "error":
        error = envelope.get("error")
        if not isinstance(error, dict):
            problems.append("error envelope carries no 'error' object")
        else:
            for key in ("code", "message"):
                if not isinstance(error.get(key), str):
                    problems.append(f"error.{key} must be a string")
        if "payload" in envelope:
            problems.append("error envelope must not carry a payload")
        return problems
    if envelope.get("cache") not in CACHE_OUTCOMES:
        problems.append(
            f"cache outcome must be one of {list(CACHE_OUTCOMES)}, "
            f"got {envelope.get('cache')!r}")
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        problems.append("ok envelope carries no payload object")
        return problems
    digest = envelope.get("payload_sha256")
    if digest != payload_digest(payload):
        problems.append("payload_sha256 does not match the payload "
                        "(non-canonical or tampered payload)")
    request = payload.get("request")
    if (isinstance(request, dict)
            and request.get("schema") == "bundle-charging/delta-request/v1"):
        # Delta payloads embed a canonical *delta* request and a repair
        # report instead of a plan request; validate with the delta
        # checker (lazily imported — repro.delta may be stripped).
        try:
            from ..delta.protocol import delta_payload_problems
        except ImportError:  # pragma: no cover - repro.delta absent
            problems.append(
                "delta payload seen but repro.delta is unavailable")
            return problems
        problems.extend(delta_payload_problems(payload))
        if payload.get("request_sha256") != request_digest(request):
            problems.append(
                "payload request_sha256 does not match the canonical "
                "request")
        return problems
    for key in ("request", "request_sha256", "plan", "metrics"):
        if key not in payload:
            problems.append(f"payload missing key {key!r}")
    if isinstance(request, dict):
        problems.extend(request_problems(request))
        if payload.get("request_sha256") != request_digest(request):
            problems.append(
                "payload request_sha256 does not match the canonical "
                "request")
    return problems
