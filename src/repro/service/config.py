"""Service configuration: one frozen dataclass for the whole server.

Mirrors :class:`repro.experiments.ExperimentConfig` in spirit — every
knob a running service needs lives here as a primitive, so the config
pickles, hashes and logs cleanly and the CLI maps flags onto it 1:1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ServiceError
from ..planners import known_planners


@dataclass(frozen=True)
class ServiceConfig:
    """Planning-service knobs.

    Attributes:
        host: bind address of the HTTP front end.
        port: bind port (0 = ephemeral; the bound port is reported by
            the server object).
        jobs: worker threads draining the request queue — the serving
            analogue of the experiment runner's ``--jobs`` fan-out.
        workers: pre-forked worker *processes*.  ``1`` (the default)
            serves from a single ``ThreadingHTTPServer``; above that,
            ``serve`` forks N children each owning a shard of the
            canonical-request digest space behind a parent dispatcher
            (:mod:`repro.service.pool`), with ``jobs`` threads *per
            worker* and the on-disk cache (``cache_dir``) as the
            shared warm tier.
        queue_limit: admission bound — the maximum number of *open*
            micro-batches (queued + executing).  Submissions beyond it
            are shed with a 429-style rejection instead of queuing
            unboundedly.
        timeout_s: default per-request wait budget; a request may lower
            (never raise) it via the ``timeout_s`` query parameter.
        use_cache: serve repeated requests from the stage cache
            (``repro.cache``); disabled or absent, every request
            recomputes and responses report ``"cache": "off"``.
        cache_dir: opt-in on-disk stage store shared with batch runs.
        cache_entries: LRU bound of the in-memory stage cache.
        planners: allowlist of planner names this server accepts;
            ``None`` serves every registered planner.
        trace_dir: opt-in observability — enables the span tracer for
            the server's lifetime and writes ``service.jsonl`` plus a
            manifest there on graceful shutdown.
        max_batch: largest ``/v1/batch`` request list accepted.
        max_body_bytes: largest request body accepted.
        metrics: run the per-server metrics engine (latency/queue-wait/
            compute histograms labeled by planner and cache outcome;
            exported by ``/metrics``).  On by default — the engine is
            cheap and payloads are unaffected by contract; disable to
            prove byte-identity or to shave the last histogram update
            off the hot path.  Silently degrades to off when
            ``repro.obs`` is absent.
        access_log: opt-in path of a JSONL structured access log (one
            ``bundle-charging/access/v1`` record per settled request).
        session_entries: LRU bound on retained plan sessions (the state
            behind ``POST /v1/plan/delta``); evicted sessions cost a
            client one re-establishment via ``/v1/plan``, never
            correctness.
        delta_shadow_verify: run a full replan alongside every repair
            and fail the request when the repaired plan's energy
            exceeds ``delta_max_ratio`` times the replan's — the repair
            analogue of the cache's ``--shadow-verify``.  Observer-only
            for payload bytes; expensive (it is a full replan per
            delta).
        delta_max_ratio: the bounded energy-ratio contract enforced
            under shadow verification (>= 1.0).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    jobs: int = 2
    workers: int = 1
    queue_limit: int = 32
    timeout_s: float = 30.0
    use_cache: bool = True
    cache_dir: Optional[str] = None
    cache_entries: int = 1024
    planners: Optional[Tuple[str, ...]] = None
    trace_dir: Optional[str] = None
    max_batch: int = 16
    max_body_bytes: int = 8 * 1024 * 1024
    metrics: bool = True
    access_log: Optional[str] = None
    session_entries: int = 256
    delta_shadow_verify: bool = False
    delta_max_ratio: float = 1.05

    def __post_init__(self) -> None:
        if self.jobs <= 0:
            raise ServiceError(f"jobs must be positive: {self.jobs!r}")
        if not 1 <= self.workers <= 64:
            raise ServiceError(
                f"workers must be in 1..64: {self.workers!r}")
        if self.queue_limit <= 0:
            raise ServiceError(
                f"queue_limit must be positive: {self.queue_limit!r}")
        if not (math.isfinite(self.timeout_s) and self.timeout_s > 0.0):
            raise ServiceError(
                f"timeout_s must be positive: {self.timeout_s!r}")
        if self.cache_entries <= 0:
            raise ServiceError(
                f"cache_entries must be positive: {self.cache_entries!r}")
        if self.max_batch <= 0:
            raise ServiceError(
                f"max_batch must be positive: {self.max_batch!r}")
        if not 0 <= self.port <= 65535:
            raise ServiceError(f"invalid port: {self.port!r}")
        if self.session_entries <= 0:
            raise ServiceError(
                f"session_entries must be positive: "
                f"{self.session_entries!r}")
        if not (math.isfinite(self.delta_max_ratio)
                and self.delta_max_ratio >= 1.0):
            raise ServiceError(
                f"delta_max_ratio must be a finite ratio >= 1.0: "
                f"{self.delta_max_ratio!r}")
        if self.planners is not None:
            if not self.planners:
                raise ServiceError("planner allowlist must not be empty")
            unknown = sorted(set(self.planners) - set(known_planners()))
            if unknown:
                raise ServiceError(
                    f"unknown planner(s) {unknown}; choose from "
                    f"{known_planners()}")

    def serves_planner(self, name: str) -> bool:
        """Return whether this server accepts requests for ``name``."""
        return self.planners is None or name in self.planners
