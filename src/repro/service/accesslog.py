"""Structured JSONL access log for the planning service.

One line per settled request (schema ``bundle-charging/access/v1``),
written by the request handler after the response bytes go out.  The
record carries what the latency histograms aggregate away: the request
digest, planner, cache outcome, HTTP status, and the per-request
latency decomposition (total / queue wait / compute), so a slow p99 in
``/metrics`` can be chased down to the exact requests that caused it.

The writer is append-only, line-buffered, and serialized by a lock —
``ThreadingHTTPServer`` handlers share one instance — and each record
is one ``json.dumps(..., sort_keys=True)`` line, so a reader can
``json.loads`` line-by-line (the CI loadgen gate does exactly that).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional

from ..clock import wall
from .request import ACCESS_SCHEMA

__all__ = ["ACCESS_SCHEMA", "AccessLogWriter", "access_record",
           "access_record_problems"]

#: Keys every access record must carry.
_REQUIRED = ("schema", "ts_unix", "method", "path", "status",
             "latency_s")

#: Optional numeric fields validated for type when present.
_OPTIONAL_NUMBERS = ("queue_wait_s", "compute_s", "bytes_out",
                     "batch_size")


def access_record(method: str,
                  path: str,
                  status: int,
                  latency_s: float,
                  digest: Optional[str] = None,
                  planner: Optional[str] = None,
                  outcome: Optional[str] = None,
                  queue_wait_s: Optional[float] = None,
                  compute_s: Optional[float] = None,
                  bytes_out: Optional[int] = None,
                  batch_size: Optional[int] = None,
                  error: Optional[str] = None) -> Dict[str, Any]:
    """Build one access-log record (timestamps stamped here)."""
    record: Dict[str, Any] = {
        "schema": ACCESS_SCHEMA,
        "ts_unix": round(wall(), 6),
        "method": method,
        "path": path,
        "status": int(status),
        "latency_s": round(float(latency_s), 9),
    }
    if digest is not None:
        record["digest"] = digest
    if planner is not None:
        record["planner"] = planner
    if outcome is not None:
        record["outcome"] = outcome
    if queue_wait_s is not None:
        record["queue_wait_s"] = round(float(queue_wait_s), 9)
    if compute_s is not None:
        record["compute_s"] = round(float(compute_s), 9)
    if bytes_out is not None:
        record["bytes_out"] = int(bytes_out)
    if batch_size is not None:
        record["batch_size"] = int(batch_size)
    if error is not None:
        record["error"] = error
    return record


class AccessLogWriter:
    """Thread-safe append-only JSONL sink for access records."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record as a single JSON line and flush."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "AccessLogWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def access_record_problems(record: Any) -> List[str]:
    """Return structural problems of one access record (empty = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["access record must be a JSON object"]
    schema = record.get("schema")
    if schema != ACCESS_SCHEMA:
        problems.append(f"unknown access schema {schema!r} "
                        f"(expected {ACCESS_SCHEMA!r})")
        return problems
    for key in _REQUIRED:
        if key not in record:
            problems.append(f"access record missing key {key!r}")
    for key in ("ts_unix", "latency_s"):
        value = record.get(key)
        if key in record and not isinstance(value, (int, float)):
            problems.append(f"{key} must be a number, got {value!r}")
        elif isinstance(value, (int, float)) and key == "latency_s" \
                and value < 0.0:
            problems.append("latency_s must be non-negative")
    status = record.get("status")
    if "status" in record and not isinstance(status, int):
        problems.append(f"status must be an integer, got {status!r}")
    for key in _OPTIONAL_NUMBERS:
        value = record.get(key)
        if key in record and not isinstance(value, (int, float)):
            problems.append(f"{key} must be a number, got {value!r}")
    return problems
