"""Pre-forked worker pool: digest-sharded multi-process serving.

``bundle-charging serve --workers N`` scales the single-process
:class:`~repro.service.http.PlanningHTTPServer` across N processes
without giving up the service's two load-bearing contracts — byte
identical payloads and duplicate collapsing:

* **Pre-fork with parent-bound sockets.**  The parent binds one
  listening socket per worker (ephemeral localhost ports) *before*
  forking, so it knows every worker's address with no IPC; each child
  closes its siblings' sockets and adopts its own into a normal
  :class:`PlanningHTTPServer` (``sock=`` parameter).  Connections that
  arrive before a child reaches ``accept`` simply queue in the
  listen backlog.
* **Digest-sharded dispatch.**  The parent runs a thin dispatcher
  (:class:`DispatcherHTTPServer`): it validates and canonicalizes each
  request exactly like a worker would, hashes the canonical SHA-256
  onto a :class:`~repro.service.ring.HashRing`, and forwards to the
  owning worker over keep-alive connections.  Identical in-flight
  requests therefore always land on the same process, where the
  scheduler's micro-batching collapses them into one compute.  Delta
  requests shard by the *root* segment of their session handle (the
  establishing plan request's digest), so a session's whole repair
  lineage stays on the worker that retains it.
* **Shared warm tier.**  Workers share ``config.cache_dir``; the disk
  store's atomic temp-file + ``os.replace`` writes already tolerate
  concurrent writers, so one worker's cold miss warms every sibling.
* **Aggregated telemetry.**  ``GET /metrics`` on the dispatcher scrapes
  every worker's v2 document and merges them via
  :func:`repro.service.metrics.aggregate_worker_metrics` — counters
  summed, engine histograms bucket-merged, per-worker rows under a new
  ``workers`` section.  ``started_unix``/``uptime_s`` are the
  *parent's* (the pool's identity), each worker keeps its own in its
  row.
* **Coordinated drain.**  ``stop_pool`` stops the dispatcher's accept
  loop, lets in-flight forwards settle, SIGTERMs every child (each
  drains its scheduler and exits), and reaps them all — escalating to
  SIGKILL only past the deadline, so no orphans survive.

Per-worker derived outputs: worker *i* appends to
``<access_log>.w<i>`` and traces into ``<trace_dir>/worker<i>/`` so
the children never interleave writes on one handle.  The pool module
itself keeps no module-level mutable state (locks, threads, handles) —
everything is instance-owned and created *after* fork, which is what
lint rule CONC004 checks for this import closure.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass, replace
from http.client import HTTPConnection, HTTPException
from http.server import ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..clock import monotonic, wall
from ..delta.protocol import delta_request_problems
from ..delta.session import handle_root
from ..errors import ServiceError
from ..perf.counters import PERF
from .config import ServiceConfig
from .http import PlanningHTTPServer, ServiceRequestHandler, stop_server
from .metrics import aggregate_worker_metrics, prometheus_text
from .request import (RequestError, canonical_json, canonical_request,
                      error_envelope, request_digest)
from .ring import HashRing

try:  # observability is optional, exactly as in repro.service.http
    from ..obs.manifest import build_manifest as _build_manifest
    _HAVE_OBS = True
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    _build_manifest = None  # type: ignore[assignment]
    _HAVE_OBS = False

__all__ = ["DispatcherHTTPServer", "DispatchRequestHandler",
           "WorkerHandle", "start_pool", "stop_pool", "worker_config"]

#: Extra client budget on top of the request timeout, so a worker's own
#: 504 envelope always arrives before the dispatcher gives up on it.
_FORWARD_MARGIN_S = 10.0

#: Listen backlog of the pre-bound worker sockets (absorbs the window
#: between fork and the child's first ``accept``).
_WORKER_BACKLOG = 128


@dataclass(frozen=True)
class WorkerHandle:
    """Parent-side identity of one forked worker process."""

    index: int
    pid: int
    host: str
    port: int


def worker_config(config: ServiceConfig, index: int) -> ServiceConfig:
    """Derive worker ``index``'s config from the pool config.

    The child serves on an adopted socket (so ``port`` is moot), runs
    as a single-process server (``workers=1``), and gets per-worker
    access-log / trace paths so siblings never share a file handle.
    The cache directory is deliberately *not* derived: it is the
    shared warm tier.
    """
    updates: Dict[str, Any] = {"workers": 1, "port": 0}
    if config.access_log:
        updates["access_log"] = f"{config.access_log}.w{index}"
    if config.trace_dir:
        updates["trace_dir"] = os.path.join(config.trace_dir,
                                            f"worker{index}")
    return replace(config, **updates)


def _worker_main(config: ServiceConfig, sock: socket.socket,
                 index: int) -> None:
    """Child entry point: serve until SIGTERM, drain, ``_exit``.

    Never returns — the child must not fall back into the forked
    parent's stack (pytest, CLI, atexit handlers), so every path ends
    in :func:`os._exit`.
    """
    try:
        stop = threading.Event()
        signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
        # The parent owns Ctrl-C: it drains the whole pool via SIGTERM.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        # Drop perf counters inherited from the parent process so the
        # aggregated /metrics never double-counts pre-fork work.
        PERF.reset()
        server = PlanningHTTPServer(worker_config(config, index),
                                    sock=sock, worker_index=index)
        thread = threading.Thread(target=server.serve_forever,
                                  name=f"plan-worker-{index}",
                                  daemon=True)
        thread.start()
        stop.wait()
        stop_server(server, drain=True)
    except BaseException as exc:  # noqa: BLE001 - child must never unwind
        try:
            print(f"worker {index} crashed: {exc!r}", file=sys.stderr)
        finally:
            os._exit(70)
    os._exit(0)


class _WorkerClient:
    """Keep-alive HTTP connections to one worker (thread-safe pool).

    Handlers run on dispatcher threads; each checkout either reuses an
    idle connection or opens a fresh one.  A request that fails on a
    *reused* connection (worker closed it between requests) is retried
    once on a fresh connection; failures on fresh connections
    propagate — the worker is genuinely unreachable.
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port
        self._lock = threading.Lock()
        self._idle: List[HTTPConnection] = []

    def request(self, method: str, path: str,
                body: Optional[bytes] = None,
                timeout_s: float = 10.0
                ) -> Tuple[int, Dict[str, str], bytes]:
        """Round-trip one request; return (status, headers, body)."""
        with self._lock:
            conn = self._idle.pop() if self._idle else None
        reused = conn is not None
        if conn is None:
            conn = HTTPConnection(self._host, self._port,
                                  timeout=timeout_s)
        try:
            return self._roundtrip(conn, method, path, body, timeout_s)
        except (OSError, HTTPException):
            conn.close()
            if not reused:
                raise
        fresh = HTTPConnection(self._host, self._port,
                               timeout=timeout_s)
        try:
            return self._roundtrip(fresh, method, path, body, timeout_s)
        except (OSError, HTTPException):
            fresh.close()
            raise

    def _roundtrip(self, conn: HTTPConnection, method: str, path: str,
                   body: Optional[bytes], timeout_s: float
                   ) -> Tuple[int, Dict[str, str], bytes]:
        conn.timeout = timeout_s
        if conn.sock is not None:
            conn.sock.settimeout(timeout_s)
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        will_close = response.will_close
        response_headers = dict(response.getheaders())
        if will_close:
            conn.close()
        else:
            with self._lock:
                self._idle.append(conn)
        return response.status, response_headers, data

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class DispatcherHTTPServer(ThreadingHTTPServer):
    """The pool's front socket: canonicalize, shard, forward, relay."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: ServiceConfig,
                 handles: List[WorkerHandle]) -> None:
        super().__init__((config.host, config.port),
                         DispatchRequestHandler)
        self.config = config
        self.workers: Tuple[WorkerHandle, ...] = tuple(handles)
        self.ring = HashRing([str(handle.index) for handle in handles])
        self.clients = {handle.index: _WorkerClient(handle.host,
                                                    handle.port)
                        for handle in handles}
        # Duck-typed plumbing shared with ServiceRequestHandler: the
        # dispatcher itself keeps no metrics engine or access log —
        # workers own the request-level telemetry.
        self.metrics = None
        self.access_log = None
        self.worker_index: Optional[int] = None
        self.started_monotonic = monotonic()
        self.started_unix = wall()
        self.base_provenance: Optional[Dict[str, Any]] = None
        if _HAVE_OBS:
            self.base_provenance = _build_manifest(
                "service-pool",
                {"host": config.host, "port": config.port,
                 "workers": config.workers, "jobs": config.jobs,
                 "queue_limit": config.queue_limit,
                 "use_cache": config.use_cache,
                 "cache_dir": config.cache_dir,
                 "ring_replicas": self.ring.replicas},
                seeds=[], wall_time_s=0.0)
        self._route_lock = threading.Lock()
        self._routed = {handle.index: 0 for handle in handles}
        self._active = 0

    @property
    def port(self) -> int:
        """The bound dispatcher port (for ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    def route_worker(self, digest: str) -> int:
        """Ring owner of a canonical request digest."""
        return int(self.ring.node_for(digest))

    def forward(self, index: int, method: str, path: str,
                body: Optional[bytes] = None,
                timeout_s: float = 10.0
                ) -> Tuple[int, Dict[str, str], bytes]:
        """Proxy one request to worker ``index``."""
        with self._route_lock:
            self._active += 1
        try:
            return self.clients[index].request(method, path, body=body,
                                               timeout_s=timeout_s)
        finally:
            with self._route_lock:
                self._active -= 1

    def count_routed(self, index: int) -> None:
        with self._route_lock:
            self._routed[index] += 1

    def routed_counts(self) -> Dict[int, int]:
        with self._route_lock:
            return dict(self._routed)

    def active_forwards(self) -> int:
        with self._route_lock:
            return self._active

    def health_document(self) -> Dict[str, Any]:
        """Pool liveness: the dispatcher plus every worker's healthz."""
        rows: List[Dict[str, Any]] = []
        all_alive = True
        for handle in self.workers:
            alive = False
            draining = None
            try:
                status, _, data = self.forward(handle.index, "GET",
                                               "/healthz",
                                               timeout_s=5.0)
                if status == 200:
                    alive = True
                    draining = json.loads(data).get("draining")
            except (OSError, HTTPException, ValueError):
                alive = False
            all_alive = all_alive and alive
            rows.append({"worker": handle.index, "pid": handle.pid,
                         "alive": alive, "draining": draining})
        return {
            "status": "ok" if all_alive else "degraded",
            "uptime_s": round(monotonic() - self.started_monotonic, 3),
            "draining": False,
            "workers": rows,
        }

    def metrics_document(self) -> Dict[str, Any]:
        """Scrape every worker and merge into one pool-wide document."""
        routed = self.routed_counts()
        entries: List[Dict[str, Any]] = []
        for handle in self.workers:
            document = None
            try:
                status, _, data = self.forward(handle.index, "GET",
                                               "/metrics",
                                               timeout_s=5.0)
                if status == 200:
                    document = json.loads(data)
            except (OSError, HTTPException, ValueError):
                document = None
            entries.append({"worker": handle.index, "pid": handle.pid,
                            "port": handle.port,
                            "routed": routed[handle.index],
                            "document": document})
        return aggregate_worker_metrics(
            entries,
            uptime_s=monotonic() - self.started_monotonic,
            started_unix=self.started_unix,
            provenance=self.base_provenance,
            ring_replicas=self.ring.replicas)


class DispatchRequestHandler(ServiceRequestHandler):
    """Dispatcher endpoints: same surface, forwarding instead of compute.

    Reuses the parent handler's plumbing (JSON body reading, error
    envelopes, timeout parsing, content negotiation); only the four
    route bodies differ.  Validation runs *here*, before forwarding,
    with byte-identical error envelopes to a worker's — clients cannot
    tell a dispatcher 400 from a worker 400.
    """

    server: DispatcherHTTPServer

    # --- forwarding plumbing ---------------------------------------------

    def _forward_timeout_s(self) -> float:
        return self._timeout_s() + _FORWARD_MARGIN_S

    def _forward_path(self, base: str = "/v1/plan") -> str:
        """Worker-side path, preserving the query string."""
        query = urlsplit(self.path).query
        return base + (f"?{query}" if query else "")

    def _relay(self, status: int, body: bytes,
               headers: Dict[str, str]) -> int:
        """Send a worker's response bytes through unmodified."""
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return len(body)

    def _shard_for(self, body: Any
                   ) -> Tuple[Optional[Dict[str, Any]], Optional[int],
                              Optional[Dict[str, Any]]]:
        """Canonicalize + route; return (request, worker, error doc)."""
        try:
            request = canonical_request(body)
        except RequestError as exc:
            return None, None, error_envelope(exc.code, str(exc),
                                              exc.problems)
        if not self.server.config.serves_planner(request["planner"]):
            return None, None, error_envelope(
                "planner-not-served",
                f"this server does not serve planner "
                f"{request['planner']!r} (allowlist: "
                f"{list(self.server.config.planners or ())})")
        digest = request_digest(request)
        return request, self.server.route_worker(digest), None

    # --- request dispatch -------------------------------------------------

    def _dispatch_plan(self) -> None:
        body, ok = self._read_json_body()
        if not ok:
            return
        request, index, error_doc = self._shard_for(body)
        if request is None:
            self._send_json(400, error_doc)
            return
        payload = canonical_json(request).encode("utf-8")
        try:
            status, headers, data = self.server.forward(
                index, "POST", self._forward_path(), body=payload,
                timeout_s=self._forward_timeout_s())
        except (OSError, HTTPException) as exc:
            self._send_json(503, error_envelope(
                "worker-unavailable",
                f"worker {index} did not answer: {exc}"))
            return
        self.server.count_routed(index)
        relay = {name: headers[name]
                 for name in ("X-BC-Cache", "X-BC-Request-SHA256",
                              "X-BC-Worker", "X-BC-Session")
                 if name in headers}
        relay.setdefault("X-BC-Worker", str(index))
        self._relay(status, data, relay)

    def _dispatch_delta(self) -> None:
        """Route a delta request to the worker owning its session.

        Sessions are sharded by the *root* segment of the handle — the
        establishing ``/v1/plan`` request's digest — so every delta
        against a session lands on the worker that minted it, however
        many repairs have chained since.  Validation runs here with the
        worker's exact problem list, so dispatcher 400s are
        byte-identical to worker 400s.
        """
        body, ok = self._read_json_body()
        if not ok:
            return
        problems = delta_request_problems(body)
        if problems:
            code = ("unsupported-schema"
                    if any("unsupported request schema" in problem
                           for problem in problems)
                    else "invalid-request")
            self._send_error_envelope(400, code, "invalid delta request",
                                      problems)
            return
        index = self.server.route_worker(handle_root(body["session"]))
        payload = canonical_json(body).encode("utf-8")
        try:
            status, headers, data = self.server.forward(
                index, "POST", self._forward_path("/v1/plan/delta"),
                body=payload, timeout_s=self._forward_timeout_s())
        except (OSError, HTTPException) as exc:
            self._send_json(503, error_envelope(
                "worker-unavailable",
                f"worker {index} did not answer: {exc}"))
            return
        self.server.count_routed(index)
        relay = {name: headers[name]
                 for name in ("X-BC-Cache", "X-BC-Request-SHA256",
                              "X-BC-Worker", "X-BC-Session",
                              "X-BC-Delta-Ratio")
                 if name in headers}
        relay.setdefault("X-BC-Worker", str(index))
        self._relay(status, data, relay)

    def _forward_item(self, responses: List[Optional[Dict[str, Any]]],
                      position: int, index: int, path: str,
                      payload: bytes, timeout_s: float) -> None:
        """One batch item's forward (runs on its own thread)."""
        try:
            _, _, data = self.server.forward(index, "POST", path,
                                             body=payload,
                                             timeout_s=timeout_s)
            self.server.count_routed(index)
            responses[position] = json.loads(data)
        except (OSError, HTTPException, ValueError) as exc:
            responses[position] = error_envelope(
                "worker-unavailable",
                f"worker {index} did not answer: {exc}")

    def _dispatch_batch(self) -> None:
        body, ok = self._read_json_body()
        if not ok:
            return
        requests = (body.get("requests")
                    if isinstance(body, dict) else None)
        if not isinstance(requests, list) or not requests:
            self._send_error_envelope(
                400, "invalid-request",
                "batch body must be {\"requests\": [<request>, ...]}")
            return
        max_batch = self.server.config.max_batch
        if len(requests) > max_batch:
            self._send_error_envelope(
                400, "batch-too-large",
                f"batch carries {len(requests)} requests; the limit "
                f"is {max_batch}")
            return
        timeout_s = self._forward_timeout_s()
        path = self._forward_path()
        responses: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        threads: List[threading.Thread] = []
        for position, item in enumerate(requests):
            request, index, error_doc = self._shard_for(item)
            if request is None:
                responses[position] = error_doc
                continue
            payload = canonical_json(request).encode("utf-8")
            # Forward concurrently: items admitted together overlap
            # across shards, and duplicates collapse inside one shard.
            thread = threading.Thread(
                target=self._forward_item,
                args=(responses, position, index, path, payload,
                      timeout_s),
                name=f"dispatch-batch-{position}", daemon=True)
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        self._send_json(200, {"responses": responses})

    # --- routing ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = urlsplit(self.path).path
        if path == "/healthz":
            self._send_json(200, self.server.health_document())
        elif path == "/metrics":
            document = self.server.metrics_document()
            if self._wants_prometheus():
                self._send_text(200, prometheus_text(document))
            else:
                self._send_json(200, document)
        else:
            self._send_error_envelope(
                404, "not-found", f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = urlsplit(self.path).path
        if path == "/v1/plan":
            self._dispatch_plan()
        elif path == "/v1/plan/delta":
            self._dispatch_delta()
        elif path == "/v1/batch":
            self._dispatch_batch()
        elif path in ("/healthz", "/metrics"):
            self._send_error_envelope(
                405, "method-not-allowed", f"{path} is GET-only")
        else:
            self._send_error_envelope(
                404, "not-found", f"unknown path {path!r}")


def start_pool(config: ServiceConfig
               ) -> Tuple[DispatcherHTTPServer, threading.Thread]:
    """Fork the workers, start the dispatcher; return (server, thread).

    Mirrors :func:`repro.service.http.start_server` — the returned
    server exposes ``.port`` and is stopped with :func:`stop_pool`.

    Raises:
        ServiceError: when ``config.workers < 2`` or the platform has
            no ``os.fork`` (Windows); callers should fall back to the
            single-process server.
    """
    if config.workers < 2:
        raise ServiceError(
            f"start_pool needs workers >= 2, got {config.workers}; "
            f"use start_server for a single process")
    if not hasattr(os, "fork"):
        raise ServiceError(
            "--workers > 1 needs os.fork(), which this platform "
            "does not provide")

    sockets: List[socket.socket] = []
    try:
        for _ in range(config.workers):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((config.host, 0))
            sock.listen(_WORKER_BACKLOG)
            sockets.append(sock)
    except OSError:
        for sock in sockets:
            sock.close()
        raise

    handles: List[WorkerHandle] = []
    for index, sock in enumerate(sockets):
        pid = os.fork()
        if pid == 0:
            for other_index, other in enumerate(sockets):
                if other_index != index:
                    other.close()
            _worker_main(config, sock, index)  # calls os._exit
        handles.append(WorkerHandle(index=index, pid=pid,
                                    host=config.host,
                                    port=sock.getsockname()[1]))
    for sock in sockets:
        sock.close()

    try:
        dispatcher = DispatcherHTTPServer(config, handles)
    except OSError:
        _terminate_workers(handles, timeout_s=10.0)
        raise
    thread = threading.Thread(target=dispatcher.serve_forever,
                              name="plan-dispatch", daemon=True)
    thread.start()
    return dispatcher, thread


def _terminate_workers(handles: List[WorkerHandle],
                       timeout_s: float) -> None:
    """SIGTERM + reap every child; SIGKILL stragglers past deadline."""
    for handle in handles:
        try:
            os.kill(handle.pid, signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            pass
    remaining = list(handles)
    deadline = monotonic() + timeout_s
    while remaining and monotonic() < deadline:
        still: List[WorkerHandle] = []
        for handle in remaining:
            try:
                pid, _ = os.waitpid(handle.pid, os.WNOHANG)
            except ChildProcessError:
                continue  # already reaped elsewhere
            if pid == 0:
                still.append(handle)
        remaining = still
        if remaining:
            time.sleep(0.02)
    for handle in remaining:  # refuse to orphan a wedged child
        try:
            os.kill(handle.pid, signal.SIGKILL)
            os.waitpid(handle.pid, 0)
        except (ProcessLookupError, ChildProcessError,
                PermissionError):
            pass


def stop_pool(dispatcher: DispatcherHTTPServer, drain: bool = True,
              timeout_s: float = 30.0) -> None:
    """Gracefully stop the pool: dispatcher first, then every worker.

    Order matters: stop accepting, let in-flight forwards settle (so
    no response is cut off mid-relay), then SIGTERM the children —
    each drains its scheduler before exiting — and reap them all.
    """
    dispatcher.shutdown()
    if drain:
        deadline = monotonic() + timeout_s
        while dispatcher.active_forwards() > 0 \
                and monotonic() < deadline:
            time.sleep(0.02)
    _terminate_workers(list(dispatcher.workers), timeout_s=timeout_s)
    for client in dispatcher.clients.values():
        client.close()
    dispatcher.server_close()
