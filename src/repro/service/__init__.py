"""Long-running charging-planning service.

Turns the repository's batch pipeline into a deterministic request/
response service: JSON planning requests (schema
``bundle-charging/request/v1``) are validated, canonicalized,
micro-batched by content digest, executed on a bounded worker pool
behind admission control, and answered with envelopes whose *payload*
is a byte-identical pure function of the canonical request.  The stage
cache (``repro.cache``) and span tracing (``repro.obs``) plug in when
present and degrade away cleanly when absent.  ``POST /v1/plan/delta``
layers incremental replanning on top: retained sessions
(:mod:`repro.delta`) are repaired in place instead of replanned, under
the same byte-identity and micro-batching discipline.

Layering (each module imports only downward):

* :mod:`.request` — wire schemas, validation, canonicalization,
  digests, envelopes (pure stdlib, no optional deps).
* :mod:`.config` — :class:`ServiceConfig`.
* :mod:`.executor` — canonical request -> deterministic payload,
  through the stage cache when available.
* :mod:`.scheduler` — micro-batching queue + worker pool + admission.
* :mod:`.metrics` — the ``/metrics`` v2 snapshot + Prometheus text.
* :mod:`.accesslog` — the JSONL structured access log.
* :mod:`.http` — the ``ThreadingHTTPServer`` front end.
* :mod:`.ring` — the consistent-hash ring sharding the digest space.
* :mod:`.pool` — pre-forked multi-process serving (``--workers N``):
  a parent dispatcher routes each canonical digest to its shard
  worker; the on-disk cache is the shared warm tier.
* :mod:`.cli` — the ``bundle-charging serve`` subcommand.
* :mod:`.smoke` — the in-process end-to-end check CI runs.
"""

from .accesslog import (AccessLogWriter, access_record,
                        access_record_problems)
from .config import ServiceConfig
from .executor import (cache_for_service, delta_plan_payload,
                       execute_delta, execute_request, plan_payload)
from .http import (PlanningHTTPServer, build_server, start_server,
                   stop_server)
from .metrics import (aggregate_worker_metrics, metrics_problems,
                      metrics_snapshot, prometheus_text)
from .pool import (DispatcherHTTPServer, WorkerHandle, start_pool,
                   stop_pool, worker_config)
from .ring import HashRing
from .request import (ACCESS_SCHEMA, CACHE_OUTCOMES, METRICS_SCHEMA,
                      METRICS_SCHEMA_V2, REQUEST_SCHEMA,
                      RESPONSE_SCHEMA, RequestError, canonical_json,
                      canonical_request, error_envelope, ok_envelope,
                      payload_digest, request_digest, request_problems,
                      response_problems)
from .scheduler import (DrainingError, OverloadedError,
                        PlanningScheduler)

__all__ = [
    "ACCESS_SCHEMA",
    "AccessLogWriter",
    "CACHE_OUTCOMES",
    "DispatcherHTTPServer",
    "DrainingError",
    "HashRing",
    "METRICS_SCHEMA",
    "METRICS_SCHEMA_V2",
    "OverloadedError",
    "PlanningHTTPServer",
    "PlanningScheduler",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "RequestError",
    "ServiceConfig",
    "WorkerHandle",
    "access_record",
    "aggregate_worker_metrics",
    "access_record_problems",
    "build_server",
    "cache_for_service",
    "canonical_json",
    "canonical_request",
    "delta_plan_payload",
    "error_envelope",
    "execute_delta",
    "execute_request",
    "metrics_problems",
    "metrics_snapshot",
    "ok_envelope",
    "payload_digest",
    "plan_payload",
    "prometheus_text",
    "request_digest",
    "request_problems",
    "response_problems",
    "start_pool",
    "start_server",
    "stop_pool",
    "stop_server",
    "worker_config",
]
