"""HTTP front end of the planning service.

A thin, pure-stdlib layer over :mod:`http.server`:

* ``POST /v1/plan`` — one planning request in, one response envelope
  out.  The envelope's ``payload`` is byte-identical across repeats of
  the same canonical request; the cache outcome travels both in the
  envelope and in the ``X-BC-Cache`` header.
* ``POST /v1/batch`` — ``{"requests": [...]}``, at most
  ``config.max_batch`` items, answered as ``{"responses": [...]}`` with
  one envelope per item.  All items are admitted before any is awaited,
  so identical items in one batch share a single compute.
* ``POST /v1/plan/delta`` — incremental replanning: a session handle
  (minted by ``/v1/plan`` in the ``X-BC-Session`` header and in every
  delta payload) plus a list of delta records, answered with the
  repaired plan under the same canonical-request / ``payload_sha256``
  discipline and micro-batching as ``/v1/plan``.  The successor handle
  rides in the payload and the ``X-BC-Session`` header; under
  ``--delta-shadow-verify`` the repaired/full energy ratio is reported
  in ``X-BC-Delta-Ratio``.
* ``GET /healthz`` / ``GET /metrics`` — liveness and the
  ``bundle-charging/service-metrics/v2`` snapshot (uptime, provenance,
  scheduler/perf/cache stats, and the labeled latency histograms).
  ``Accept: text/plain`` or ``?format=prometheus`` switches ``/metrics``
  to Prometheus text exposition.

Telemetry: each server owns a :class:`repro.obs.metrics.MetricsRegistry`
(enabled by ``config.metrics``) recording request latency, queue wait
and compute histograms labeled by planner and cache outcome, plus an
optional JSONL access log (``config.access_log``) with one
``bundle-charging/access/v1`` record per settled request.  Both are
observers only: response payloads are byte-identical with metrics on,
off, or ``repro.obs`` absent.

Error mapping: 400 invalid JSON / invalid request / unknown planner,
404 unknown path or unknown session (``unknown-session`` — the handle
was evicted or never minted here; re-establish via ``/v1/plan``),
405 wrong method, 409 stale session kernel (``stale-kernel`` — the
client pinned a ``kernel_sha256`` that no longer matches this server's
repair kernels), 413 oversized body, 429 admission shed
(:class:`OverloadedError`), 503 draining, 504 request timeout, 500
internal planner failure.  Every error body is a typed
``error_envelope``.

Provenance: at startup the server builds one base manifest (a single
``git rev-parse`` — never per request); each ok envelope carries it
extended with the request digest and serving wall time.  Wall-clock
facts live only there and in headers, never in the payload.  When
``repro.obs`` is absent the service runs degraded: no provenance, no
tracing, identical payloads.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..clock import monotonic, wall
from ..delta.protocol import (DELTA_REQUEST_SCHEMA,
                              canonical_delta_request,
                              delta_request_problems)
from ..delta.session import (advance_session, delta_kernel_sha256,
                             session_from_plan_payload)
from ..delta.store import SessionStore
from .accesslog import AccessLogWriter, access_record
from .config import ServiceConfig
from .executor import (cache_for_service, execute_delta, execute_request)
from .metrics import metrics_snapshot, prometheus_text
from .request import (RequestError, canonical_request, error_envelope,
                      ok_envelope)
from .scheduler import (Batch, DrainingError, OverloadedError,
                        PlanningScheduler)

try:  # observability is optional: the server works with repro.obs absent
    from ..obs.manifest import build_manifest as _build_manifest
    from ..obs.metrics import MetricsRegistry as _MetricsRegistry
    from ..obs.tracer import TRACER as _TRACER
    _HAVE_OBS = True
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    _build_manifest = None  # type: ignore[assignment]
    _MetricsRegistry = None  # type: ignore[assignment]
    _TRACER = None  # type: ignore[assignment]
    _HAVE_OBS = False

__all__ = ["PlanningHTTPServer", "ServiceRequestHandler", "build_server",
           "start_server", "stop_server"]


class PlanningHTTPServer(ThreadingHTTPServer):
    """The serving socket plus the service's long-lived state."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: ServiceConfig,
                 sock: Optional[socket.socket] = None,
                 worker_index: Optional[int] = None) -> None:
        if sock is None:
            super().__init__((config.host, config.port),
                             ServiceRequestHandler)
        else:
            # Adopt a pre-bound, already-listening socket.  The worker
            # pool binds every worker socket in the parent *before*
            # forking (so it knows the ports without any IPC), then
            # each child wraps its own socket here.
            address = sock.getsockname()
            super().__init__((address[0], address[1]),
                             ServiceRequestHandler,
                             bind_and_activate=False)
            self.socket.close()  # drop the unused default socket
            self.socket = sock
            self.server_address = address
            # Mimic HTTPServer.server_bind, skipped above.
            self.server_name = socket.getfqdn(address[0])
            self.server_port = address[1]
        self.worker_index = worker_index
        self.config = config
        self.cache = cache_for_service(config)
        self.metrics = (_MetricsRegistry(enabled=config.metrics)
                        if _HAVE_OBS else None)
        self.sessions = SessionStore(config.session_entries)
        # Transport-side repair reports (bounded, keyed by request
        # digest): written by the compute when a repair actually runs,
        # read once by the handler for the X-BC-Delta-Ratio header and
        # the delta metrics.  Never touches payload bytes.
        self.delta_reports: Dict[str, Any] = {}
        self._delta_reports_lock = threading.Lock()
        self.scheduler = PlanningScheduler(
            self._compute, jobs=config.jobs,
            queue_limit=config.queue_limit, metrics=self.metrics)
        self.access_log = (AccessLogWriter(config.access_log)
                           if config.access_log else None)
        self.started_monotonic = monotonic()
        self.started_unix = wall()
        self.base_provenance: Optional[Dict[str, Any]] = None
        if _HAVE_OBS:
            if config.trace_dir:
                _TRACER.enabled = True
                _TRACER.reset()
            self.base_provenance = _build_manifest(
                "service",
                {"host": config.host, "port": config.port,
                 "jobs": config.jobs,
                 "queue_limit": config.queue_limit,
                 "use_cache": config.use_cache,
                 "cache_dir": config.cache_dir,
                 "planners": (list(config.planners)
                              if config.planners else None)},
                seeds=[], wall_time_s=0.0)

    def _compute(self, request: Dict[str, Any]
                 ) -> Tuple[Dict[str, Any], str]:
        """The scheduler's compute: dispatch on the request schema.

        Canonical plan requests and canonical delta requests share one
        scheduler (one queue, one admission bound, one micro-batching
        digest space) and are told apart by their ``schema`` tag.
        """
        if request.get("schema") == DELTA_REQUEST_SCHEMA:
            return execute_delta(
                request, self.sessions, self.cache,
                shadow=self.config.delta_shadow_verify,
                max_ratio=self.config.delta_max_ratio,
                report_sink=self._report_sink())
        return execute_request(request, self.cache)

    def _report_sink(self) -> Dict[str, Any]:
        """Bound the report map before handing it to a compute."""
        with self._delta_reports_lock:
            if len(self.delta_reports) > 4 * self.config.queue_limit:
                self.delta_reports.clear()
            return self.delta_reports

    def take_delta_report(self, digest: str) -> Optional[Any]:
        """Pop the repair report of one served delta request, if any."""
        with self._delta_reports_lock:
            return self.delta_reports.pop(digest, None)

    def register_session(self, request: Dict[str, Any],
                         payload: Dict[str, Any]) -> str:
        """Retain (or refresh) the session a ``/v1/plan`` answer mints.

        Reconstruction is pure, so registering the same payload twice
        (repeat requests, cache hits, duplicate batch items) converges
        on one handle.
        """
        session = session_from_plan_payload(request, payload)
        self.sessions.put(session)
        return session.handle

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    def response_provenance(self, digest: str,
                            wall_time_s: float
                            ) -> Optional[Dict[str, Any]]:
        """Extend the base manifest with one response's facts."""
        if self.base_provenance is None:
            return None
        provenance = dict(self.base_provenance)
        provenance["request_sha256"] = digest
        provenance["wall_time_s"] = round(wall_time_s, 6)
        return provenance

    def metrics_document(self) -> Dict[str, Any]:
        """Build the current ``/metrics`` v2 document."""
        return metrics_snapshot(
            self.scheduler, self.cache,
            uptime_s=monotonic() - self.started_monotonic,
            started_unix=self.started_unix,
            provenance=self.base_provenance,
            registry=self.metrics)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints; every response body is JSON."""

    server: PlanningHTTPServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr access log."""

    # --- plumbing ---------------------------------------------------------

    def _send_json(self, status: int, document: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> int:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        return len(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4; "
                   "charset=utf-8") -> int:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return len(body)

    def _send_error_envelope(self, status: int, code: str, message: str,
                             problems: Optional[List[str]] = None
                             ) -> int:
        self._last_error = (status, code)
        return self._send_json(status,
                               error_envelope(code, message, problems))

    def _read_json_body(self) -> Tuple[Optional[Any], bool]:
        """Return (parsed body, ok); sends the error response itself."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length <= 0:
            self._send_error_envelope(
                400, "invalid-json", "request body must be JSON "
                "(missing or empty Content-Length)")
            return None, False
        if length > self.server.config.max_body_bytes:
            self._send_error_envelope(
                413, "payload-too-large",
                f"request body exceeds "
                f"{self.server.config.max_body_bytes} bytes")
            return None, False
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8")), True
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_envelope(
                400, "invalid-json", f"request body is not JSON: {exc}")
            return None, False

    def _timeout_s(self) -> float:
        """Effective wait budget: config default, lowerable per request."""
        default = self.server.config.timeout_s
        query = parse_qs(urlsplit(self.path).query)
        values = query.get("timeout_s")
        if not values:
            return default
        try:
            requested = float(values[0])
        except ValueError:
            return default
        if requested <= 0.0:
            return default
        return min(default, requested)

    # --- request serving --------------------------------------------------

    def _admit(self, body: Any) -> Tuple[Optional[Batch],
                                         Optional[Dict[str, Any]],
                                         int]:
        """Validate + submit one item; return (batch, error doc, status)."""
        try:
            request = canonical_request(body)
        except RequestError as exc:
            return None, error_envelope(exc.code, str(exc),
                                        exc.problems), 400
        if not self.server.config.serves_planner(request["planner"]):
            return None, error_envelope(
                "planner-not-served",
                f"this server does not serve planner "
                f"{request['planner']!r} (allowlist: "
                f"{list(self.server.config.planners or ())})"), 400
        try:
            return self.server.scheduler.submit(request), None, 200
        except OverloadedError as exc:
            return None, error_envelope("overloaded", str(exc)), 429
        except DrainingError as exc:
            return None, error_envelope("draining", str(exc)), 503

    def _settle(self, batch: Batch, timeout_s: float, started: float
                ) -> Tuple[Dict[str, Any], int, Dict[str, str]]:
        """Wait for a batch; return (document, status, extra headers)."""
        if not self.server.scheduler.wait(batch, timeout_s):
            return (error_envelope(
                "timeout",
                f"request did not complete within {timeout_s}s "
                f"(it may still finish and warm the cache)"), 504, {})
        if batch.error is not None:
            return (error_envelope(
                "internal",
                f"planning failed: {batch.error}"), 500, {})
        envelope = ok_envelope(
            batch.payload, batch.outcome,
            provenance=self.server.response_provenance(
                batch.digest, monotonic() - started))
        headers = {"X-BC-Cache": batch.outcome,
                   "X-BC-Request-SHA256": batch.digest}
        if self.server.worker_index is not None:
            # Pool worker: stamp which shard computed the response so
            # the dispatcher (and loadgen) can observe the routing.
            headers["X-BC-Worker"] = str(self.server.worker_index)
        return envelope, 200, headers

    def _record_plan(self, path: str, status: int, started: float,
                     batch: Optional[Batch] = None,
                     document: Optional[Dict[str, Any]] = None,
                     bytes_out: Optional[int] = None) -> None:
        """Observe one settled plan item: histograms + access log.

        Pure observer — runs after the response document is built, so
        it can never perturb payload bytes.
        """
        latency = monotonic() - started
        planner = batch.request.get("planner") if batch else None
        outcome = batch.outcome if batch and status == 200 else None
        error = None
        if document is not None and document.get("status") == "error":
            error = document.get("error", {}).get("code")
            outcome = None
        metrics = self.server.metrics
        if metrics is not None:
            metrics.observe("service.request_seconds", latency,
                            planner=planner or "-",
                            outcome=outcome or "none",
                            status=str(status))
            metrics.inc("service.requests", path=path,
                        status=str(status))
        log = self.server.access_log
        if log is not None:
            log.write(access_record(
                "POST", path, status, latency,
                digest=batch.digest if batch else None,
                planner=planner, outcome=outcome,
                queue_wait_s=batch.queue_wait_s if batch else None,
                compute_s=batch.compute_s if batch else None,
                bytes_out=bytes_out, error=error))

    def _record_access(self, method: str, path: str, status: int,
                       started: float,
                       bytes_out: Optional[int] = None,
                       error: Optional[str] = None) -> None:
        """Log a non-plan request (health, metrics, routing errors).

        Counted in ``service.requests`` and the access log, but kept
        out of the latency histograms so scrapes and 404s cannot skew
        the planning percentiles.
        """
        latency = monotonic() - started
        metrics = self.server.metrics
        if metrics is not None:
            metrics.inc("service.requests", path=path,
                        status=str(status))
        log = self.server.access_log
        if log is not None:
            log.write(access_record(method, path, status, latency,
                                    bytes_out=bytes_out, error=error))

    def _handle_plan(self) -> None:
        started = monotonic()
        body, ok = self._read_json_body()
        if not ok:
            status, code = self._last_error
            self._record_access("POST", "/v1/plan", status, started,
                                error=code)
            return
        batch, error_doc, status = self._admit(body)
        if batch is None:
            sent = self._send_json(status, error_doc)
            self._record_plan("/v1/plan", status, started,
                              document=error_doc, bytes_out=sent)
            return
        document, status, headers = self._settle(
            batch, self._timeout_s(), started)
        if status == 200:
            headers["X-BC-Session"] = self.server.register_session(
                batch.request, batch.payload)
        sent = self._send_json(status, document, headers)
        self._record_plan("/v1/plan", status, started, batch=batch,
                          document=document, bytes_out=sent)

    def _handle_delta(self) -> None:
        started = monotonic()
        path = "/v1/plan/delta"
        body, ok = self._read_json_body()
        if not ok:
            status, code = self._last_error
            self._record_access("POST", path, status, started,
                                error=code)
            return
        problems = delta_request_problems(body)
        if problems:
            code = ("unsupported-schema"
                    if any("unsupported request schema" in problem
                           for problem in problems)
                    else "invalid-request")
            sent = self._send_error_envelope(
                400, code, "invalid delta request", problems)
            self._record_plan(path, 400, started,
                              document=error_envelope(code, "invalid"),
                              bytes_out=sent)
            return
        pinned = body.get("kernel_sha256")
        if pinned is not None and pinned != delta_kernel_sha256():
            sent = self._send_error_envelope(
                409, "stale-kernel",
                f"session kernels changed: this server repairs under "
                f"fingerprint {delta_kernel_sha256()}; re-establish "
                f"the session via /v1/plan")
            self._record_plan(path, 409, started,
                              document=error_envelope("stale-kernel",
                                                      "stale"),
                              bytes_out=sent)
            return
        session = self.server.sessions.get(body["session"])
        if session is None:
            sent = self._send_error_envelope(
                404, "unknown-session",
                f"session {body['session']!r} is not retained here; "
                f"re-establish it via /v1/plan")
            self._record_plan(path, 404, started,
                              document=error_envelope("unknown-session",
                                                      "unknown"),
                              bytes_out=sent)
            return
        request = canonical_delta_request(body,
                                          session.request["planner"])
        try:
            batch = self.server.scheduler.submit(request)
        except OverloadedError as exc:
            sent = self._send_json(429,
                                   error_envelope("overloaded", str(exc)))
            self._record_plan(path, 429, started,
                              document=error_envelope("overloaded",
                                                      "shed"),
                              bytes_out=sent)
            return
        except DrainingError as exc:
            sent = self._send_json(503,
                                   error_envelope("draining", str(exc)))
            self._record_plan(path, 503, started,
                              document=error_envelope("draining",
                                                      "drain"),
                              bytes_out=sent)
            return
        document, status, headers = self._settle(
            batch, self._timeout_s(), started)
        report = self.server.take_delta_report(batch.digest)
        if status == 200:
            successor = advance_session(session, request["deltas"],
                                        batch.payload)
            self.server.sessions.put(successor)
            headers["X-BC-Session"] = batch.payload["session"]
            if report is not None and report.energy_ratio is not None:
                headers["X-BC-Delta-Ratio"] = repr(report.energy_ratio)
        sent = self._send_json(status, document, headers)
        self._record_plan(path, status, started, batch=batch,
                          document=document, bytes_out=sent)
        self._record_delta(status, batch, report)

    def _record_delta(self, status: int, batch: Batch,
                      report: Optional[Any]) -> None:
        """Delta-specific telemetry on top of the shared plan metrics."""
        metrics = self.server.metrics
        if metrics is None:
            return
        strategy = report.strategy if report is not None else "cached"
        metrics.inc("service.delta_requests", strategy=strategy,
                    status=str(status))
        if report is not None and batch.compute_s is not None:
            metrics.observe("service.delta_repair_seconds",
                            batch.compute_s, strategy=report.strategy)

    def _handle_batch(self) -> None:
        started = monotonic()
        body, ok = self._read_json_body()
        if not ok:
            status, code = self._last_error
            self._record_access("POST", "/v1/batch", status, started,
                                error=code)
            return
        requests = body.get("requests") if isinstance(body, dict) else None
        if not isinstance(requests, list) or not requests:
            sent = self._send_error_envelope(
                400, "invalid-request",
                "batch body must be {\"requests\": [<request>, ...]}")
            self._record_access("POST", "/v1/batch", 400, started,
                                bytes_out=sent, error="invalid-request")
            return
        max_batch = self.server.config.max_batch
        if len(requests) > max_batch:
            sent = self._send_error_envelope(
                400, "batch-too-large",
                f"batch carries {len(requests)} requests; the limit "
                f"is {max_batch}")
            self._record_access("POST", "/v1/batch", 400, started,
                                bytes_out=sent, error="batch-too-large")
            return
        admitted: List[Tuple[Optional[Batch], Optional[Dict[str, Any]],
                             int]] \
            = [(batch, error_doc, status)
               for batch, error_doc, status in map(self._admit, requests)]
        timeout_s = self._timeout_s()
        responses: List[Dict[str, Any]] = []
        settled: List[Tuple[Optional[Batch], Dict[str, Any], int]] = []
        for batch, error_doc, status in admitted:
            if batch is None:
                responses.append(error_doc)
                settled.append((None, error_doc, status))
            else:
                document, status, _ = self._settle(batch, timeout_s,
                                                   started)
                if status == 200:
                    self.server.register_session(batch.request,
                                                 batch.payload)
                responses.append(document)
                settled.append((batch, document, status))
        self._send_json(200, {"responses": responses})
        for batch, document, status in settled:
            self._record_plan("/v1/batch", status, started,
                              batch=batch, document=document)

    # --- routing ----------------------------------------------------------

    def _wants_prometheus(self) -> bool:
        """Content negotiation for ``/metrics``: query beats Accept."""
        query = parse_qs(urlsplit(self.path).query)
        formats = query.get("format")
        if formats:
            return formats[0].lower() in ("prometheus", "text")
        accept = (self.headers.get("Accept") or "").lower()
        return "text/plain" in accept

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        started = monotonic()
        path = urlsplit(self.path).path
        if path == "/healthz":
            sent = self._send_json(200, {
                "status": "ok",
                "uptime_s": round(
                    monotonic() - self.server.started_monotonic, 3),
                "draining": self.server.scheduler.stats()["draining"],
            })
            self._record_access("GET", path, 200, started,
                                bytes_out=sent)
        elif path == "/metrics":
            document = self.server.metrics_document()
            if self._wants_prometheus():
                sent = self._send_text(200, prometheus_text(document))
            else:
                sent = self._send_json(200, document)
            self._record_access("GET", path, 200, started,
                                bytes_out=sent)
        else:
            sent = self._send_error_envelope(
                404, "not-found", f"unknown path {path!r}")
            self._record_access("GET", path, 404, started,
                                bytes_out=sent, error="not-found")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        started = monotonic()
        path = urlsplit(self.path).path
        if path == "/v1/plan":
            self._handle_plan()
        elif path == "/v1/plan/delta":
            self._handle_delta()
        elif path == "/v1/batch":
            self._handle_batch()
        elif path in ("/healthz", "/metrics"):
            sent = self._send_error_envelope(
                405, "method-not-allowed", f"{path} is GET-only")
            self._record_access("POST", path, 405, started,
                                bytes_out=sent,
                                error="method-not-allowed")
        else:
            sent = self._send_error_envelope(
                404, "not-found", f"unknown path {path!r}")
            self._record_access("POST", path, 404, started,
                                bytes_out=sent, error="not-found")


def build_server(config: ServiceConfig) -> PlanningHTTPServer:
    """Bind the server socket (without starting the accept loop)."""
    return PlanningHTTPServer(config)


def start_server(config: ServiceConfig
                 ) -> Tuple[PlanningHTTPServer, threading.Thread]:
    """Bind and start serving on a daemon thread; return both."""
    server = build_server(config)
    thread = threading.Thread(target=server.serve_forever,
                              name="plan-http", daemon=True)
    thread.start()
    return server, thread


def stop_server(server: PlanningHTTPServer, drain: bool = True) -> None:
    """Gracefully stop: drain the scheduler, close the socket and the
    access log, flush the trace (when enabled), disable the tracer."""
    server.scheduler.shutdown(drain=drain)
    server.shutdown()
    server.server_close()
    if server.access_log is not None:
        server.access_log.close()
    trace_dir = server.config.trace_dir
    if _HAVE_OBS and trace_dir and _TRACER.enabled:
        import os
        os.makedirs(trace_dir, exist_ok=True)
        _TRACER.write_jsonl(os.path.join(trace_dir, "service.jsonl"),
                            manifest=server.base_provenance)
        _TRACER.enabled = False
        _TRACER.reset()
