"""The stage-memoization engine: :class:`StageCache`.

``get_or_compute(stage, params, compute)`` is the whole contract: derive
the content-addressed key, serve the pickled payload from the in-memory
LRU (then the optional disk store), or run ``compute`` and remember the
result.  Three properties keep it safe to put in front of deterministic
kernels:

* **Bit-identity** — a hit deserializes the stored pickle, and every
  cached type (plans, networks, masks, orders) round-trips pickling
  exactly, so a warm run's outputs are byte-identical to a cold run's.
  The randomized *shadow-verify* mode enforces this continuously: on a
  deterministic per-key subsample of hits the stage is recomputed
  anyway (with caching bypassed underneath) and any byte difference
  raises :class:`CacheError`.
* **Isolation** — hits return fresh deserializations, never shared
  objects, so a caller mutating a result cannot poison the cache.
* **Observability** — hit/miss/evict/shadow counters report into
  :data:`repro.perf.PERF` (so they merge across ``--jobs`` workers like
  every other counter), and when span tracing is live the enclosing
  span receives a ``cache`` attribute mapping stage -> hit/miss.

Warm-start hints (the opt-in TSP 2-opt warm start) also live here: they
are deliberately *not* content-addressed — a hint is a best-effort
starting tour, not a memoized result — and enabling them disables the
memoization of the stages whose outputs they can change.
"""

from __future__ import annotations

import pickle
import random
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import CacheError
from ..perf.counters import PERF
from .keys import stage_key
from .store import DiskStore, MemoryStore, PICKLE_PROTOCOL

try:  # tracing is optional: the cache works with repro.obs absent
    from ..obs.tracer import TRACER as _TRACER
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    _TRACER = None  # type: ignore[assignment]

#: Stages whose memoization is disabled while TSP warm-starting is on:
#: their outputs depend on the (execution-order-sensitive) hint state,
#: so content-addressed keys would no longer determine their values.
WARM_START_SKIP_STAGES = frozenset({"tsp", "seed_row"})

__all__ = ["StageCache", "WARM_START_SKIP_STAGES"]


def _annotate_span(stage: str, outcome: str) -> None:
    """Attach ``cache: {stage: outcome}`` to the open span, if any."""
    if _TRACER is None or not _TRACER.enabled:
        return
    span = _TRACER.current()
    if span is None:
        return
    cache_attr = dict(span.attrs.get("cache") or {})
    cache_attr[stage] = outcome
    span.set(cache=cache_attr)


class StageCache:
    """Content-addressed memoization of pipeline stages.

    Attributes:
        shadow_rate: fraction of hits to shadow-verify (0 disables; the
            per-key decision is derived from the key itself, so a given
            entry is either always or never checked at a given rate —
            reproducible in CI).
        warm_start: enable the opt-in TSP warm-start hints (and disable
            memoization of the stages they influence).
    """

    def __init__(self, max_entries: int = 256,
                 cache_dir: Optional[str] = None,
                 shadow_rate: float = 0.0,
                 warm_start: bool = False) -> None:
        if not 0.0 <= shadow_rate <= 1.0:
            raise CacheError(
                f"shadow-verify rate must be in [0, 1]: {shadow_rate!r}")
        self.memory = MemoryStore(max_entries)
        self.disk: Optional[DiskStore] = (
            DiskStore(cache_dir) if cache_dir else None)
        self.shadow_rate = shadow_rate
        self.warm_start = warm_start
        # The service shares one StageCache across scheduler workers:
        # the shadow-verify bypass depth is per-thread (another
        # thread's verification must not bypass this one's lookups),
        # and the hint table has an owning lock.
        self._local = threading.local()
        self._hint_lock = threading.Lock()
        self._tsp_hints: Dict[tuple, List[int]] = {}

    @property
    def _bypass_depth(self) -> int:
        return getattr(self._local, "bypass_depth", 0)

    @_bypass_depth.setter
    def _bypass_depth(self, value: int) -> None:
        self._local.bypass_depth = value

    # --- memoization ------------------------------------------------------

    def get_or_compute(self, stage: str, params: Dict[str, Any],
                       compute: Callable[[], Any]) -> Any:
        """Serve ``stage(params)`` from the cache or compute and store it.

        Args:
            stage: registered stage name (keys.KERNEL_VERSIONS).
            params: the stage's exact inputs (canonicalizable).
            compute: zero-argument thunk producing the stage result.

        Raises:
            CacheError: on an unkeyable stage/params, or when a
                shadow-verified hit is not bit-identical to recompute.
        """
        if self._bypass_depth or (self.warm_start
                                  and stage in WARM_START_SKIP_STAGES):
            return compute()
        key = stage_key(stage, params)
        blob = self.memory.get(key)
        if blob is None and self.disk is not None:
            blob = self.disk.read(key)
            if blob is not None:
                PERF.add("cache.disk_hit")
                evicted = self.memory.put(key, stage, blob)
                if evicted:
                    PERF.add("cache.evict", evicted)
        if blob is not None:
            PERF.add("cache.hit")
            PERF.add(f"cache.hit.{stage}")
            _annotate_span(stage, "hit")
            if self._shadow_selected(key):
                self._shadow_verify(stage, key, blob, compute)
            return pickle.loads(blob)
        PERF.add("cache.miss")
        PERF.add(f"cache.miss.{stage}")
        _annotate_span(stage, "miss")
        value = compute()
        blob = pickle.dumps(value, protocol=PICKLE_PROTOCOL)
        evicted = self.memory.put(key, stage, blob)
        if evicted:
            PERF.add("cache.evict", evicted)
        if self.disk is not None:
            self.disk.write(key, stage, blob)
        return value

    def contains(self, stage: str, params: Dict[str, Any]) -> bool:
        """Probe whether ``stage(params)`` is currently cached.

        Advisory (a concurrent eviction can race it); the planning
        service uses it to label a response ``hit`` or ``miss`` before
        serving through :meth:`get_or_compute`.
        """
        key = stage_key(stage, params)
        if self.memory.get(key) is not None:
            return True
        return self.disk is not None and self.disk.read(key) is not None

    def _shadow_selected(self, key: str) -> bool:
        """Decide (deterministically per key) whether to shadow-check."""
        if self.shadow_rate <= 0.0:
            return False
        if self.shadow_rate >= 1.0:
            return True
        rng = random.Random(int(key[:16], 16))
        return rng.random() < self.shadow_rate

    def _shadow_verify(self, stage: str, key: str, blob: bytes,
                       compute: Callable[[], Any]) -> None:
        """Recompute a hit (bypassing the cache) and demand identity."""
        PERF.add("cache.shadow_checks")
        self._bypass_depth += 1
        try:
            fresh = compute()
        finally:
            self._bypass_depth -= 1
        if pickle.dumps(fresh, protocol=PICKLE_PROTOCOL) != blob:
            PERF.add("cache.shadow_mismatches")
            raise CacheError(
                f"shadow-verify mismatch for stage {stage!r} (key "
                f"{key[:12]}...): cached payload is not bit-identical "
                f"to recomputation — the stage is nondeterministic or "
                f"its kernel changed without a KERNEL_VERSIONS bump")

    # --- warm-start hints -------------------------------------------------

    def tsp_hint(self, strategy: str,
                 n_cities: int) -> Optional[List[int]]:
        """Return the last tour order seen for (strategy, city count)."""
        if not self.warm_start:
            return None
        with self._hint_lock:
            hint = self._tsp_hints.get((strategy, n_cities))
            hint = list(hint) if hint is not None else None
        if hint is not None:
            PERF.add("cache.warm_start.used")
        return hint

    def store_tsp_hint(self, strategy: str, n_cities: int,
                       order: Sequence[int]) -> None:
        """Remember a solved tour as the next warm-start candidate."""
        if not self.warm_start:
            return
        with self._hint_lock:
            self._tsp_hints[(strategy, n_cities)] = list(order)

    # --- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Return memory (and, if configured, disk) store statistics."""
        stats: Dict[str, Any] = {
            "memory": self.memory.stats(),
            "shadow_rate": self.shadow_rate,
            "warm_start": self.warm_start,
        }
        if self.disk is not None:
            stats["disk"] = self.disk.stats()
        return stats
