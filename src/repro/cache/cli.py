"""The ``bundle-charging cache`` subcommand: stats / clear / verify.

Operates on an on-disk store (``--cache-dir``); the in-memory LRU is
per-process and has nothing to inspect after a run ends.
"""

from __future__ import annotations

import json
import sys
from typing import Optional

from .store import DiskStore

ACTIONS = ("stats", "clear", "verify")

__all__ = ["ACTIONS", "run_cache_command"]


def run_cache_command(action: Optional[str],
                      cache_dir: Optional[str]) -> int:
    """Execute one cache maintenance action against ``cache_dir``.

    Returns:
        Process exit code: 0 on success, 1 when ``verify`` finds
        problems, 2 on usage errors.
    """
    if action not in ACTIONS:
        print(f"cache needs an action, got {action!r}; choose from "
              f"{list(ACTIONS)}", file=sys.stderr)
        return 2
    if not cache_dir:
        print("cache needs --cache-dir <DIR>", file=sys.stderr)
        return 2
    store = DiskStore(cache_dir)
    if action == "stats":
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
        return 0
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} cache entries from {cache_dir}")
        return 0
    problems = store.verify()
    if problems:
        for problem in problems:
            print(f"cache verify: {problem}", file=sys.stderr)
        print(f"{len(problems)} invalid entries in {cache_dir}",
              file=sys.stderr)
        return 1
    entries = store.stats()["entries"]
    print(f"all {entries} cache entries verified in {cache_dir}")
    return 0
