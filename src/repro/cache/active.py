"""Active-cache plumbing: how pipeline call sites reach the cache.

The pipeline's hot modules (bundling, planners, the experiment runner)
must not take a ``StageCache`` parameter through every signature, and
must keep working when ``repro.cache`` is physically absent.  They
therefore import :func:`stage_memo` behind the same ImportError-safe
pattern as ``repro.obs``, and the runner *activates* a cache around a
run; with no active cache, ``stage_memo`` is a plain passthrough.

Caches are built once per process per configuration
(:func:`cache_for_config`) so that a sweep driver's successive
``run_averaged`` calls share one LRU (that is where cross-radius reuse
comes from), and pool workers — which receive the same config — build
their own process-local cache over the same shared disk store.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from .stage import StageCache

#: Per-thread activation stacks; the innermost activation wins.  The
#: stack is thread-local because the serving scheduler activates the
#: service cache around every request *on its worker threads* — a
#: process-wide list would interleave pushes/pops across concurrent
#: requests and make ``get_active_cache`` see another thread's cache.
_ACTIVE = threading.local()


def _stack() -> list:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    return stack

#: Per-process cache registry, keyed by cache-relevant config fields.
_REGISTRY: Dict[tuple, StageCache] = {}

__all__ = ["activate_cache", "activation_for_config", "cache_for_config",
           "get_active_cache", "reset_cache_state", "stage_memo"]


def get_active_cache() -> Optional[StageCache]:
    """Return this thread's innermost activated cache, or None."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def activate_cache(cache: Optional[StageCache]) -> Iterator[
        Optional[StageCache]]:
    """Make ``cache`` the active cache for the ``with`` block.

    ``None`` is accepted and activates nothing, so callers can write
    ``with activate_cache(maybe_cache):`` unconditionally.
    """
    if cache is None:
        yield None
        return
    stack = _stack()
    stack.append(cache)
    try:
        yield cache
    finally:
        stack.pop()


def stage_memo(stage: str, params_fn: Callable[[], Dict[str, Any]],
               compute: Callable[[], Any]) -> Any:
    """Memoize ``compute()`` under the active cache (if any).

    Args:
        stage: registered stage name.
        params_fn: lazy producer of the stage's key params — only
            called when a cache is active, so inactive runs pay nothing
            for key derivation.
        compute: zero-argument thunk producing the stage result.
    """
    cache = get_active_cache()
    if cache is None:
        return compute()
    return cache.get_or_compute(stage, params_fn(), compute)


def cache_for_config(config: Any) -> Optional[StageCache]:
    """Build (or fetch) the process-wide cache for an experiment config.

    Caching is opt-in: returns None unless the config enables the
    in-memory cache (``use_cache``), names a ``cache_dir``, or requests
    TSP warm-starting (whose hints live on the cache object).
    """
    use_cache = bool(getattr(config, "use_cache", False))
    cache_dir = getattr(config, "cache_dir", None)
    warm_start = bool(getattr(config, "warm_start", False))
    if not (use_cache or cache_dir or warm_start):
        return None
    signature = (
        cache_dir,
        int(getattr(config, "cache_entries", 256)),
        float(getattr(config, "shadow_verify", 0.0)),
        warm_start,
    )
    cache = _REGISTRY.get(signature)
    if cache is None:
        cache = StageCache(max_entries=signature[1],
                           cache_dir=signature[0],
                           shadow_rate=signature[2],
                           warm_start=signature[3])
        _REGISTRY[signature] = cache
    return cache


def activation_for_config(config: Any):
    """Return an activation context for ``config`` (no-op if disabled)."""
    return activate_cache(cache_for_config(config))


def reset_cache_state() -> None:
    """Drop the registry and this thread's activation stack (test
    isolation; other threads' activations are theirs to unwind)."""
    _REGISTRY.clear()
    _stack().clear()
