"""Cache entry stores: bounded in-memory LRU + opt-in on-disk store.

Both stores deal in *pickled payload bytes*, never live objects: a hit
is deserialized freshly on every read, so cached values can never alias
a caller's mutable state, and byte-level equality is the natural
shadow-verify comparison.

The disk layout is one binary file per entry under
``<root>/objects/<key[:2]>/<key>.bin``:

* line 1 — a JSON header (schema, key, stage, kernel tag, payload
  SHA-256, payload size), and
* the raw pickle bytes after the newline.

Writes go through a temp file + ``os.replace`` so concurrent worker
processes sharing one ``--cache-dir`` can never observe a torn entry.
Reads validate the header and the payload digest; anything invalid is
treated as a miss (and reported by ``verify``), never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import CacheError
from .keys import CACHE_SCHEMA, KERNEL_VERSIONS

#: Fixed pickle protocol, so stored bytes are comparable across runs.
PICKLE_PROTOCOL = 4

__all__ = ["DiskStore", "MemoryStore", "PICKLE_PROTOCOL",
           "payload_digest"]


def payload_digest(blob: bytes) -> str:
    """Return the SHA-256 hex digest of pickled payload bytes."""
    return hashlib.sha256(blob).hexdigest()


class MemoryStore:
    """A bounded LRU over ``key -> payload bytes``.

    Thread-safe: a small internal lock guards the recency list, so the
    planning service's worker threads (and any other concurrent reader)
    can share one store without corrupting the ``OrderedDict``.  The
    payloads themselves are immutable bytes, so serving them outside
    the lock is safe.

    Attributes:
        max_entries: entry-count bound; the least recently used entry
            is dropped when an insert would exceed it.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries <= 0:
            raise CacheError(
                f"LRU bound must be positive: {max_entries!r}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._stages: Dict[str, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[bytes]:
        """Return the payload for ``key`` (refreshing recency) or None."""
        with self._lock:
            blob = self._entries.get(key)
            if blob is not None:
                self._entries.move_to_end(key)
            return blob

    def put(self, key: str, stage: str, blob: bytes) -> int:
        """Insert (or refresh) an entry; return how many were evicted."""
        with self._lock:
            self._entries[key] = blob
            self._entries.move_to_end(key)
            self._stages[key] = stage
            evicted = 0
            while len(self._entries) > self.max_entries:
                dropped, _ = self._entries.popitem(last=False)
                self._stages.pop(dropped, None)
                evicted += 1
            return evicted

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()
            self._stages.clear()

    def stats(self) -> Dict[str, object]:
        """Return entry/byte counts, per stage and in total."""
        with self._lock:
            per_stage: Dict[str, int] = {}
            for key in self._entries:
                stage = self._stages.get(key, "?")
                per_stage[stage] = per_stage.get(stage, 0) + 1
            return {
                "entries": len(self._entries),
                "bytes": sum(len(blob)
                             for blob in self._entries.values()),
                "max_entries": self.max_entries,
                "stages": dict(sorted(per_stage.items())),
            }


class DiskStore:
    """The opt-in persistent store behind ``--cache-dir``."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._objects = os.path.join(root, "objects")
        os.makedirs(self._objects, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], f"{key}.bin")

    @staticmethod
    def _split(raw: bytes) -> Tuple[Dict[str, object], bytes]:
        """Split a stored file into (header dict, payload bytes)."""
        newline = raw.index(b"\n")
        header = json.loads(raw[:newline].decode("utf-8"))
        return header, raw[newline + 1:]

    def read(self, key: str) -> Optional[bytes]:
        """Return the validated payload for ``key``, or None.

        A missing, torn, or digest-mismatched entry reads as a miss;
        ``verify`` is the loud path for corruption.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        try:
            header, blob = self._split(raw)
        except (ValueError, UnicodeDecodeError):
            return None
        if (header.get("schema") != CACHE_SCHEMA
                or header.get("key") != key
                or header.get("payload_sha256") != payload_digest(blob)):
            return None
        return blob

    def write(self, key: str, stage: str, blob: bytes) -> None:
        """Atomically persist one entry (last writer wins)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        header = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "stage": stage,
            "kernel": KERNEL_VERSIONS.get(stage, "?"),
            "payload_sha256": payload_digest(blob),
            "payload_bytes": len(blob),
        }
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True)
                         .encode("utf-8"))
            handle.write(b"\n")
            handle.write(blob)
        os.replace(tmp_path, path)

    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self._objects):
            return
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".bin"):
                    yield os.path.join(shard_dir, name)

    def stats(self) -> Dict[str, object]:
        """Return entry/byte counts, per stage and in total."""
        entries = 0
        total_bytes = 0
        per_stage: Dict[str, int] = {}
        for path in self._entry_paths():
            entries += 1
            total_bytes += os.path.getsize(path)
            try:
                with open(path, "rb") as handle:
                    header, _ = self._split(handle.read())
                stage = str(header.get("stage", "?"))
            except (OSError, ValueError, UnicodeDecodeError):
                stage = "?"
            per_stage[stage] = per_stage.get(stage, 0) + 1
        return {
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "stages": dict(sorted(per_stage.items())),
        }

    def verify(self) -> List[str]:
        """Check every entry's header and payload digest.

        Returns:
            Problem strings, one per invalid entry (empty = clean).
        """
        problems: List[str] = []
        for path in self._entry_paths():
            name = os.path.basename(path)[:-len(".bin")]
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
                header, blob = self._split(raw)
            except (OSError, ValueError, UnicodeDecodeError):
                problems.append(f"{name}: unreadable or torn entry")
                continue
            if header.get("schema") != CACHE_SCHEMA:
                problems.append(
                    f"{name}: unknown schema {header.get('schema')!r}")
            if header.get("key") != name:
                problems.append(
                    f"{name}: header key mismatch "
                    f"({header.get('key')!r})")
            if header.get("payload_sha256") != payload_digest(blob):
                problems.append(f"{name}: payload digest mismatch "
                                f"(corrupt entry)")
        return problems

    def clear(self) -> int:
        """Delete every entry; return how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            os.remove(path)
            removed += 1
        return removed
