"""Cross-run stage memoization: a content-addressed cache for the
deterministic pipeline.

Every pipeline stage — deployment, candidate enumeration, greedy cover,
TSP ordering, Algorithm 3 anchor refinement, and the full per-seed
metric row — is a pure function of its inputs.  This package derives a
canonical SHA-256 key per stage invocation (inputs + parameters + a
kernel-version tag, :mod:`repro.cache.keys`), keeps pickled results in
a bounded in-memory LRU plus an opt-in on-disk store
(:mod:`repro.cache.store`), and serves hits that are bit-identical to
recomputation (:mod:`repro.cache.stage` — enforced by the randomized
shadow-verify mode and the CI cold-vs-warm equality gate).

The pipeline reaches the cache through :func:`stage_memo` and the
activation context (:mod:`repro.cache.active`), imported everywhere
behind the same ImportError-safe pattern as ``repro.obs`` — a build
with this package stripped runs unchanged, byte for byte.
"""

from .active import (activate_cache, activation_for_config,
                     cache_for_config, get_active_cache,
                     reset_cache_state, stage_memo)
from .keys import CACHE_SCHEMA, KERNEL_VERSIONS, canonical, stage_key
from .stage import StageCache, WARM_START_SKIP_STAGES
from .store import DiskStore, MemoryStore, PICKLE_PROTOCOL

__all__ = [
    "CACHE_SCHEMA",
    "DiskStore",
    "KERNEL_VERSIONS",
    "MemoryStore",
    "PICKLE_PROTOCOL",
    "StageCache",
    "WARM_START_SKIP_STAGES",
    "activate_cache",
    "activation_for_config",
    "cache_for_config",
    "canonical",
    "get_active_cache",
    "reset_cache_state",
    "stage_key",
    "stage_memo",
]
