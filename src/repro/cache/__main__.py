"""``python -m repro.cache`` — cache maintenance without the entry
point (CLI parity with ``python -m repro.lint``)."""

import argparse
import sys

from .cli import ACTIONS, run_cache_command


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect or maintain an on-disk stage cache.")
    parser.add_argument("action", choices=ACTIONS,
                        help="stats: entry/byte counts per stage; "
                             "clear: delete every entry; "
                             "verify: check headers and payload digests")
    parser.add_argument("--cache-dir", required=True, metavar="DIR",
                        help="the on-disk cache root")
    args = parser.parse_args(argv)
    return run_cache_command(args.action, args.cache_dir)


if __name__ == "__main__":
    sys.exit(main())
