"""Canonical cache-key derivation for pipeline stages.

A stage's cache key is the SHA-256 digest of a canonical-JSON payload
combining the stage name, the stage's *kernel-version tag*, and its
exact inputs and parameters.  Two invariants make the keys safe:

* **Exactness** — floats serialize through ``repr`` (which round-trips
  every IEEE-754 double), sets are sorted before serialization, and any
  value the canonicalizer does not recognize raises :class:`CacheError`
  instead of being stringified lossily.  Identical inputs therefore
  always produce the identical key, and differing inputs essentially
  never collide.
* **Invalidation via kernel tags** — every stage carries a version tag
  in :data:`KERNEL_VERSIONS`.  Changing a kernel's algorithm (even
  bit-identically re-deriving its outputs) must bump the tag, which
  retires every previously stored entry for that stage at once.  This
  is the whole invalidation story: keys are content-addressed, so
  nothing else can go stale.

The digest helper is shared with the run-provenance manifests
(:func:`repro.obs.manifest.config_digest`); a local fallback keeps the
cache importable when ``repro.obs`` is stripped.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from ..charging.energy import CostParameters
from ..charging.model import ChargingModel
from ..errors import CacheError
from ..geometry import Point

try:  # reuse the provenance hashing helper; fall back when obs absent
    from ..obs.manifest import config_digest as _canonical_digest
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    def _canonical_digest(config: Dict[str, Any]) -> str:
        canonical = json.dumps(config, sort_keys=True,
                               separators=(",", ":"), default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

#: Schema tag stamped into every key payload and on-disk entry header.
CACHE_SCHEMA = "bundle-charging/cache/v1"

#: Per-stage kernel-version tags.  Bump a tag whenever the stage's
#: implementation changes in a way that could alter (or even re-derive)
#: its output; the bump invalidates every stored entry for the stage.
KERNEL_VERSIONS: Dict[str, str] = {
    "deployment": "deploy/v2",      # seeded network generation
                                    # (v2: required_j joined the params)
    "candidates": "obg-candidates/v2",  # candidate mask enumeration
                                    # (v2: struct-of-arrays kernel)
    "cover": "obg-cover/v2",        # lazy-greedy set-cover selection
                                    # (v2: in-universe init + XOR clear)
    "tsp": "tsp/v2",                # TSP ordering over stops/anchors
                                    # (v2: flat distance-row kernel)
    "anchor_opt": "bto-anchors/v1",  # Algorithm 3 anchor refinement
    "seed_row": "pipeline/v1",      # one full seed's metric rows
    "service_request": "service/v1",  # one full /v1/plan payload
    "delta_candidates": "delta-candidates/v1",  # dirty-region candidate
                                    # masks over a sub-deployment
    "delta_cover": "delta-cover/v1",  # dirty-region greedy sub-cover
    "delta_request": "delta-service/v1",  # one /v1/plan/delta payload
}

__all__ = ["CACHE_SCHEMA", "KERNEL_VERSIONS", "canonical", "stage_key"]


def canonical(value: Any) -> Any:
    """Return a canonical JSON-able form of a stage input.

    Handles the pipeline's value vocabulary explicitly — primitives,
    sequences, sorted sets/dicts, :class:`Point`, :class:`CostParameters`
    and :class:`ChargingModel` — and refuses anything else, so a new
    input type cannot silently hash by ``str()`` and collide.

    Raises:
        CacheError: for a value outside the supported vocabulary.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Point):
        return {"__point__": [value.x, value.y]}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(canonical(item) for item in value)}
    if isinstance(value, dict):
        return {str(key): canonical(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, CostParameters):
        return {"__cost__": {
            "move_cost_j_per_m": value.move_cost_j_per_m,
            "delta_j": value.delta_j,
            "dwell_policy": value.dwell_policy,
            "model": canonical(value.model),
        }}
    if isinstance(value, ChargingModel):
        state = {name: canonical(attr)
                 for name, attr in sorted(vars(value).items())}
        return {"__model__": [type(value).__qualname__, state]}
    raise CacheError(
        f"cannot canonicalize {type(value).__name__!r} for a cache key; "
        f"teach repro.cache.keys.canonical about it explicitly")


def stage_key(stage: str, params: Dict[str, Any]) -> str:
    """Derive the content-addressed key for one stage invocation.

    Args:
        stage: stage name; must be registered in :data:`KERNEL_VERSIONS`.
        params: the stage's exact inputs and parameters.

    Returns:
        A 64-char SHA-256 hex digest.

    Raises:
        CacheError: for an unregistered stage or unkeyable params.
    """
    try:
        kernel = KERNEL_VERSIONS[stage]
    except KeyError:
        raise CacheError(
            f"unknown cache stage {stage!r}; register a kernel-version "
            f"tag in repro.cache.keys.KERNEL_VERSIONS") from None
    payload = {
        "schema": CACHE_SCHEMA,
        "stage": stage,
        "kernel": kernel,
        "params": canonical(params),
    }
    return _canonical_digest(payload)
