"""Mission traces: what the simulated charger actually did.

The trace is an append-only list of typed records; analysis helpers
aggregate it back into the same metrics the static evaluator computes,
which gives the integration tests a strong cross-check (static plan
economics must equal simulated mission economics).

Records serialize to plain dicts with a ``"type"`` discriminator
(``move`` / ``charge`` / ``harvest``) so a mission trace can be written
to — and replayed from — the same JSONL stream the span tracer emits
(``repro.obs``); :data:`TRACE_RECORD_SCHEMA` versions the format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List

from ..errors import SimulationError
from ..geometry import Point

#: Version tag for serialized mission-trace records.
TRACE_RECORD_SCHEMA = "bundle-charging/mission-trace/v1"


@dataclass(frozen=True)
class MoveRecord:
    """The charger drove one leg.

    Attributes:
        start_s / end_s: departure and arrival times.
        origin / destination: leg endpoints.
        length_m: leg length.
        energy_j: movement energy spent on the leg.
    """

    start_s: float
    end_s: float
    origin: Point
    destination: Point
    length_m: float
    energy_j: float

    def to_dict(self) -> Dict[str, Any]:
        """Serialize as a type-discriminated JSONL-ready dict."""
        return {
            "type": "move",
            "v": 1,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "origin": [self.origin.x, self.origin.y],
            "destination": [self.destination.x, self.destination.y],
            "length_m": self.length_m,
            "energy_j": self.energy_j,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "MoveRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            start_s=float(raw["start_s"]),
            end_s=float(raw["end_s"]),
            origin=Point(*map(float, raw["origin"])),
            destination=Point(*map(float, raw["destination"])),
            length_m=float(raw["length_m"]),
            energy_j=float(raw["energy_j"]),
        )


@dataclass(frozen=True)
class ChargeRecord:
    """The charger dwelled and radiated at one stop.

    Attributes:
        start_s / end_s: dwell window.
        position: stop position.
        stop_index: index of the stop in the plan.
        energy_j: charger-side radiated energy (p_c * dwell).
    """

    start_s: float
    end_s: float
    position: Point
    stop_index: int
    energy_j: float

    def to_dict(self) -> Dict[str, Any]:
        """Serialize as a type-discriminated JSONL-ready dict."""
        return {
            "type": "charge",
            "v": 1,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "position": [self.position.x, self.position.y],
            "stop_index": self.stop_index,
            "energy_j": self.energy_j,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ChargeRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            start_s=float(raw["start_s"]),
            end_s=float(raw["end_s"]),
            position=Point(*map(float, raw["position"])),
            stop_index=int(raw["stop_index"]),
            energy_j=float(raw["energy_j"]),
        )


@dataclass(frozen=True)
class HarvestRecord:
    """One sensor's harvest from one dwell.

    Attributes:
        sensor_index: which sensor harvested.
        stop_index: which stop was radiating.
        distance_m: charger-to-sensor distance during the dwell.
        energy_j: energy credited to the sensor.
        assigned: True when this stop is the sensor's responsible stop
            (False = incidental cross-bundle harvesting).
    """

    sensor_index: int
    stop_index: int
    distance_m: float
    energy_j: float
    assigned: bool

    def to_dict(self) -> Dict[str, Any]:
        """Serialize as a type-discriminated JSONL-ready dict."""
        return {
            "type": "harvest",
            "v": 1,
            "sensor_index": self.sensor_index,
            "stop_index": self.stop_index,
            "distance_m": self.distance_m,
            "energy_j": self.energy_j,
            "assigned": self.assigned,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "HarvestRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            sensor_index=int(raw["sensor_index"]),
            stop_index=int(raw["stop_index"]),
            distance_m=float(raw["distance_m"]),
            energy_j=float(raw["energy_j"]),
            assigned=bool(raw["assigned"]),
        )


#: ``"type"`` discriminator -> record class, for stream replay.
RECORD_TYPES = {
    "move": MoveRecord,
    "charge": ChargeRecord,
    "harvest": HarvestRecord,
}


def record_from_dict(raw: Dict[str, Any]):
    """Rebuild any trace record from its serialized form.

    Raises:
        SimulationError: on a missing or unknown ``"type"``.
    """
    kind = raw.get("type")
    record_class = RECORD_TYPES.get(kind)
    if record_class is None:
        raise SimulationError(
            f"unknown trace record type {kind!r}; expected one of "
            f"{sorted(RECORD_TYPES)}")
    try:
        return record_class.from_dict(raw)
    except (KeyError, TypeError, ValueError) as error:
        raise SimulationError(
            f"malformed {kind!r} trace record {raw!r}: {error}"
        ) from error


class MissionTrace:
    """Append-only record of a simulated mission."""

    def __init__(self) -> None:
        self.moves: List[MoveRecord] = []
        self.charges: List[ChargeRecord] = []
        self.harvests: List[HarvestRecord] = []

    # --- aggregation ------------------------------------------------------

    @property
    def tour_length_m(self) -> float:
        """Total driven distance."""
        return sum(record.length_m for record in self.moves)

    @property
    def movement_energy_j(self) -> float:
        """Total movement energy."""
        return sum(record.energy_j for record in self.moves)

    @property
    def charging_energy_j(self) -> float:
        """Total charger-side radiated energy."""
        return sum(record.energy_j for record in self.charges)

    @property
    def total_energy_j(self) -> float:
        """Movement + charging energy."""
        return self.movement_energy_j + self.charging_energy_j

    @property
    def total_charging_time_s(self) -> float:
        """Summed dwell time."""
        return sum(record.end_s - record.start_s
                   for record in self.charges)

    @property
    def mission_time_s(self) -> float:
        """End time of the last record."""
        ends = [record.end_s for record in self.moves]
        ends += [record.end_s for record in self.charges]
        return max(ends) if ends else 0.0

    def harvested_by_sensor(self) -> dict:
        """Return total harvested energy per sensor index."""
        totals: dict = {}
        for record in self.harvests:
            totals[record.sensor_index] = (
                totals.get(record.sensor_index, 0.0) + record.energy_j)
        return totals

    def incidental_energy_j(self) -> float:
        """Return total energy harvested from non-assigned stops."""
        return sum(record.energy_j for record in self.harvests
                   if not record.assigned)

    # --- serialization ----------------------------------------------------

    def to_events(self) -> List[Dict[str, Any]]:
        """Serialize every record as JSONL-stream events.

        Moves and charges come out interleaved in time order (matching
        the mission timeline), harvests after their stop's records; the
        result can be appended verbatim to a ``repro.obs`` span stream.
        """
        timeline: List[Dict[str, Any]] = []
        for record in self.moves:
            timeline.append(record.to_dict())
        for record in self.charges:
            timeline.append(record.to_dict())
        timeline.sort(key=lambda event: (event["start_s"],
                                         0 if event["type"] == "move"
                                         else 1))
        timeline.extend(record.to_dict() for record in self.harvests)
        return timeline

    @classmethod
    def from_events(cls, events: Iterable[Dict[str, Any]]
                    ) -> "MissionTrace":
        """Replay a trace from an event stream.

        Events of other types (``header``, ``manifest``, ``span``) are
        skipped, so a full observability stream replays directly.
        """
        trace = cls()
        for event in events:
            kind = event.get("type")
            if kind not in RECORD_TYPES:
                continue
            record = record_from_dict(event)
            if kind == "move":
                trace.moves.append(record)
            elif kind == "charge":
                trace.charges.append(record)
            else:
                trace.harvests.append(record)
        return trace
