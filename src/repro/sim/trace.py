"""Mission traces: what the simulated charger actually did.

The trace is an append-only list of typed records; analysis helpers
aggregate it back into the same metrics the static evaluator computes,
which gives the integration tests a strong cross-check (static plan
economics must equal simulated mission economics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..geometry import Point


@dataclass(frozen=True)
class MoveRecord:
    """The charger drove one leg.

    Attributes:
        start_s / end_s: departure and arrival times.
        origin / destination: leg endpoints.
        length_m: leg length.
        energy_j: movement energy spent on the leg.
    """

    start_s: float
    end_s: float
    origin: Point
    destination: Point
    length_m: float
    energy_j: float


@dataclass(frozen=True)
class ChargeRecord:
    """The charger dwelled and radiated at one stop.

    Attributes:
        start_s / end_s: dwell window.
        position: stop position.
        stop_index: index of the stop in the plan.
        energy_j: charger-side radiated energy (p_c * dwell).
    """

    start_s: float
    end_s: float
    position: Point
    stop_index: int
    energy_j: float


@dataclass(frozen=True)
class HarvestRecord:
    """One sensor's harvest from one dwell.

    Attributes:
        sensor_index: which sensor harvested.
        stop_index: which stop was radiating.
        distance_m: charger-to-sensor distance during the dwell.
        energy_j: energy credited to the sensor.
        assigned: True when this stop is the sensor's responsible stop
            (False = incidental cross-bundle harvesting).
    """

    sensor_index: int
    stop_index: int
    distance_m: float
    energy_j: float
    assigned: bool


class MissionTrace:
    """Append-only record of a simulated mission."""

    def __init__(self) -> None:
        self.moves: List[MoveRecord] = []
        self.charges: List[ChargeRecord] = []
        self.harvests: List[HarvestRecord] = []

    # --- aggregation ------------------------------------------------------

    @property
    def tour_length_m(self) -> float:
        """Total driven distance."""
        return sum(record.length_m for record in self.moves)

    @property
    def movement_energy_j(self) -> float:
        """Total movement energy."""
        return sum(record.energy_j for record in self.moves)

    @property
    def charging_energy_j(self) -> float:
        """Total charger-side radiated energy."""
        return sum(record.energy_j for record in self.charges)

    @property
    def total_energy_j(self) -> float:
        """Movement + charging energy."""
        return self.movement_energy_j + self.charging_energy_j

    @property
    def total_charging_time_s(self) -> float:
        """Summed dwell time."""
        return sum(record.end_s - record.start_s
                   for record in self.charges)

    @property
    def mission_time_s(self) -> float:
        """End time of the last record."""
        ends = [record.end_s for record in self.moves]
        ends += [record.end_s for record in self.charges]
        return max(ends) if ends else 0.0

    def harvested_by_sensor(self) -> dict:
        """Return total harvested energy per sensor index."""
        totals: dict = {}
        for record in self.harvests:
            totals[record.sensor_index] = (
                totals.get(record.sensor_index, 0.0) + record.energy_j)
        return totals

    def incidental_energy_j(self) -> float:
        """Return total energy harvested from non-assigned stops."""
        return sum(record.energy_j for record in self.harvests
                   if not record.assigned)
