"""The simulation engine: clock + event loop.

Handlers get the engine through closure and may schedule follow-up
events; the loop runs until the queue drains or a step/time limit hits
(so runaway schedules fail loudly rather than spin).
"""

from __future__ import annotations

import math
from typing import Optional

from ..errors import SimulationError
from .events import Event, EventHandler, EventQueue


class SimulationEngine:
    """Event-driven clock."""

    def __init__(self, max_steps: int = 10_000_000) -> None:
        """Create an engine.

        Args:
            max_steps: hard cap on processed events.
        """
        if max_steps <= 0:
            raise SimulationError(f"invalid step cap: {max_steps!r}")
        self.queue = EventQueue()
        self.now_s = 0.0
        self.steps = 0
        self._max_steps = max_steps

    def schedule_at(self, time_s: float, kind: str,
                    handler: Optional[EventHandler] = None) -> Event:
        """Schedule an event at absolute time ``time_s``.

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time_s < self.now_s - 1e-12:
            raise SimulationError(
                f"cannot schedule into the past: {time_s} < {self.now_s}")
        return self.queue.schedule(max(time_s, self.now_s), kind, handler)

    def schedule_after(self, delay_s: float, kind: str,
                       handler: Optional[EventHandler] = None) -> Event:
        """Schedule an event ``delay_s`` seconds from now."""
        if delay_s < 0.0 or not math.isfinite(delay_s):
            raise SimulationError(f"invalid delay: {delay_s!r}")
        return self.schedule_at(self.now_s + delay_s, kind, handler)

    def run(self, until_s: float = math.inf) -> float:
        """Process events in time order until the queue drains.

        Args:
            until_s: stop (without firing) at the first event past this
                time.

        Returns:
            The final simulation time.

        Raises:
            SimulationError: when the step cap is exceeded.
        """
        while len(self.queue) > 0:
            next_time = self.queue.peek_time()
            if next_time is not None and next_time > until_s:
                break
            event = self.queue.pop()
            self.now_s = event.time_s
            self.steps += 1
            if self.steps > self._max_steps:
                raise SimulationError(
                    f"exceeded {self._max_steps} simulation steps")
            event.fire()
        return self.now_s
