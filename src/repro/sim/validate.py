"""End-to-end plan validation.

A plan is *valid* when, after the simulated mission, every sensor has
harvested at least its requirement ``delta`` (the Eq. 3 constraint).
Because the simulator credits incidental cross-bundle harvesting, any
plan whose per-stop dwell covers its own farthest member is valid by
construction — the validator is the library's safety net against planner
bugs, and the integration tests run every planner through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..charging import CostParameters
from ..errors import ValidationError
from ..network import SensorNetwork
from ..tour import ChargingPlan
from .charger import DEFAULT_SPEED_M_PER_S, run_mission
from .trace import MissionTrace

try:  # tracing is optional: simulation works with repro.obs absent
    from ..obs.tracer import obs_span
except ImportError:  # pragma: no cover - repro.obs stripped/blocked
    from contextlib import nullcontext as _nullcontext

    def obs_span(name, **attrs):  # type: ignore[misc]
        return _nullcontext()


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of simulating and checking one plan.

    Attributes:
        trace: the full mission trace.
        satisfied: True when every sensor met its requirement.
        shortfalls: ``(sensor_index, deficit_j)`` for unmet sensors.
        incidental_fraction: share of harvested energy that came from
            non-assigned stops (the one-to-many bonus).
    """

    trace: MissionTrace
    satisfied: bool
    shortfalls: Tuple[Tuple[int, float], ...]
    incidental_fraction: float


def validate_plan(plan: ChargingPlan, network: SensorNetwork,
                  cost: CostParameters,
                  speed_m_per_s: float = DEFAULT_SPEED_M_PER_S,
                  strict: bool = False) -> ValidationResult:
    """Simulate ``plan`` and check the per-sensor energy constraint.

    Args:
        plan: the mission to validate.
        network: the sensors.
        cost: mission cost constants.
        speed_m_per_s: charger speed for the simulation.
        strict: raise instead of reporting when a sensor falls short.

    Raises:
        ValidationError: in strict mode, when any sensor is undercharged.
    """
    with obs_span("sim.mission", stops=len(plan.stops),
                  algorithm=plan.label) as span:
        trace = run_mission(plan, network, cost,
                            speed_m_per_s=speed_m_per_s)
        if span:
            span.set(tour_length_m=trace.tour_length_m,
                     movement_j=trace.movement_energy_j,
                     charging_j=trace.charging_energy_j,
                     mission_time_s=trace.mission_time_s)
    shortfalls: List[Tuple[int, float]] = []
    for sensor in network:
        if not sensor.is_satisfied:
            shortfalls.append((sensor.index, sensor.deficit_j))
    satisfied = not shortfalls

    total_harvested = sum(record.energy_j for record in trace.harvests)
    incidental = trace.incidental_energy_j()
    fraction = incidental / total_harvested if total_harvested > 0 else 0.0

    if strict and not satisfied:
        worst = max(shortfalls, key=lambda item: item[1])
        raise ValidationError(
            f"{len(shortfalls)} sensors undercharged; worst is sensor "
            f"{worst[0]} short {worst[1]:.6f} J")
    return ValidationResult(
        trace=trace,
        satisfied=satisfied,
        shortfalls=tuple(shortfalls),
        incidental_fraction=fraction,
    )


def robustness_margin(plan: ChargingPlan, network: SensorNetwork,
                      cost: CostParameters,
                      speed_m_per_s: float = DEFAULT_SPEED_M_PER_S,
                      tolerance: float = 1e-3) -> float:
    """Return the smallest harvest scale at which the plan still works.

    Failure-injection analysis: real links deliver less than the model
    predicts (misalignment, obstructions, fading).  This binary search
    finds the break-even degradation factor — a plan with margin 0.8
    survives a 20 % optimistic charging model; a plan with margin 1.0
    has zero headroom.  One-to-many incidental harvesting is what
    creates headroom: dense tours are naturally more robust.

    Args:
        plan: the mission.
        network: the sensors.
        cost: mission cost constants.
        speed_m_per_s: charger speed for the simulation.
        tolerance: binary-search resolution on the scale.

    Returns:
        The minimal feasible scale in ``(0, 1]``, or 1.0 when even the
        nominal mission leaves a sensor short (no headroom at all).
    """
    def feasible(scale: float) -> bool:
        run_mission(plan, network, cost, speed_m_per_s=speed_m_per_s,
                    harvest_scale=scale)
        return network.all_satisfied()

    if not feasible(1.0):
        return 1.0
    low, high = 0.0, 1.0
    while high - low > tolerance:
        middle = (low + high) / 2.0
        if middle <= 0.0:
            break
        if feasible(middle):
            high = middle
        else:
            low = middle
    return high
