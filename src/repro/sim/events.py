"""Discrete-event core: events, the time-ordered queue, and the
unified serialized-event registry.

A tiny but real DES kernel: events carry a firing time and a handler;
the engine pops them in time order (FIFO among ties) and lets handlers
schedule further events.  The mobile-charger process in
:mod:`repro.sim.charger` is built on top of it.

The module also owns :data:`EVENT_RECORD_TYPES` — the single
discriminated union of every serialized event record the repository
emits: the mission-trace family (``move`` / ``charge`` / ``harvest``
from :mod:`repro.sim.trace`) plus the network-churn delta family
(``sensor_moved`` / ``sensor_died`` / ``sensor_joined`` from
:mod:`repro.delta.events`).  Before this registry the failure/churn
records were ad-hoc dicts with no shared ``to_dict``/``from_dict``
contract; now :func:`event_record_from_dict` round-trips any record
from one place, and :mod:`repro.obs.validate` whitelists exactly the
union's discriminators.  The delta half is ImportError-guarded — with
``repro.delta`` stripped the registry degrades to the trace family.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import SimulationError
from .trace import RECORD_TYPES

try:  # the churn vocabulary is optional, like every subsystem bridge
    from ..delta.events import DELTA_RECORD_TYPES
except ImportError:  # pragma: no cover - repro.delta stripped/blocked
    DELTA_RECORD_TYPES = {}  # type: ignore[assignment]

EventHandler = Callable[["Event"], None]

#: ``"type"`` discriminator -> record class, across *every* serialized
#: event family the repo emits (mission trace + network churn).
EVENT_RECORD_TYPES = {**RECORD_TYPES, **DELTA_RECORD_TYPES}


def event_record_from_dict(raw: Dict[str, Any]) -> Any:
    """Rebuild any serialized event record, whatever its family.

    One entry point for stream replay: dispatches on the ``"type"``
    discriminator over :data:`EVENT_RECORD_TYPES` and delegates to the
    family's own ``from_dict`` (so each family keeps its own
    validation and error type).

    Raises:
        SimulationError: on a missing or unknown ``"type"``.
    """
    kind = raw.get("type") if isinstance(raw, dict) else None
    record_class = EVENT_RECORD_TYPES.get(kind)
    if record_class is None:
        raise SimulationError(
            f"unknown event record type {kind!r}; expected one of "
            f"{sorted(EVENT_RECORD_TYPES)}")
    return record_class.from_dict(raw)


@dataclass(order=True)
class Event:
    """One scheduled event.

    Ordering is (time, sequence number) so simultaneous events fire in
    scheduling order — determinism the tests rely on.
    """

    time_s: float
    sequence: int
    kind: str = field(compare=False)
    handler: Optional[EventHandler] = field(compare=False, default=None)

    def fire(self) -> None:
        """Invoke the handler, if any."""
        if self.handler is not None:
            self.handler(self)


class EventQueue:
    """A priority queue of events with stable tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_s: float, kind: str,
                 handler: Optional[EventHandler] = None) -> Event:
        """Schedule an event at absolute time ``time_s``.

        Raises:
            SimulationError: on a negative or non-finite time.
        """
        if time_s < 0.0 or not math.isfinite(time_s):
            raise SimulationError(f"invalid event time: {time_s!r}")
        event = Event(time_s, next(self._counter), kind, handler)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises:
            SimulationError: when the queue is empty.
        """
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Return the next event time, or None when empty."""
        return self._heap[0].time_s if self._heap else None
