"""Discrete-event core: events and the time-ordered event queue.

A tiny but real DES kernel: events carry a firing time and a handler;
the engine pops them in time order (FIFO among ties) and lets handlers
schedule further events.  The mobile-charger process in
:mod:`repro.sim.charger` is built on top of it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SimulationError

EventHandler = Callable[["Event"], None]


@dataclass(order=True)
class Event:
    """One scheduled event.

    Ordering is (time, sequence number) so simultaneous events fire in
    scheduling order — determinism the tests rely on.
    """

    time_s: float
    sequence: int
    kind: str = field(compare=False)
    handler: Optional[EventHandler] = field(compare=False, default=None)

    def fire(self) -> None:
        """Invoke the handler, if any."""
        if self.handler is not None:
            self.handler(self)


class EventQueue:
    """A priority queue of events with stable tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_s: float, kind: str,
                 handler: Optional[EventHandler] = None) -> Event:
        """Schedule an event at absolute time ``time_s``.

        Raises:
            SimulationError: on a negative or non-finite time.
        """
        if time_s < 0.0 or not math.isfinite(time_s):
            raise SimulationError(f"invalid event time: {time_s!r}")
        event = Event(time_s, next(self._counter), kind, handler)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises:
            SimulationError: when the queue is empty.
        """
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Return the next event time, or None when empty."""
        return self._heap[0].time_s if self._heap else None
