"""The mobile-charger process: executes a :class:`ChargingPlan`.

The charger alternates MOVE and CHARGE phases through the plan's
waypoints on the DES kernel.  While it radiates at a stop, *every* sensor
in the network harvests according to the charging model and its distance
— the one-to-many property of wireless charging — so sensors near a
foreign bundle receive incidental energy exactly as Eq. 3's constraint
(which sums over all stops) allows.
"""

from __future__ import annotations

import math

from ..charging import CostParameters
from ..errors import SimulationError
from ..geometry import Point
from ..network import SensorNetwork
from ..tour import ChargingPlan
from .engine import SimulationEngine
from .events import Event
from .trace import ChargeRecord, HarvestRecord, MissionTrace, MoveRecord

#: Default charger ground speed (m/s); the testbed robot drives 0.3 m/s,
#: field vehicles in the cited literature drive ~1 m/s.
DEFAULT_SPEED_M_PER_S = 1.0


class MobileCharger:
    """Drives the plan on a simulation engine and fills a trace."""

    def __init__(self, engine: SimulationEngine, plan: ChargingPlan,
                 network: SensorNetwork, cost: CostParameters,
                 speed_m_per_s: float = DEFAULT_SPEED_M_PER_S,
                 harvest_scale: float = 1.0) -> None:
        """Create the charger process.

        Args:
            engine: the DES engine to schedule on.
            plan: the mission to execute.
            network: sensors that harvest while the charger radiates.
            cost: mission cost constants (movement + model).
            speed_m_per_s: charger ground speed.
            harvest_scale: failure-injection knob — sensors harvest
                this fraction of the model's prediction (1.0 = nominal;
                0.9 models a 10 % optimistic charging model, antenna
                misalignment, obstruction losses, ...).

        Raises:
            SimulationError: on a non-positive speed or scale.
        """
        if speed_m_per_s <= 0.0 or not math.isfinite(speed_m_per_s):
            raise SimulationError(f"invalid speed: {speed_m_per_s!r}")
        if harvest_scale <= 0.0 or not math.isfinite(harvest_scale):
            raise SimulationError(
                f"invalid harvest scale: {harvest_scale!r}")
        self.engine = engine
        self.plan = plan
        self.network = network
        self.cost = cost
        self.speed = speed_m_per_s
        self.harvest_scale = harvest_scale
        self.trace = MissionTrace()
        self.position: Point = (plan.depot if plan.depot is not None
                                else self._first_position())
        self._next_stop = 0
        self._finished = False

    def _first_position(self) -> Point:
        if not self.plan.stops:
            return Point(0.0, 0.0)
        return self.plan.stops[0].position

    @property
    def finished(self) -> bool:
        """True once the charger has returned home."""
        return self._finished

    def start(self) -> None:
        """Kick off the mission at the engine's current time."""
        self.engine.schedule_after(0.0, "depart", self._on_depart)

    # --- phases ----------------------------------------------------------

    def _on_depart(self, _: Event) -> None:
        """Leave the current position toward the next waypoint."""
        if self._next_stop < len(self.plan.stops):
            destination = self.plan.stops[self._next_stop].position
            arrival_kind = "arrive"
            handler = self._on_arrive
        else:
            home = (self.plan.depot if self.plan.depot is not None
                    else self._first_position())
            destination = home
            arrival_kind = "home"
            handler = self._on_home
        length = self.position.distance_to(destination)
        travel_s = length / self.speed
        start_s = self.engine.now_s
        origin = self.position

        def arrive(event: Event) -> None:
            self.trace.moves.append(MoveRecord(
                start_s=start_s, end_s=event.time_s, origin=origin,
                destination=destination, length_m=length,
                energy_j=self.cost.movement_energy(length)))
            self.position = destination
            handler(event)

        self.engine.schedule_after(travel_s, arrival_kind, arrive)

    def _on_arrive(self, _: Event) -> None:
        """Arrived at a stop: begin the dwell."""
        stop = self.plan.stops[self._next_stop]
        dwell = stop.dwell_s
        start_s = self.engine.now_s
        stop_index = self._next_stop

        def finish(event: Event) -> None:
            self._credit_harvest(stop_index, dwell)
            self.trace.charges.append(ChargeRecord(
                start_s=start_s, end_s=event.time_s,
                position=stop.position, stop_index=stop_index,
                energy_j=self.cost.model.source_power_w * dwell))
            self._next_stop += 1
            self.engine.schedule_after(0.0, "depart", self._on_depart)

        self.engine.schedule_after(dwell, "charge", finish)

    def _on_home(self, _: Event) -> None:
        """Mission complete."""
        self._finished = True

    # --- harvesting -------------------------------------------------------------

    def _credit_harvest(self, stop_index: int, dwell_s: float) -> None:
        """Credit every sensor for one dwell (one-to-many charging)."""
        stop = self.plan.stops[stop_index]
        for sensor in self.network:
            distance = stop.position.distance_to(sensor.location)
            power = self.cost.model.received_power(distance)
            if power <= 0.0:
                continue
            energy = power * dwell_s * self.harvest_scale
            sensor.harvest(energy)
            self.trace.harvests.append(HarvestRecord(
                sensor_index=sensor.index, stop_index=stop_index,
                distance_m=distance, energy_j=energy,
                assigned=sensor.index in stop.sensors))


def run_mission(plan: ChargingPlan, network: SensorNetwork,
                cost: CostParameters,
                speed_m_per_s: float = DEFAULT_SPEED_M_PER_S,
                reset_energy: bool = True,
                harvest_scale: float = 1.0) -> MissionTrace:
    """Execute ``plan`` on a fresh engine and return the trace.

    Args:
        plan: the mission.
        network: the sensors (their ``harvested_j`` is mutated).
        cost: mission cost constants.
        speed_m_per_s: charger ground speed.
        reset_energy: clear sensors' harvested energy first.
        harvest_scale: failure-injection factor on received power.
    """
    if reset_energy:
        network.reset_energy()
    engine = SimulationEngine()
    charger = MobileCharger(engine, plan, network, cost,
                            speed_m_per_s=speed_m_per_s,
                            harvest_scale=harvest_scale)
    charger.start()
    engine.run()
    if not charger.finished:
        raise SimulationError("mission ended before the charger got home")
    return charger.trace
