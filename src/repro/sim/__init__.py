"""Discrete-event execution of charging plans.

The simulator drives the mobile charger through a plan, credits every
sensor's one-to-many harvest, and validates the Eq. 3 per-sensor energy
constraint end-to-end.
"""

from .charger import DEFAULT_SPEED_M_PER_S, MobileCharger, run_mission
from .engine import SimulationEngine
from .events import (EVENT_RECORD_TYPES, Event, EventQueue,
                     event_record_from_dict)
from .trace import (ChargeRecord, HarvestRecord, MissionTrace,
                    MoveRecord, RECORD_TYPES, TRACE_RECORD_SCHEMA,
                    record_from_dict)
from .validate import ValidationResult, robustness_margin, validate_plan

__all__ = [
    "DEFAULT_SPEED_M_PER_S",
    "ChargeRecord",
    "EVENT_RECORD_TYPES",
    "Event",
    "EventQueue",
    "HarvestRecord",
    "MissionTrace",
    "MobileCharger",
    "MoveRecord",
    "RECORD_TYPES",
    "SimulationEngine",
    "TRACE_RECORD_SCHEMA",
    "ValidationResult",
    "event_record_from_dict",
    "record_from_dict",
    "robustness_margin",
    "run_mission",
    "validate_plan",
]
