"""Clock indirection for the serving and observability stacks.

The serving stack (``repro.service``, ``repro.loadgen``) and the
observability layer (``repro.obs``) legitimately read clocks — request
latencies, span durations, access-log timestamps — but they must do so
through *one* seam, for two reasons:

* **Auditability** (lint rule OBS002): durations must come from the
  monotonic clocks and wall time must be confined to timestamps that
  are documented as transport/provenance facts.  Funnelling every read
  through this module makes a stray ``time.time()`` in a hot path a
  lint finding instead of a silent drift source.
* **Testability**: fixtures monkeypatch :func:`wall` / :func:`monotonic`
  here to freeze time for deterministic access-log and metrics tests
  without reaching into ``time`` globally.

The kernel packages are stricter still — they may not read any clock at
all (DET002); this module is only for the layers whose *job* is timing.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "perf_counter", "wall"]

#: Monotonic clock for durations (queue waits, latencies, uptimes).
monotonic = time.monotonic

#: High-resolution monotonic clock for short spans (tracer, timers).
perf_counter = time.perf_counter

#: Wall clock for timestamps only (access-log ``ts``, provenance,
#: ``/metrics`` start time) — never for durations.
wall = time.time
