"""Closed-form analysis companions (bounds, break-even, BHH)."""

from .theory import (BHH_CONSTANT, bhh_tour_length, break_even_distance,
                     charging_energy_per_sensor, expected_bundle_size,
                     fraction_within, greedy_cover_bound)

__all__ = [
    "BHH_CONSTANT",
    "bhh_tour_length",
    "break_even_distance",
    "charging_energy_per_sensor",
    "expected_bundle_size",
    "fraction_within",
    "greedy_cover_bound",
]
