"""Closed-form analysis companions to the algorithms.

These functions compute the theoretical quantities that the design
documents and the test suite reason with:

* the greedy set-cover guarantee of Theorem 2;
* the movement/charging break-even distance implied by Eq. 1 + Eq. 3
  (the two-bundle marginal analysis of Section V-B in closed form);
* the BHH tour-length estimate used to sanity-check TSP output.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..charging import CostParameters, FriisChargingModel
from ..errors import ModelError

#: Beardwood-Halton-Hammersley constant (empirical ~0.7124) for the
#: expected optimal tour through n uniform points in a unit square.
BHH_CONSTANT = 0.7124


def greedy_cover_bound(n: int) -> float:
    """Return Theorem 2's approximation factor ``ln n + 1``.

    Raises:
        ModelError: for non-positive ``n``.
    """
    if n <= 0:
        raise ModelError(f"need a positive sensor count: {n!r}")
    return math.log(n) + 1.0


def break_even_distance(cost: CostParameters) -> float:
    """Return the charging distance where anchor pull-in stops paying.

    From the Section V-B two-bundle analysis under Eq. 1: pulling an
    anchor 1 m closer to the tour saves ``2 E_m`` of movement (the leg
    is traversed out and back) and costs
    ``2 delta (d + beta) / alpha`` of extra charging per affected
    sensor-requirement; they balance at

    ``d* = E_m * alpha / delta - beta``.

    Beyond ``d*`` the quadratic charging penalty dominates and larger
    charging distances are never profitable.  With the paper's
    constants this is ``5.59 * 36 / 2 - 30 ~= 70.6 m`` — which is why
    the simultaneous-dwell objective keeps improving across the paper's
    5-40 m radius sweep (see EXPERIMENTS.md).

    Raises:
        ModelError: when the cost's model is not the Eq. 1 Friis form.
    """
    model = cost.model
    if not isinstance(model, FriisChargingModel):
        raise ModelError(
            "break-even distance is closed-form only for the Eq. 1 "
            "Friis model")
    return max(0.0, cost.move_cost_j_per_m * model.alpha / cost.delta_j
               - model.beta)


def bhh_tour_length(n: int, field_side_m: float) -> float:
    """Return the BHH estimate of the optimal tour through n points.

    ``L ~ BHH_CONSTANT * sqrt(n * A)`` for uniform deployments — used
    to sanity-check heuristic TSP output at scale.
    """
    if n <= 1 or field_side_m <= 0.0:
        return 0.0
    area = field_side_m * field_side_m
    return BHH_CONSTANT * math.sqrt(n * area)


def expected_bundle_size(n: int, field_side_m: float,
                         radius: float) -> float:
    """Return the Poisson-mean sensor count of one radius-``r`` disk.

    ``lambda = n * pi r^2 / A`` — the density heuristic behind "how
    much does bundling help at these parameters".
    """
    if n < 0 or field_side_m <= 0.0 or radius < 0.0:
        raise ModelError("invalid bundle-size parameters")
    area = field_side_m * field_side_m
    return n * math.pi * radius * radius / area


def charging_energy_per_sensor(cost: CostParameters,
                               distance_m: float) -> float:
    """Return the Eq. 3 charging energy to deliver delta at a distance."""
    return cost.charging_energy_for_distance(distance_m)


def fraction_within(values: Iterable[float], limit: float) -> float:
    """Return the fraction of ``values`` that are <= ``limit``.

    Small reporting helper (e.g. what share of stops are within the
    break-even distance).
    """
    data = list(values)
    if not data:
        return 0.0
    return sum(1 for v in data if v <= limit) / len(data)
