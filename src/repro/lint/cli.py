"""CLI for the linter: ``bundle-charging lint`` / ``python -m repro.lint``.

Exit codes follow the usual linter convention:

* 0 — clean (possibly after suppression/baseline filtering)
* 1 — findings reported
* 2 — usage or internal error
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import run_lint
from .report import render_json, render_rules, render_text

__all__ = ["build_parser", "main"]

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bundle-charging lint",
        description="AST-based determinism & invariant linter for the "
                    "bundle-charging reproduction (rules DET001-DET004, "
                    "PAR001, OBS001).")
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json follows bundle-charging/lint/v1)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file of grandfathered findings (default: "
             f"{DEFAULT_BASELINE} when it exists)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file and report every finding")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help="lint root for relative paths and rule scoping "
             "(default: current directory)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue with rationales and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0

    select = (None if args.select is None
              else [rule.strip() for rule in args.select.split(",")
                    if rule.strip()])
    baseline_path: Optional[str] = None
    if not args.no_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE
    write_to = ((args.baseline or DEFAULT_BASELINE)
                if args.write_baseline else None)

    try:
        result = run_lint(args.paths, root=args.root, select=select,
                          baseline_path=baseline_path,
                          write_baseline_to=write_to)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"bundle-charging lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        print(f"wrote {result.baselined} finding"
              f"{'' if result.baselined == 1 else 's'} to "
              f"{write_to}")
        return 0
    print(render_json(result) if args.format == "json"
          else render_text(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
