"""CLI for the linter: ``bundle-charging lint`` / ``python -m repro.lint``.

Exit codes follow the usual linter convention:

* 0 — clean (possibly after suppression/baseline filtering)
* 1 — findings reported
* 2 — usage or internal error
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .engine import run_lint
from .report import (render_json, render_rules, render_sarif,
                     render_text)

__all__ = ["build_parser", "main"]

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bundle-charging lint",
        description="AST-based determinism & invariant linter for the "
                    "bundle-charging reproduction: per-file rules "
                    "(DET001-DET004, OBS001) plus project-scope rules "
                    "over a shared call graph (PAR001, CONC001-CONC005, "
                    "PURE001-PURE002).")
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (json follows bundle-charging/lint/v1; "
             "sarif emits SARIF 2.1.0 for code-scanning upload)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file of grandfathered findings (default: "
             f"{DEFAULT_BASELINE} when it exists)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file and report every finding")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0")
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help="lint root for relative paths and rule scoping "
             "(default: current directory)")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the per-file phase (findings are "
             "identical at any value; default: 1)")
    parser.add_argument(
        "--stats", nargs="?", const="-", default=None, metavar="FILE",
        help="emit per-rule timing stats as bundle-charging/"
             "lint-stats/v1 JSON to FILE ('-' or no value: stderr)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue with rationales and exit")
    return parser


def _emit_stats(destination: str, stats: Optional[dict]) -> None:
    if stats is None:
        return
    text = json.dumps(stats, indent=2, sort_keys=True)
    if destination == "-":
        print(text, file=sys.stderr)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rules())
        return 0
    if args.jobs < 1:
        print("bundle-charging lint: error: --jobs must be >= 1",
              file=sys.stderr)
        return 2

    select = (None if args.select is None
              else [rule.strip() for rule in args.select.split(",")
                    if rule.strip()])
    baseline_path: Optional[str] = None
    if not args.no_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE
    write_to = ((args.baseline or DEFAULT_BASELINE)
                if args.write_baseline else None)

    try:
        result = run_lint(args.paths, root=args.root, select=select,
                          baseline_path=baseline_path,
                          write_baseline_to=write_to, jobs=args.jobs)
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"bundle-charging lint: error: {exc}", file=sys.stderr)
        return 2

    if args.stats is not None:
        _emit_stats(args.stats, result.stats)
    if args.write_baseline:
        print(f"wrote {result.baselined} finding"
              f"{'' if result.baselined == 1 else 's'} to "
              f"{write_to}")
        return 0
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
