"""Project-wide semantic model: symbol tables and the import graph.

:func:`build_project` walks every parsed module of one lint invocation
exactly once and produces a :class:`ProjectAnalysis` — per-module
symbol tables (functions, classes and their methods, module-level
singletons, import aliases), an import graph, and the bookkeeping the
cross-module rule families need (which module globals are ever
reassigned, which classes own locks, which methods are thread entry
points).  The result is cached on the :class:`~repro.lint.core
.ProjectContext`, so the CONC and PURE rule families share one
resolution pass instead of re-walking the ASTs per rule.

Everything here is resolution only — no judgement.  The call graph
built on top lives in :mod:`repro.lint.callgraph`; the rules that
consume both live in :mod:`repro.lint.rulepack.conc` and
:mod:`repro.lint.rulepack.purity`.

Qualified names use ``module:func`` / ``module:Class.method`` /
``module:outer.inner`` (nested defs), keeping the module boundary
unambiguous even for dotted module paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .core import FileContext, ProjectContext

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleSymbols",
    "ProjectAnalysis",
    "build_project",
    "qualified_name",
]

#: ``threading`` constructors that create lock-like synchronization
#: primitives (the "owning lock" vocabulary of the CONC family).
LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: ``threading`` constructors that are unsafe to create at module level
#: in code that may later ``fork()`` (locks can be held by a thread
#: that does not exist in the child; threads silently vanish).
FORK_SENSITIVE_CONSTRUCTORS = frozenset(
    LOCK_CONSTRUCTORS | {"Event", "Barrier", "Thread"})


def qualified_name(module: str, *parts: str) -> str:
    """Build the canonical ``module:a.b`` qualified name."""
    return f"{module}:{'.'.join(parts)}"


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    #: Enclosing function's qname for nested defs (thunks, senders).
    parent: Optional[str] = None


@dataclass
class ClassInfo:
    """One class: methods, base names, and its synchronization shape."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    #: Raw base expressions as dotted strings (unresolved).
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: self attributes assigned a ``threading.<LOCK_CONSTRUCTORS>()``.
    lock_attrs: Dict[str, str] = field(default_factory=dict)
    #: Condition attrs -> the lock attr they wrap (``Condition(X)``).
    condition_aliases: Dict[str, str] = field(default_factory=dict)
    #: Method names passed as ``threading.Thread(target=self.X)``.
    thread_targets: Set[str] = field(default_factory=set)
    #: True when any method constructs a ``threading.Thread``.
    creates_threads: bool = False


@dataclass
class ModuleSymbols:
    """Everything resolvable about one module from its own source."""

    module: str
    ctx: FileContext
    #: ``import a.b as c`` -> {"c": "a.b"}; module-valued from-imports
    #: (``from ..pkg import mod``) land here too when resolvable.
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: ``from m import x as y`` -> {"y": ("m", "x")}.
    from_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level ``NAME = ClassName(...)`` singletons -> raw callee
    #: (dotted) used to construct them.
    instances: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to lock-like primitives.
    module_locks: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to list/dict/set literals or calls.
    module_containers: Set[str] = field(default_factory=set)
    #: All module-level assigned names (the module's global namespace).
    global_names: Set[str] = field(default_factory=set)
    #: Globals reassigned via a ``global`` statement in some function.
    rebound_globals: Set[str] = field(default_factory=set)
    #: Absolute modules this module imports (import-graph edges).
    imports: Set[str] = field(default_factory=set)
    #: Module registers an ``os.register_at_fork`` reinitializer.
    at_fork_reinit: bool = False


def _resolve_relative(module: str, node: ast.ImportFrom,
                      is_package: bool = False) -> Optional[str]:
    """Absolute dotted base module of an ``ImportFrom`` (or None).

    ``is_package`` marks a package ``__init__``, whose level-1 relative
    imports resolve against the package itself rather than its parent
    (``from .active import x`` inside ``repro/cache/__init__.py`` means
    ``repro.cache.active``).
    """
    if node.level == 0:
        return node.module
    parts = module.split(".") if module else []
    drop = node.level - 1 if is_package else node.level
    if drop > len(parts):
        return None
    base = parts[:len(parts) - drop] if drop else list(parts)
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _threading_constructor(call: ast.Call,
                           syms: "ModuleSymbols") -> Optional[str]:
    """Return the ``threading.X`` constructor name of ``call``, if any."""
    name = _dotted(call.func)
    if name is None:
        return None
    if "." in name:
        prefix, attr = name.rsplit(".", 1)
        if syms.import_aliases.get(prefix) == "threading":
            return attr
        return None
    origin = syms.from_names.get(name)
    if origin is not None and origin[0] == "threading":
        return origin[1]
    return None


def _collect_imports(tree: ast.Module, module: str,
                     syms: ModuleSymbols,
                     is_package: bool = False) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                syms.imports.add(alias.name)
                syms.import_aliases[
                    alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else
                    alias.name.split(".")[0])
                if alias.asname is None and "." not in alias.name:
                    syms.import_aliases[alias.name] = alias.name
                elif alias.asname is not None:
                    syms.import_aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(module or "x.y", node, is_package)
            if base is None:
                continue
            syms.imports.add(base)
            for alias in node.names:
                local = alias.asname or alias.name
                syms.from_names[local] = (base, alias.name)


def _function_info(module: str, node: ast.AST, name_parts: List[str],
                   class_name: Optional[str] = None,
                   parent: Optional[str] = None) -> FunctionInfo:
    return FunctionInfo(qname=qualified_name(module, *name_parts),
                        module=module, name=name_parts[-1], node=node,
                        class_name=class_name, parent=parent)


def _collect_nested(module: str, outer: FunctionInfo,
                    sink: Dict[str, FunctionInfo]) -> None:
    """Register defs nested directly inside ``outer`` (one level of
    qualification per nesting step; bodies stay attached)."""
    prefix = outer.qname.split(":", 1)[1]
    for child in ast.walk(outer.node):
        if child is outer.node:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Only direct or transitively nested defs of *this* function
            # body; qualification keeps one level: outer.inner.
            info = _function_info(module, child,
                                  [prefix, child.name],
                                  class_name=outer.class_name,
                                  parent=outer.qname)
            sink.setdefault(info.qname, info)


def _scan_class(module: str, node: ast.ClassDef,
                syms: ModuleSymbols) -> ClassInfo:
    cls = ClassInfo(qname=qualified_name(module, node.name),
                    module=module, name=node.name, node=node)
    for base in node.bases:
        dotted = _dotted(base)
        if dotted is not None:
            cls.bases.append(dotted)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(module, stmt, [node.name, stmt.name],
                                  class_name=node.name)
            cls.methods[stmt.name] = info
    # Lock attributes and thread creation anywhere in the class body.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and isinstance(sub.value,
                                                      ast.Call):
            ctor = _threading_constructor(sub.value, syms)
            if ctor is None:
                continue
            for target in sub.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    if ctor in LOCK_CONSTRUCTORS:
                        cls.lock_attrs[target.attr] = ctor
                    if ctor == "Condition" and sub.value.args:
                        arg = sub.value.args[0]
                        if (isinstance(arg, ast.Attribute)
                                and isinstance(arg.value, ast.Name)
                                and arg.value.id == "self"):
                            cls.condition_aliases[target.attr] = \
                                arg.attr
        if isinstance(sub, ast.Call):
            if _threading_constructor(sub, syms) == "Thread":
                cls.creates_threads = True
                for kw in sub.keywords:
                    if kw.arg != "target":
                        continue
                    if (isinstance(kw.value, ast.Attribute)
                            and isinstance(kw.value.value, ast.Name)
                            and kw.value.value.id == "self"):
                        cls.thread_targets.add(kw.value.attr)
    return cls


def _scan_module_scope(tree: ast.Module, module: str,
                       syms: ModuleSymbols) -> None:
    """Module-level bindings: singletons, locks, containers, names."""
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            syms.global_names.add(stmt.name)
            continue
        elif isinstance(stmt, ast.Try):
            # ImportError-fallback blocks still bind module names.
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign):
                    for tgt in sub.targets:
                        if isinstance(tgt, ast.Name):
                            syms.global_names.add(tgt.id)
                elif isinstance(sub, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    syms.global_names.add(sub.name)
            continue
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            syms.global_names.add(target.id)
            if isinstance(value, ast.Call):
                ctor = _threading_constructor(value, syms)
                if ctor in FORK_SENSITIVE_CONSTRUCTORS:
                    syms.module_locks[target.id] = ctor or ""
                callee = _dotted(value.func)
                if callee is not None:
                    if callee in ("list", "dict", "set", "deque",
                                  "defaultdict", "OrderedDict"):
                        syms.module_containers.add(target.id)
                    else:
                        syms.instances[target.id] = callee
            elif isinstance(value, (ast.List, ast.Dict, ast.Set)):
                syms.module_containers.add(target.id)


def _scan_function_globals(tree: ast.Module,
                           syms: ModuleSymbols) -> None:
    """Names any function rebinds via ``global`` statements."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            syms.rebound_globals.update(node.names)


def _scan_at_fork(tree: ast.Module, syms: ModuleSymbols) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None and dotted.endswith(
                    "register_at_fork"):
                syms.at_fork_reinit = True
                return


def build_module_symbols(ctx: FileContext) -> ModuleSymbols:
    """Resolve one module's symbol table (tree must be parsed)."""
    assert ctx.tree is not None
    module = ctx.module_name
    syms = ModuleSymbols(module=module, ctx=ctx)
    _collect_imports(ctx.tree, module, syms,
                     is_package=ctx.rel_path.endswith("/__init__.py"))
    _scan_module_scope(ctx.tree, module, syms)
    _scan_function_globals(ctx.tree, syms)
    _scan_at_fork(ctx.tree, syms)

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(module, stmt, [stmt.name])
            syms.functions[stmt.name] = info
        elif isinstance(stmt, ast.ClassDef):
            syms.classes[stmt.name] = _scan_class(module, stmt, syms)
        elif isinstance(stmt, ast.Try):
            # Fallback defs inside ImportError guards are module-level.
            for sub in stmt.body + sum(
                    [h.body for h in stmt.handlers], []):
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    syms.functions.setdefault(
                        sub.name, _function_info(module, sub,
                                                 [sub.name]))
    return syms


@dataclass
class ProjectAnalysis:
    """The shared semantic model one lint run resolves once."""

    modules: Dict[str, ModuleSymbols]
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Method name -> qnames of every project method with that name
    #: (the class-hierarchy-analysis fallback for attribute calls).
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)
    #: module -> absolute modules it imports (project members only).
    import_graph: Dict[str, Set[str]] = field(default_factory=dict)
    #: (module, name) pairs some *other* module's code assigns through
    #: an attribute store (``kernels.py``-style backend flag flips).
    mutated_module_attrs: Set[Tuple[str, str]] = field(
        default_factory=set)

    # --- resolution -------------------------------------------------------

    def resolve_export_all(self, module: str, name: str,
                           _depth: int = 0) -> List[Tuple[str, str]]:
        """All project symbols ``module.name`` may denote.

        Chases re-exports through package ``__init__`` chains (bounded
        depth).  Each result is ``(kind, qname)`` with kind ``"func"``,
        ``"class"``, ``"instance"`` or ``"module"``; for instances the
        qname is the *class* qname when resolvable, else
        ``module:name``.  More than one result happens legitimately:
        the ImportError-fallback pattern binds a local passthrough def
        *and* the real from-import under one name, and a conservative
        caller must follow both.
        """
        results: List[Tuple[str, str]] = []
        if _depth > 8:
            return results
        syms = self.modules.get(module)
        if syms is None:
            return results
        if name in syms.functions:
            results.append(("func", syms.functions[name].qname))
        if name in syms.classes:
            results.append(("class", syms.classes[name].qname))
        if name in syms.instances:
            cls = self.resolve_class_name(syms, syms.instances[name])
            results.append(
                ("instance", cls.qname if cls is not None
                 else qualified_name(module, name)))
        origin = syms.from_names.get(name)
        if origin is not None:
            chased = self.resolve_export_all(origin[0], origin[1],
                                             _depth + 1)
            if chased:
                results.extend(chased)
            else:
                # A re-exported submodule: ``from . import soa``.
                submodule = f"{origin[0]}.{origin[1]}"
                if submodule in self.modules:
                    results.append(("module", submodule))
        if name in syms.import_aliases:
            target = syms.import_aliases[name]
            if target in self.modules:
                results.append(("module", target))
        # ``module.name`` naming a plain (un-re-exported) submodule.
        if f"{module}.{name}" in self.modules:
            results.append(("module", f"{module}.{name}"))
        seen: Set[Tuple[str, str]] = set()
        unique = [r for r in results
                  if r not in seen and not seen.add(r)]  # type: ignore
        return unique

    def resolve_export(self, module: str, name: str,
                       _depth: int = 0) -> Optional[Tuple[str, str]]:
        """First (highest-priority) resolution of ``module.name``."""
        results = self.resolve_export_all(module, name, _depth)
        return results[0] if results else None

    def resolve_class_name(self, syms: ModuleSymbols,
                           dotted: str) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted) class reference from ``syms``."""
        if "." not in dotted:
            if dotted in syms.classes:
                return syms.classes[dotted]
            resolved = self.resolve_export(syms.module, dotted)
            if resolved is not None and resolved[0] == "class":
                return self.classes.get(resolved[1])
            return None
        prefix, attr = dotted.rsplit(".", 1)
        base = syms.import_aliases.get(prefix)
        if base is None:
            return None
        resolved = self.resolve_export(base, attr)
        if resolved is not None and resolved[0] == "class":
            return self.classes.get(resolved[1])
        return None

    def class_and_bases(self, cls: ClassInfo,
                        _depth: int = 0) -> List[ClassInfo]:
        """The class plus its project-resolvable base chain."""
        result = [cls]
        if _depth > 8:
            return result
        syms = self.modules.get(cls.module)
        if syms is None:
            return result
        for base in cls.bases:
            parent = self.resolve_class_name(syms, base)
            if parent is not None and parent.qname != cls.qname:
                result.extend(self.class_and_bases(parent, _depth + 1))
        return result

    def import_closure(self, seeds: Set[str]) -> Set[str]:
        """Project modules transitively imported from ``seeds``."""
        seen: Set[str] = set()
        frontier = [m for m in seeds if m in self.modules]
        while frontier:
            module = frontier.pop()
            if module in seen:
                continue
            seen.add(module)
            for imported in self.import_graph.get(module, ()):
                if imported in self.modules and imported not in seen:
                    frontier.append(imported)
        return seen


def _attribute_store_targets(syms: ModuleSymbols,
                             analysis: ProjectAnalysis) -> None:
    """Record ``alias.NAME = ...`` stores into *project* modules."""
    tree = syms.ctx.tree
    assert tree is not None
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)):
                continue
            referent = target.value.id
            module = syms.import_aliases.get(referent)
            if module is None:
                origin = syms.from_names.get(referent)
                if origin is not None:
                    resolved = analysis.resolve_export(origin[0],
                                                       origin[1])
                    if (resolved is not None
                            and resolved[0] == "module"):
                        module = resolved[1]
            if module is not None and module in analysis.modules:
                analysis.mutated_module_attrs.add(
                    (module, target.attr))


def build_project(project: ProjectContext) -> ProjectAnalysis:
    """Resolve the whole-project semantic model (one pass)."""
    modules: Dict[str, ModuleSymbols] = {}
    for name, ctx in project.by_module().items():
        modules[name] = build_module_symbols(ctx)

    analysis = ProjectAnalysis(modules=modules)
    for name, syms in modules.items():
        analysis.import_graph[name] = {
            imported for imported in syms.imports if imported in modules}
        for info in syms.functions.values():
            analysis.functions[info.qname] = info
            _collect_nested(name, info, analysis.functions)
        for cls in syms.classes.values():
            analysis.classes[cls.qname] = cls
            for method in cls.methods.values():
                analysis.functions[method.qname] = method
                _collect_nested(name, method, analysis.functions)
                analysis.methods_by_name.setdefault(
                    method.name, []).append(method.qname)
    for qnames in analysis.methods_by_name.values():
        qnames.sort()
    for syms in modules.values():
        _attribute_store_targets(syms, analysis)
    return analysis
