"""``repro.lint`` — AST-based determinism & invariant linter.

A pure-stdlib static-analysis framework encoding this reproduction's
correctness invariants as lint rules, run in CI next to the tests::

    bundle-charging lint src tests
    python -m repro.lint --list-rules

Shipped rule pack (see docs/architecture.md, "Static analysis"):

* ``DET001`` — unseeded/global randomness outside repro.network.rng
* ``DET002`` — wall-clock calls in deterministic kernel modules
* ``DET003`` — unordered set iteration flowing into outputs
* ``DET004`` — exact float ==/!= in geometry/charging/tspn
* ``PAR001`` — reference/fast kernel parity with repro.perf.kernels
* ``OBS001`` — repro.obs imports must use the ImportError fallback
* ``CONC001-CONC005`` — thread-safety over the shared call graph:
  lock-discipline, lock-order, Condition.wait loops, fork safety,
  thread-reachable lockless shared state
* ``PURE001-PURE002`` — cache purity: every function transitively
  reachable from a memoized stage compute must be free of clock/RNG
  reads and mutable module-global state

Project-scope rules share one semantic model per invocation (import
graph, symbol table, conservative call graph — ``repro.lint.project``
and ``repro.lint.callgraph``), resolved lazily on first use.  The
engine caches per-file results by content hash and fans the per-file
phase out over ``--jobs`` worker processes.

Per-line and per-file suppression (``# repro-lint: disable=RULE``) and
a committed JSON baseline support incremental adoption; the baseline in
this repo is empty because every true positive was fixed at the source.
"""

from __future__ import annotations

from .baseline import Baseline, fingerprint, load_baseline, write_baseline
from .core import (Finding, FileContext, ProjectContext, ProjectRule,
                   Rule, all_rules, register, rule_registry)
from .engine import (LINT_STATS_SCHEMA_ID, LintResult, discover_files,
                     lint_paths, run_lint)
from .report import (JSON_SCHEMA_ID, lint_stats_problems, render_json,
                     render_sarif, render_text)
from .suppress import Suppressions, collect_suppressions

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "JSON_SCHEMA_ID",
    "LINT_STATS_SCHEMA_ID",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "all_rules",
    "collect_suppressions",
    "discover_files",
    "fingerprint",
    "lint_paths",
    "lint_stats_problems",
    "load_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_registry",
    "run_lint",
    "write_baseline",
]
