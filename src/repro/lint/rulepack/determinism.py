"""Determinism rules DET001–DET004.

These encode the reproduction's seed discipline (docs/architecture.md,
"Determinism"): every stochastic component takes an explicit seed, no
kernel reads the wall clock, nothing iterates an unordered container
into an output, and geometric/energetic floats are never compared
exactly.  Each rule exists because the OBG/BTO pipeline's headline
claim — identical seeds give byte-identical figures at any ``--jobs``
count — dies silently when any of these patterns creeps in.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..core import FileContext, Finding, Rule, register

__all__ = [
    "UnseededRandomnessRule",
    "WallClockRule",
    "UnorderedIterationRule",
    "FloatEqualityRule",
]

#: ``random`` module functions that mutate/read the hidden global RNG.
_GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Wall-clock entry points (module attribute form).
_WALL_CLOCK_ATTRS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
})

#: Bare names that are wall-clock reads when imported from ``time``.
_WALL_CLOCK_BARE = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
})

#: Packages whose modules are deterministic kernels (DET002 scope).
_KERNEL_PACKAGES = (
    "geometry", "charging", "network", "bundling", "tsp", "tspn",
    "tour", "planners", "sim", "fleet", "lifetime", "velocity",
    "analysis", "io", "viz",
)

#: The one module allowed to construct seed streams (DET001 exemption).
_RNG_MODULE = "repro.network.rng"

#: Order-insensitive consumers: feeding a set into these is fine.
_ORDER_INSENSITIVE_SINKS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset", "bool",
})


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an ``ast.Attribute``/``ast.Name`` chain as ``a.b.c``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Names under which ``module`` is importable in this file.

    ``import random`` -> {"random"}; ``import numpy as np`` with
    ``module='numpy'`` -> {"np"}.
    """
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module.split(".")[0])
                elif alias.name.startswith(module + "."):
                    # ``import numpy.random`` binds the top-level name.
                    if alias.asname is None:
                        aliases.add(module.split(".")[0])
    return aliases


def from_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Map local name -> original name for ``from module import ...``."""
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                mapping[alias.asname or alias.name] = alias.name
    return mapping


@register
class UnseededRandomnessRule(Rule):
    """DET001 — global/unseeded RNG use outside ``repro.network.rng``."""

    id = "DET001"
    title = "unseeded randomness"
    rationale = (
        "Figure regeneration must be a pure function of the seed "
        "(docs/architecture.md, 'Determinism'). Global-state RNG calls "
        "(random.random, np.random.*) and unseeded random.Random() make "
        "runs irreproducible and break the per-(figure, run) seed "
        "derivation in repro.network.rng; every stochastic component "
        "must take an explicit seed or random.Random.")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module_name != _RNG_MODULE

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        tree = ctx.tree
        random_aliases = module_aliases(tree, "random")
        numpy_aliases = module_aliases(tree, "numpy")
        random_names = from_imports(tree, "random")

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            # random.<global func>(...) / random.Random()
            if len(parts) == 2 and parts[0] in random_aliases:
                if parts[1] in _GLOBAL_RANDOM_FUNCS:
                    yield self.finding(
                        ctx, node,
                        f"call to global-state '{name}()'; pass an "
                        f"explicit random.Random (see "
                        f"repro.network.rng.make_rng)")
                elif parts[1] == "Random" and not node.args:
                    yield self.finding(
                        ctx, node,
                        "'random.Random()' without a seed is "
                        "irreproducible; construct it with an explicit "
                        "seed (repro.network.rng.make_rng)")
            # from random import shuffle; shuffle(...)
            elif len(parts) == 1 and parts[0] in random_names:
                original = random_names[parts[0]]
                if original in _GLOBAL_RANDOM_FUNCS:
                    yield self.finding(
                        ctx, node,
                        f"call to global-state 'random.{original}()' "
                        f"(imported as '{parts[0]}'); pass an explicit "
                        f"random.Random")
                elif original == "Random" and not node.args:
                    yield self.finding(
                        ctx, node,
                        "'random.Random()' without a seed is "
                        "irreproducible; give it an explicit seed")
            # np.random.<func>(...) global state; np.random.default_rng()
            elif (len(parts) == 3 and parts[0] in numpy_aliases
                  and parts[1] == "random"):
                if parts[2] == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            ctx, node,
                            "'default_rng()' without a seed is "
                            "irreproducible; pass an explicit seed")
                elif parts[2] not in ("Generator", "SeedSequence",
                                      "Philox", "PCG64", "MT19937"):
                    yield self.finding(
                        ctx, node,
                        f"call to numpy global-state '{name}()'; use a "
                        f"seeded np.random.default_rng(seed) generator")


@register
class WallClockRule(Rule):
    """DET002 — wall-clock reads inside deterministic kernel modules."""

    id = "DET002"
    title = "wall-clock call in kernel module"
    rationale = (
        "Geometry, bundling, charging, tour and sim modules are pure "
        "functions of their inputs; reading the clock there either "
        "leaks timing into results (breaking the byte-identity claim "
        "between reference and fast kernels) or smuggles in profiling "
        "that belongs to repro.perf / repro.obs, the only sanctioned "
        "timing layers.")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*_KERNEL_PACKAGES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        tree = ctx.tree
        time_names = from_imports(tree, "time")
        datetime_names = from_imports(tree, "datetime")

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            hit = None
            if name in _WALL_CLOCK_ATTRS:
                hit = name
            else:
                parts = name.split(".")
                if len(parts) == 1:
                    if time_names.get(parts[0]) in _WALL_CLOCK_BARE:
                        hit = f"time.{time_names[parts[0]]}"
                elif len(parts) == 2:
                    # from datetime import datetime; datetime.now()
                    original = datetime_names.get(parts[0])
                    if (original in ("datetime", "date")
                            and f"{original}.{parts[1]}"
                            in _WALL_CLOCK_ATTRS):
                        hit = f"datetime.{original}.{parts[1]}"
            if hit is not None:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call '{hit}()' in a deterministic "
                    f"kernel module; timing belongs in repro.perf "
                    f"(counters/timers) or repro.obs (spans)")


class _SetTracker(ast.NodeVisitor):
    """Collect names bound to set-typed expressions in one scope."""

    def __init__(self) -> None:
        self.known: Set[str] = set()

    def _is_set_expr(self, node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set",
                                                          "frozenset"):
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in ("union", "intersection", "difference",
                                 "symmetric_difference", "copy"):
                    base = func.value
                    if (isinstance(base, ast.Name)
                            and base.id in self.known):
                        return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right)
                    or (isinstance(node.left, ast.Name)
                        and node.left.id in self.known)
                    or (isinstance(node.right, ast.Name)
                        and node.right.id in self.known))
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.known.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self._is_set_expr(node.value):
            if isinstance(node.target, ast.Name):
                self.known.add(node.target.id)
        self.generic_visit(node)


@register
class UnorderedIterationRule(Rule):
    """DET003 — iterating a set into ordered output without sorted()."""

    id = "DET003"
    title = "unordered set iteration"
    rationale = (
        "Set iteration order is an implementation detail; looping over "
        "a set to build a tour, a bundle list or any tie-broken "
        "argmin/argmax makes results depend on hash layout. The OBG "
        "pipeline's bit-identity between reference and fast kernels "
        "(and across --jobs counts) requires every such traversal to "
        "go through sorted().")

    def applies_to(self, ctx: FileContext) -> bool:
        # Scoped to library code: tests freely iterate sets in asserts.
        return ctx.rel_path.startswith("src/")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(n for n in ast.walk(ctx.tree)
                      if isinstance(n, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)))
        for scope in scopes:
            tracker = _SetTracker()
            tracker.visit(scope)
            yield from self._check_scope(ctx, scope, tracker.known)

    def _is_unordered(self, node: ast.AST, known: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and node.id in known:
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        return False

    def _check_scope(self, ctx: FileContext, scope: ast.AST,
                     known: Set[str]) -> Iterable[Finding]:
        skip: Set[int] = set()
        for fn in ast.walk(scope):
            if isinstance(fn, (ast.FunctionDef,
                               ast.AsyncFunctionDef)) and fn is not scope:
                skip.update(id(inner) for inner in ast.walk(fn))

        for node in ast.walk(scope):
            if id(node) in skip:
                continue
            if isinstance(node, ast.For) and self._is_unordered(
                    node.iter, known):
                yield self.finding(
                    ctx, node,
                    "iteration over a set has no deterministic order; "
                    "wrap the iterable in sorted(...)")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                # SetComp is exempt: a set built from a set is still
                # unordered, so the traversal order cannot leak out.
                for gen in node.generators:
                    if self._is_unordered(gen.iter, known):
                        yield self.finding(
                            ctx, node,
                            "comprehension over a set has no "
                            "deterministic order; wrap the iterable "
                            "in sorted(...)")
            elif isinstance(node, ast.Call):
                func = node.func
                sink = None
                if isinstance(func, ast.Name):
                    sink = func.id
                elif (isinstance(func, ast.Attribute)
                      and func.attr == "join"):
                    sink = "join"
                if sink in ("list", "tuple", "enumerate", "join",
                            "reversed"):
                    for arg in node.args:
                        if self._is_unordered(arg, known):
                            yield self.finding(
                                ctx, node,
                                f"'{sink}(...)' materializes a set in "
                                f"hash order; wrap the set in "
                                f"sorted(...) first")


@register
class FloatEqualityRule(Rule):
    """DET004 — exact float equality in geometry/charging/tspn."""

    id = "DET004"
    title = "exact float comparison"
    rationale = (
        "Geometric predicates (Thm 4/5 anchor search, MinDisk support "
        "sets) and energy accounting (Eq. 1/3) accumulate rounding "
        "error; comparing such floats with ==/!= makes feasibility "
        "flip on the last ulp. Use math.isclose, Point.is_close or "
        "the module's documented epsilon — comparison against the "
        "exact literal 0.0 is exempt (division-by-zero guards are "
        "intentionally exact).")

    #: Zero-argument methods known to return accumulated floats.
    _FLOAT_METHODS = frozenset({
        "norm", "norm_squared", "distance_to", "distance_squared_to",
        "angle", "perimeter_length", "charge_time", "received_power",
        "efficiency", "charge_energy_cost",
    })
    _FLOAT_FUNCS = frozenset({
        "math.sqrt", "math.hypot", "math.dist", "math.fsum",
        "math.atan2", "math.cos", "math.sin", "math.exp", "math.log",
    })

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package("geometry", "charging", "tspn")

    def _is_zero_literal(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) and node.value == 0
        if (isinstance(node, ast.UnaryOp)
                and isinstance(node.op, ast.USub)):
            return self._is_zero_literal(node.operand)
        return False

    def _is_float_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float) and node.value != 0.0
        if (isinstance(node, ast.UnaryOp)
                and isinstance(node.op, ast.USub)):
            return self._is_float_expr(node.operand)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in self._FLOAT_FUNCS:
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._FLOAT_METHODS):
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if (self._is_zero_literal(left)
                        or self._is_zero_literal(right)):
                    continue
                if self._is_float_expr(left) or self._is_float_expr(right):
                    yield self.finding(
                        ctx, node,
                        "exact float ==/!= on a computed value; use "
                        "math.isclose / Point.is_close or the module's "
                        "epsilon (exact compare against literal 0.0 is "
                        "allowed as a zero-divide guard)")
