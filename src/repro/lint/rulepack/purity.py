"""Cache-purity rules PURE001–PURE002 (cross-module).

Every memoized stage in :data:`repro.cache.keys.KERNEL_VERSIONS` is a
contract: the payload is a pure function of ``(stage, params, kernel
version)``.  A compute function that reads the wall clock, the global
RNG, ``os.environ`` or a mutable module global returns values the cache
key does not capture — the first warm hit then serves a stale or
simply *different* answer, silently, to every planner sharing the
content-addressed store.

These rules find every ``stage_memo(...)`` / ``get_or_compute(...)``
call site with a literal stage name, take its compute callable as a
root, and scan the call-graph closure of those roots:

* PURE001 — direct clock (``time.*``, ``datetime.now``…) or
  global-RNG (``random.*``) calls.  :mod:`repro.clock` is the one
  sanctioned time source and is exempt (stages must thread timestamps
  through parameters, not read them mid-compute).
* PURE002 — reads of ambient mutable state: ``os.environ`` and module
  globals that are rebound at runtime (``global`` statements or
  cross-module attribute stores).  The ``_USE_REFERENCE`` backend
  flags are exempt: they are versioned by the kernel-parity contract
  (PAR001) and flipped only by the bench harness.

The observability/perf/lint layers are out of scope — they time and
count around the compute but never feed the payload.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import Finding, ProjectContext, ProjectRule, register
from .determinism import (_GLOBAL_RANDOM_FUNCS, _WALL_CLOCK_ATTRS,
                          _WALL_CLOCK_BARE)

__all__ = ["ImpureStageClockRule", "ImpureStageAmbientReadRule"]

_KEYS_MODULE = "repro.cache.keys"
_VERSIONS_NAME = "KERNEL_VERSIONS"

#: Modules exempt from the purity scan: the memo/observability
#: infrastructure measures *around* the compute and never contributes
#: to payloads, and repro.clock is the sanctioned time indirection.
_EXEMPT_PACKAGES = ("perf", "obs", "lint", "cache")
_EXEMPT_MODULES = frozenset({"repro.clock"})

#: Backend flags the parity contract owns (see PAR001): flipped only
#: by the bench harness, versioned through KERNEL_VERSIONS.
_EXEMPT_GLOBALS = frozenset({"_USE_REFERENCE"})


def _literal_dict_keys(node: ast.Dict) -> Set[str]:
    """String keys of a dict literal (non-constant keys are skipped)."""
    return {key.value for key in node.keys
            if isinstance(key, ast.Constant)
            and isinstance(key.value, str)}


def _stage_names(analysis) -> Set[str]:
    """Every stage name registered on KERNEL_VERSIONS, or empty.

    Parsed statically from :mod:`repro.cache.keys`.  Three registration
    idioms are recognized, so a stage family added after the module's
    dict literal (the ``delta_*`` stages' original failure mode) is
    still auto-covered by PURE001/PURE002:

    * the ``KERNEL_VERSIONS = {...}`` dict literal itself,
    * ``KERNEL_VERSIONS["stage"] = "tag"`` subscript assignments,
    * ``KERNEL_VERSIONS.update({"stage": "tag", ...})`` calls.

    When the module is outside the linted file set (CI lints subtrees),
    the rules go silent rather than guessing.
    """
    syms = analysis.modules.get(_KEYS_MODULE)
    if syms is None or syms.ctx.tree is None:
        return set()
    stages: Set[str] = set()
    for node in ast.walk(syms.ctx.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            if isinstance(node, ast.Assign):
                targets = node.targets
            else:
                targets = [node.target]
            value = node.value
            if value is None:
                continue
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id == _VERSIONS_NAME
                        and isinstance(value, ast.Dict)):
                    stages.update(_literal_dict_keys(value))
                elif (isinstance(target, ast.Subscript)
                      and isinstance(target.value, ast.Name)
                      and target.value.id == _VERSIONS_NAME
                      and isinstance(target.slice, ast.Constant)
                      and isinstance(target.slice.value, str)):
                    stages.add(target.slice.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr == "update"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == _VERSIONS_NAME
                    and node.args
                    and isinstance(node.args[0], ast.Dict)):
                stages.update(_literal_dict_keys(node.args[0]))
    return stages


def _compute_arg(call: ast.Call) -> Optional[ast.expr]:
    """The compute callable of a stage_memo/get_or_compute call."""
    if len(call.args) >= 3:
        return call.args[2]
    for kw in call.keywords:
        if kw.arg == "compute":
            return kw.value
    return None


def _is_stage_call(call: ast.Call, stages: Set[str]) -> Optional[str]:
    """Literal stage name when ``call`` memoizes a known stage."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name not in ("stage_memo", "get_or_compute"):
        return None
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str) and value in stages:
            return value
    return None


def _stage_roots(project: ProjectContext
                 ) -> Tuple[Dict[str, str], List[Tuple[str, object,
                                                       ast.Lambda]]]:
    """Find stage compute roots across the project.

    Returns ``(roots, lambdas)``: ``roots`` maps root function qnames
    to the stage name that registers them; ``lambdas`` carries inline
    compute lambdas as ``(stage, enclosing FunctionInfo, node)`` so
    their bodies can be scanned in the enclosing environment.
    """
    analysis = project.analysis()
    _graph, resolver = project.call_graph()
    stages = _stage_names(analysis)
    roots: Dict[str, str] = {}
    lambdas: List[Tuple[str, object, ast.Lambda]] = []
    if not stages:
        return roots, lambdas
    from ..callgraph import function_body_nodes
    for info in analysis.functions.values():
        for node in function_body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            stage = _is_stage_call(node, stages)
            if stage is None:
                continue
            compute = _compute_arg(node)
            if compute is None:
                continue
            if isinstance(compute, ast.Lambda):
                lambdas.append((stage, info, compute))
                for qname in resolver.calls_in(info, compute.body):
                    roots.setdefault(qname, stage)
            elif isinstance(compute, (ast.Name, ast.Attribute)):
                for qname in resolver.resolve_call(info, compute):
                    roots.setdefault(qname, stage)
    return roots, lambdas


class _StagePurityRule(ProjectRule):
    """Shared driver: scan the closure of stage computes for one
    violation predicate implemented by subclasses."""

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        analysis = project.analysis()
        graph, _resolver = project.call_graph()
        roots, lambdas = _stage_roots(project)
        if not roots and not lambdas:
            return
        reach = graph.reachable(roots)
        from ..callgraph import function_body_nodes
        for qname in sorted(reach):
            info = analysis.functions.get(qname)
            if info is None or self._exempt(info.module):
                continue
            syms = analysis.modules[info.module]
            stage = roots.get(qname)
            if stage is None:
                chain = graph.shortest_path(roots, qname)
                stage = roots.get(chain[0], "?") if chain else "?"
            for node in function_body_nodes(info.node):
                yield from self._check_node(syms, info, node, stage,
                                            analysis)
        for stage, info, lam in lambdas:
            if self._exempt(info.module):  # type: ignore[attr-defined]
                continue
            syms = analysis.modules[info.module]  # type: ignore
            for node in ast.walk(lam):
                yield from self._check_node(syms, info, node, stage,
                                            analysis)

    @staticmethod
    def _exempt(module: str) -> bool:
        if module in _EXEMPT_MODULES:
            return True
        return any(module == f"repro.{pkg}"
                   or module.startswith(f"repro.{pkg}.")
                   for pkg in _EXEMPT_PACKAGES)

    def _check_node(self, syms, info, node: ast.AST, stage: str,
                    analysis) -> Iterable[Finding]:
        raise NotImplementedError


def _resolve_call_dotted(node: ast.Call, syms) -> Optional[str]:
    """Canonical ``module.attr`` of a call through an import alias."""
    func = node.func
    parts: List[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    parts.append(func.id)
    parts.reverse()
    head = syms.import_aliases.get(parts[0])
    if head is None:
        return None
    return ".".join([head] + parts[1:])


@register
class ImpureStageClockRule(_StagePurityRule):
    """PURE001 — clock/RNG access inside a memoized stage's closure."""

    id = "PURE001"
    title = "clock or global RNG inside a memoized stage"
    rationale = (
        "A stage payload must be a pure function of (stage, params, "
        "kernel version) — that is the whole warm-start contract. A "
        "time.time()/random.random() call inside the compute closure "
        "makes the first cold run's answer canonical forever; every "
        "later run silently inherits it. Thread timestamps and seeded "
        "RNGs through params, or use repro.clock at the edges.")

    def _check_node(self, syms, info, node: ast.AST, stage: str,
                    analysis) -> Iterable[Finding]:
        if not isinstance(node, ast.Call):
            return
        hit: Optional[str] = None
        dotted = _resolve_call_dotted(node, syms)
        if dotted is not None:
            if dotted in _WALL_CLOCK_ATTRS:
                hit = dotted
            else:
                head, _, attr = dotted.rpartition(".")
                if head == "random" and attr in _GLOBAL_RANDOM_FUNCS:
                    hit = dotted
        elif isinstance(node.func, ast.Name):
            origin = syms.from_names.get(node.func.id)
            if origin is not None:
                if origin[0] == "time" and origin[1] in _WALL_CLOCK_BARE:
                    hit = f"time.{origin[1]}"
                elif (origin[0] == "random"
                      and origin[1] in _GLOBAL_RANDOM_FUNCS):
                    hit = f"random.{origin[1]}"
        if hit is not None:
            yield self.finding(
                syms.ctx, node,
                f"'{info.name}' is in the compute closure of memoized "
                f"stage '{stage}' but calls '{hit}()'; the cache key "
                f"cannot capture it — pass the value through params "
                f"or read it outside the stage via repro.clock")


@register
class ImpureStageAmbientReadRule(_StagePurityRule):
    """PURE002 — ambient mutable state read inside a stage's closure."""

    id = "PURE002"
    title = "ambient state read inside a memoized stage"
    rationale = (
        "os.environ and module globals that are rebound at runtime "
        "(global statements, cross-module attribute stores) are "
        "invisible to the stage key; a compute that reads them caches "
        "one configuration's answer under a key every configuration "
        "shares. Pass such values through the stage params so they "
        "participate in the digest.")

    def _check_node(self, syms, info, node: ast.AST, stage: str,
                    analysis) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute) and isinstance(node.ctx,
                                                         ast.Load):
            if (node.attr == "environ"
                    and isinstance(node.value, ast.Name)
                    and syms.import_aliases.get(node.value.id) == "os"):
                yield self.finding(
                    syms.ctx, node,
                    f"'{info.name}' reads os.environ inside memoized "
                    f"stage '{stage}'; environment state is not part "
                    f"of the cache key — pass it through params")
                return
            if (isinstance(node.value, ast.Name)
                    and node.attr not in _EXEMPT_GLOBALS):
                module = syms.import_aliases.get(node.value.id)
                if (module is not None
                        and (module, node.attr)
                        in analysis.mutated_module_attrs):
                    yield self.finding(
                        syms.ctx, node,
                        f"'{info.name}' reads '{module}.{node.attr}' "
                        f"inside memoized stage '{stage}', but that "
                        f"global is reassigned at runtime; pass it "
                        f"through params so it enters the digest")
        elif isinstance(node, ast.Name) and isinstance(node.ctx,
                                                       ast.Load):
            name = node.id
            if name in _EXEMPT_GLOBALS:
                return
            rebound = (name in syms.rebound_globals
                       or (info.module, name)
                       in analysis.mutated_module_attrs)
            if rebound and name in syms.global_names:
                yield self.finding(
                    syms.ctx, node,
                    f"'{info.name}' reads module global '{name}' "
                    f"inside memoized stage '{stage}', but it is "
                    f"rebound at runtime; pass it through params so "
                    f"it enters the digest")
            if (syms.from_names.get(name) == ("os", "environ")):
                yield self.finding(
                    syms.ctx, node,
                    f"'{info.name}' reads os.environ inside memoized "
                    f"stage '{stage}'; pass it through params")
