"""OBS001 — ImportError-safe observability imports.

PR 2's byte-identity guarantee is that a pipeline run with
``repro.obs`` physically absent produces byte-identical outputs.  That
only holds because every pipeline module imports the tracer behind the
fallback pattern::

    try:  # tracing is optional
        from ..obs.tracer import obs_span
    except ImportError:
        from contextlib import nullcontext as _nullcontext

        def obs_span(name, **attrs):
            return _nullcontext()

A bare module-level ``from ..obs...`` import reintroduces a hard
dependency and breaks the stripped-obs deployment.  Imports inside
function bodies are exempt: they are deliberate lazy imports on paths
(CLI ``trace``/``report``, the bench harness) that only run when the
user explicitly asked for observability.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..core import FileContext, Finding, Rule, register

__all__ = ["ObsImportFallbackRule"]

_SAFE_EXCEPTIONS = frozenset({"ImportError", "ModuleNotFoundError",
                              "Exception", "BaseException"})


def _is_obs_import(node: ast.stmt, module_name: str) -> bool:
    """True when ``node`` imports from the repro.obs subsystem."""
    if isinstance(node, ast.Import):
        return any(alias.name == "repro.obs"
                   or alias.name.startswith("repro.obs.")
                   for alias in node.names)
    if isinstance(node, ast.ImportFrom):
        target = node.module or ""
        if node.level == 0:
            return target == "repro.obs" or target.startswith("repro.obs.")
        # Relative: resolve against the importing module's package.
        parts = module_name.split(".") if module_name else []
        if node.level > len(parts):
            return False
        base = parts[:len(parts) - node.level]
        absolute = ".".join(base + ([target] if target else []))
        if absolute == "repro.obs" or absolute.startswith("repro.obs."):
            return True
        # ``from .. import obs`` / ``from . import obs``
        if not target and any(alias.name == "obs"
                              for alias in node.names):
            return ".".join(base + ["obs"]).startswith("repro.obs")
    return False


def _handles_import_error(node: ast.Try) -> bool:
    for handler in node.handlers:
        if handler.type is None:
            return True
        exceptions: List[ast.expr] = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple) else [handler.type])
        for exc in exceptions:
            if isinstance(exc, ast.Name) and exc.id in _SAFE_EXCEPTIONS:
                return True
    return False


@register
class ObsImportFallbackRule(Rule):
    """OBS001 — module-level obs imports need the ImportError fallback."""

    id = "OBS001"
    title = "unguarded repro.obs import"
    rationale = (
        "The determinism suite proves pipeline outputs byte-identical "
        "with repro.obs absent (stripped deployments, minimal "
        "containers). A module-level 'from ..obs import ...' without "
        "the try/except ImportError fallback makes the whole pipeline "
        "ImportError at collection time in exactly those environments; "
        "lazy imports inside functions that only run when tracing was "
        "requested are fine.")

    def applies_to(self, ctx: FileContext) -> bool:
        name = ctx.module_name
        if not name.startswith("repro."):
            return False
        if name == "repro.obs" or name.startswith("repro.obs."):
            return False
        return name != "repro.cli"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        guarded: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Try) and _handles_import_error(node):
                for child in ast.walk(node):
                    guarded.add(id(child))
        # Only module scope is checked: imports inside defs are lazy.
        in_function: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is not node:
                        in_function.add(id(child))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if id(node) in in_function or id(node) in guarded:
                continue
            if _is_obs_import(node, ctx.module_name):
                yield self.finding(
                    ctx, node,
                    "module-level repro.obs import without the "
                    "try/except ImportError fallback; use the "
                    "nullcontext obs_span pattern so the pipeline "
                    "works with repro.obs stripped")
