"""OBS001/OBS002 — observability-layer hygiene rules.

OBS001 — ImportError-safe optional-subsystem imports.

PR 2's byte-identity guarantee is that a pipeline run with
``repro.obs`` physically absent produces byte-identical outputs, and
PR 4 extended the same contract to ``repro.cache``.  That only holds
because every pipeline module imports these subsystems behind the
fallback pattern::

    try:  # tracing is optional
        from ..obs.tracer import obs_span
    except ImportError:
        from contextlib import nullcontext as _nullcontext

        def obs_span(name, **attrs):
            return _nullcontext()

(and the analogous ``stage_memo``/``activate_cache`` passthroughs for
``repro.cache``).  A bare module-level ``from ..obs...`` or
``from ..cache...`` import reintroduces a hard dependency and breaks
the stripped deployment.  Imports inside function bodies are exempt:
they are deliberate lazy imports on paths (CLI ``trace``/``report``/
``cache``, the bench harness) that only run when the user explicitly
asked for the subsystem.

OBS002 — clock indirection in the serving/telemetry hot paths.  The
modules that *measure* time (``repro.service``, ``repro.obs``,
``repro.loadgen``) must read clocks through :mod:`repro.clock`
(``monotonic``/``perf_counter``/``wall``), never ``time.*`` directly:
the indirection makes every clock read greppable and monkeypatchable
(latency tests freeze it), and keeps duration math on the monotonic
clock by construction — a ``time.time()`` delta jumps under NTP slew
and produces negative latencies in histograms.  ``time.sleep`` and
calendar formatting (``strftime``/``gmtime``) are not clock *reads*
and stay allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..core import FileContext, Finding, Rule, register
from .determinism import (_WALL_CLOCK_BARE, dotted_name, from_imports,
                          module_aliases)

__all__ = ["ClockIndirectionRule", "ObsImportFallbackRule"]

_SAFE_EXCEPTIONS = frozenset({"ImportError", "ModuleNotFoundError",
                              "Exception", "BaseException"})

#: Subsystems the pipeline must work without (the degraded-mode set).
_OPTIONAL_SUBSYSTEMS = ("obs", "cache")


def _imported_subsystem(node: ast.stmt,
                        module_name: str) -> Optional[str]:
    """Return the optional subsystem ``node`` imports from, if any."""
    for subsystem in _OPTIONAL_SUBSYSTEMS:
        root = f"repro.{subsystem}"
        if isinstance(node, ast.Import):
            if any(alias.name == root
                   or alias.name.startswith(root + ".")
                   for alias in node.names):
                return subsystem
            continue
        if not isinstance(node, ast.ImportFrom):
            continue
        target = node.module or ""
        if node.level == 0:
            if target == root or target.startswith(root + "."):
                return subsystem
            continue
        # Relative: resolve against the importing module's package.
        parts = module_name.split(".") if module_name else []
        if node.level > len(parts):
            continue
        base = parts[:len(parts) - node.level]
        absolute = ".".join(base + ([target] if target else []))
        if absolute == root or absolute.startswith(root + "."):
            return subsystem
        # ``from .. import obs`` / ``from . import cache``
        if not target and any(alias.name == subsystem
                              for alias in node.names):
            if ".".join(base + [subsystem]).startswith(root):
                return subsystem
    return None


def _handles_import_error(node: ast.Try) -> bool:
    for handler in node.handlers:
        if handler.type is None:
            return True
        exceptions: List[ast.expr] = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple) else [handler.type])
        for exc in exceptions:
            if isinstance(exc, ast.Name) and exc.id in _SAFE_EXCEPTIONS:
                return True
    return False


@register
class ObsImportFallbackRule(Rule):
    """OBS001 — module-level obs/cache imports need the fallback."""

    id = "OBS001"
    title = "unguarded repro.obs / repro.cache import"
    rationale = (
        "The determinism suite proves pipeline outputs byte-identical "
        "with repro.obs and repro.cache absent (stripped deployments, "
        "minimal containers). A module-level 'from ..obs import ...' "
        "or 'from ..cache import ...' without the try/except "
        "ImportError fallback makes the whole pipeline ImportError at "
        "collection time in exactly those environments; lazy imports "
        "inside functions that only run when the subsystem was "
        "requested are fine.")

    def applies_to(self, ctx: FileContext) -> bool:
        name = ctx.module_name
        if not name.startswith("repro."):
            return False
        for subsystem in _OPTIONAL_SUBSYSTEMS:
            root = f"repro.{subsystem}"
            if name == root or name.startswith(root + "."):
                return False
        return name != "repro.cli"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        guarded: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Try) and _handles_import_error(node):
                for child in ast.walk(node):
                    guarded.add(id(child))
        # Only module scope is checked: imports inside defs are lazy.
        in_function: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is not node:
                        in_function.add(id(child))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if id(node) in in_function or id(node) in guarded:
                continue
            subsystem = _imported_subsystem(node, ctx.module_name)
            if subsystem is not None:
                yield self.finding(
                    ctx, node,
                    f"module-level repro.{subsystem} import without "
                    f"the try/except ImportError fallback; use the "
                    f"nullcontext/passthrough pattern so the pipeline "
                    f"works with repro.{subsystem} stripped")


#: Packages whose modules must read clocks through ``repro.clock``.
_CLOCKED_PACKAGES = ("repro.service", "repro.obs", "repro.loadgen")


@register
class ClockIndirectionRule(Rule):
    """OBS002 — serving/telemetry clock reads go through repro.clock."""

    id = "OBS002"
    title = "direct time.* clock read in a serving/telemetry module"
    rationale = (
        "repro.service, repro.obs and repro.loadgen measure durations "
        "that end up in histograms, access logs and loadgen reports. "
        "Reading time.time()/time.monotonic()/time.perf_counter() "
        "directly scatters unauditable clock reads and invites "
        "wall-clock deltas that jump under NTP slew; routing every "
        "read through repro.clock (monotonic/perf_counter/wall) keeps "
        "durations monotonic by construction and lets tests freeze "
        "the clock with one monkeypatch. time.sleep and calendar "
        "formatting (strftime/gmtime) are not clock reads and remain "
        "allowed.")

    def applies_to(self, ctx: FileContext) -> bool:
        name = ctx.module_name
        return any(name == package or name.startswith(package + ".")
                   for package in _CLOCKED_PACKAGES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        time_aliases = module_aliases(ctx.tree, "time")
        bare = {local: original
                for local, original in from_imports(ctx.tree,
                                                    "time").items()
                if original in _WALL_CLOCK_BARE}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            flagged = None
            if "." in name:
                prefix, attr = name.split(".", 1)
                if prefix in time_aliases and attr in _WALL_CLOCK_BARE:
                    flagged = f"time.{attr}"
            elif name in bare:
                flagged = f"time.{bare[name]}"
            if flagged is not None:
                yield self.finding(
                    ctx, node,
                    f"direct {flagged}() read; import the clock from "
                    f"repro.clock (monotonic/perf_counter/wall) so "
                    f"serving-path time reads stay auditable and "
                    f"monkeypatchable")
