"""PAR001 — reference/fast kernel parity (cross-module).

The performance layer's contract (docs/architecture.md, "Performance
architecture") is that every accelerated kernel keeps its pure-Python
original as a ``*_reference`` sibling, and that
``repro.perf.kernels.reference_kernels()`` can flip *all* fast paths
back at once.  This rule checks the three legs of that contract
statically:

1. every ``X_reference`` function has a fast sibling: ``X`` in the same
   module, or the struct-of-arrays kernel ``flat_X`` — defined locally
   or imported from a registered backend module (directly or through
   the backend's parent package re-export);
2. the module defining a ``*_reference`` kernel is gated by a
   ``_USE_REFERENCE`` backend flag that ``repro.perf.kernels``
   registers (directly, or via an imported backend module such as
   ``repro.bundling.bitset``);
3. conversely, every backend module registered in
   ``repro.perf.kernels`` is actually exercised by at least one
   ``*_reference`` kernel.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import (FileContext, Finding, ProjectContext, ProjectRule,
                    register)

__all__ = ["KernelParityRule"]

_KERNELS_MODULE = "repro.perf.kernels"
_FLAG = "_USE_REFERENCE"
_SUFFIX = "_reference"


def _resolve_relative(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Resolve an ``ImportFrom`` to an absolute dotted module name."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if node.level > len(parts):
        return None
    base = parts[:len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _imported_modules(ctx: FileContext) -> Dict[str, str]:
    """Map local alias -> absolute module for module-valued imports."""
    assert ctx.tree is not None
    aliases: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = \
                    alias.name
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(ctx.module_name or "x.y", node)
            if base is None:
                continue
            for alias in node.names:
                # ``from ..bundling import bitset as _bitset``: the
                # bound name may itself be a module.
                aliases[alias.asname or alias.name] = \
                    f"{base}.{alias.name}"
    return aliases


def _registered_backends(kernels: FileContext) -> Set[str]:
    """Modules whose ``_USE_REFERENCE`` flag repro.perf.kernels flips."""
    assert kernels.tree is not None
    aliases = _imported_modules(kernels)
    backends: Set[str] = set()
    for node in ast.walk(kernels.tree):
        target = None
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Attribute) and tgt.attr == _FLAG:
                    target = tgt
        elif isinstance(node, ast.Attribute) and node.attr == _FLAG:
            target = node
        if target is not None and isinstance(target.value, ast.Name):
            module = aliases.get(target.value.id)
            if module is not None:
                backends.add(module)
    return backends


def _backend_imports(ctx: FileContext, backends: Set[str]) -> Set[str]:
    """Names this file imports from a registered backend module.

    A name counts when its ``from X import name`` base is a backend or a
    package containing one (``from ..geometry import flat_distance_rows``
    re-exports the :mod:`repro.geometry.soa` kernel through the package
    ``__init__``), so SoA fast siblings resolve without requiring every
    consumer to import the backend module directly.
    """
    assert ctx.tree is not None
    names: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        base = _resolve_relative(ctx.module_name or "x.y", node)
        if base is None:
            continue
        if not any(backend == base or backend.startswith(base + ".")
                   for backend in backends):
            continue
        for alias in node.names:
            names.add(alias.asname or alias.name)
    return names


def _flag_references(ctx: FileContext) -> Tuple[bool, Set[str]]:
    """(defines _USE_REFERENCE itself, backend modules referenced)."""
    assert ctx.tree is not None
    aliases = _imported_modules(ctx)
    defines = False
    referenced: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name) and tgt.id == _FLAG:
                    defines = True
        elif isinstance(node, ast.Name) and node.id == _FLAG:
            defines = defines or isinstance(node.ctx, ast.Store)
        elif isinstance(node, ast.Attribute) and node.attr == _FLAG:
            if isinstance(node.value, ast.Name):
                module = aliases.get(node.value.id)
                if module is not None:
                    referenced.add(module)
    return defines, referenced


@register
class KernelParityRule(ProjectRule):
    """PAR001 — every reference kernel has a registered fast sibling."""

    id = "PAR001"
    title = "reference/fast kernel parity"
    rationale = (
        "The benchmark harness proves fast kernels bit-identical by "
        "re-running workloads under reference_kernels(); a reference "
        "function without a fast sibling (or one whose module is not "
        "wired into repro.perf.kernels) silently drops out of that "
        "proof, and a registered backend no reference kernel exercises "
        "is dead switching logic.")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        modules = project.by_module()
        kernels = modules.get(_KERNELS_MODULE)
        backends = (_registered_backends(kernels)
                    if kernels is not None else set())
        used_backends: Set[str] = set()
        any_reference = False

        for name, ctx in sorted(modules.items()):
            if not name.startswith("repro.") or name == _KERNELS_MODULE:
                continue
            assert ctx.tree is not None
            top_defs: List[ast.FunctionDef] = [
                node for node in ctx.tree.body
                if isinstance(node, ast.FunctionDef)]
            names = {fn.name for fn in top_defs}
            ref_defs = [fn for fn in top_defs
                        if fn.name.endswith(_SUFFIX)
                        and len(fn.name) > len(_SUFFIX)]
            if not ref_defs:
                continue
            any_reference = True
            defines_flag, referenced = _flag_references(ctx)
            if defines_flag:
                used_backends.add(name)
            used_backends |= referenced & backends

            from_backends = _backend_imports(ctx, backends)
            for fn in ref_defs:
                sibling = fn.name[:-len(_SUFFIX)]
                if sibling in names:
                    continue
                flat = f"flat_{sibling}"
                if flat in names or flat in from_backends:
                    # Struct-of-arrays sibling: defined here or imported
                    # from a registered backend (repro.geometry.soa).
                    continue
                yield self.finding(
                    ctx, fn,
                    f"reference kernel '{fn.name}' has no fast sibling "
                    f"'{sibling}' (or SoA sibling '{flat}') in {name}; "
                    f"the bench harness cannot compare it")
            gated = defines_flag and name in backends
            gated = gated or bool(referenced & backends)
            if kernels is not None and not gated:
                yield self.finding(
                    ctx, ref_defs[0],
                    f"module {name} defines reference kernels but is "
                    f"not gated by a {_FLAG} backend registered in "
                    f"{_KERNELS_MODULE}; reference_kernels() cannot "
                    f"switch it")

        if kernels is not None and any_reference:
            for backend in sorted(backends - used_backends):
                anchor = modules.get(backend, kernels)
                yield Finding(
                    path=anchor.rel_path, line=1, col=0, rule=self.id,
                    message=(
                        f"backend {backend} is registered in "
                        f"{_KERNELS_MODULE} but no '*{_SUFFIX}' kernel "
                        f"references its {_FLAG} flag"))
