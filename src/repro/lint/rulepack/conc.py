"""Concurrency rules CONC001–CONC005 (cross-module).

The serving stack runs planner computes on scheduler worker threads and
HTTP handler threads, and is about to go multi-process (ROADMAP item 1:
pre-forked digest-sharded workers).  These rules encode its locking
discipline statically, on top of the shared project model
(:mod:`repro.lint.project`) and call graph
(:mod:`repro.lint.callgraph`):

* CONC001 — an attribute that is written under ``self.<lock>`` anywhere
  in a thread-involved class must be written under it everywhere
  (``__init__`` is exempt: construction happens-before publication).
* CONC002 — nested lock acquisitions must follow one global order; a
  pair of sites acquiring two locks in opposite orders is a deadlock.
* CONC003 — ``Condition.wait`` must sit inside a predicate loop
  (``while``): bare waits miss wakeups and spurious-wake consistently.
* CONC004 — module-level locks/conditions/threads/open handles in the
  serving import closure are fork-unsafe unless the module registers an
  ``os.register_at_fork`` reinitializer.
* CONC005 — shared mutable state reachable from serving threads needs
  an owning lock: lockless singleton classes whose methods mutate
  ``self``, and module-global containers mutated outside any lock.

Scope: the concurrency surface — ``repro.service``, ``repro.obs``,
``repro.cache``, ``repro.perf``, ``repro.loadgen``.  Pipeline/planner
classes are per-call objects and stay out of scope.
"""

from __future__ import annotations

import ast
from typing import (Dict, Iterable, Iterator, List, Optional, Set,
                    Tuple)

from ..core import FileContext, Finding, ProjectContext, ProjectRule, \
    register

__all__ = [
    "InconsistentLockingRule",
    "LockOrderRule",
    "BareConditionWaitRule",
    "ForkUnsafeModuleStateRule",
    "UnownedSharedStateRule",
]

#: Packages forming the thread-shared surface of the repo.
_CONC_PACKAGES = ("service", "obs", "cache", "perf", "loadgen")

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popleft", "popitem", "remove",
    "setdefault", "sort", "update",
})

#: ``("self", class_qname, attr)`` or ``("mod", module, name)``.
LockId = Tuple[str, str, str]


def _render_lock(lock: LockId) -> str:
    kind, owner, attr = lock
    if kind == "self":
        return f"{owner.split(':', 1)[1]}.{attr}"
    return f"{owner}.{attr}"


def _lock_id(expr: ast.expr, cls, syms, analysis) -> Optional[LockId]:
    """Canonical lock identity of a ``with`` context expression.

    ``Condition(self.X)`` aliases normalize to the underlying lock so
    ``with self._work:`` and ``with self._lock:`` count as the same
    acquisition.
    """
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)):
        if expr.value.id == "self" and cls is not None:
            attr = expr.attr
            if attr in cls.lock_attrs or attr in cls.condition_aliases:
                return ("self", cls.qname,
                        cls.condition_aliases.get(attr, attr))
            return None
        # ``alias.LOCK`` — a lock owned by another project module.
        module = syms.import_aliases.get(expr.value.id)
        if module is None:
            resolved = analysis.resolve_export(syms.module,
                                               expr.value.id)
            if resolved is not None and resolved[0] == "module":
                module = resolved[1]
        if module is not None and module in analysis.modules:
            if expr.attr in analysis.modules[module].module_locks:
                return ("mod", module, expr.attr)
        return None
    if isinstance(expr, ast.Name):
        if expr.id in syms.module_locks:
            return ("mod", syms.module, expr.id)
        origin = syms.from_names.get(expr.id)
        if origin is not None and origin[0] in analysis.modules:
            if origin[1] in analysis.modules[origin[0]].module_locks:
                return ("mod", origin[0], origin[1])
    return None


def _walk_with_locks(root: ast.AST, cls, syms, analysis
                     ) -> Iterator[Tuple[str, ast.AST,
                                         Tuple[LockId, ...], int]]:
    """Yield lock-aware traversal events over one function body.

    Events are ``("node", node, held, while_depth)`` for every node and
    ``("acquire", with_node, held_before, while_depth)`` with the
    acquired locks stashed on the event node via ``_acquired``.  Nested
    ``def``\\ s are skipped (they run later, without these locks);
    lambdas are descended (they run here).
    """

    def visit(node: ast.AST, held: Tuple[LockId, ...],
              depth: int) -> Iterator[Tuple[str, ast.AST,
                                            Tuple[LockId, ...], int]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                continue
            yield ("node", child, held, depth)
            yield from handle(child, held, depth)

    def handle(node: ast.AST, held: Tuple[LockId, ...],
               depth: int) -> Iterator[Tuple[str, ast.AST,
                                             Tuple[LockId, ...], int]]:
        """Dispatch one already-yielded node's subtree.

        Separate from ``visit`` so a ``With``/``While`` appearing as a
        direct body statement of another ``With`` gets the same
        acquire/depth treatment as one met through generic child
        iteration.
        """
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[LockId] = []
            for item in node.items:
                lock = _lock_id(item.context_expr, cls, syms, analysis)
                if lock is not None and lock not in held:
                    acquired.append(lock)
            if acquired:
                node._acquired = tuple(acquired)  # type: ignore
                yield ("acquire", node, held, depth)
            inner = held + tuple(acquired)
            for item in node.items:
                yield from visit(item.context_expr, held, depth)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    continue
                yield ("node", stmt, inner, depth)
                yield from handle(stmt, inner, depth)
        elif isinstance(node, ast.While):
            yield from visit(node, held, depth + 1)
        else:
            yield from visit(node, held, depth)

    yield from visit(root, (), 0)


def _self_writes(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """``(attr, node)`` when ``node`` writes a ``self`` attribute.

    Covers rebinds (``self.x = ...``, ``self.x += ...``), item stores
    into a self-held container (``self.x[k] = ...``), and in-place
    mutator calls (``self.x.append(...)``).
    """
    def self_attr(expr: ast.AST) -> Optional[str]:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return expr.attr
        return None

    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (node.targets if isinstance(node, ast.Assign)
                   else [node.target])
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            attr = self_attr(base)
            if attr is not None:
                yield (attr, node)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = self_attr(func.value)
            if attr is not None:
                yield (attr, node)


def _in_scope(ctx: FileContext) -> bool:
    return ctx.in_package(*_CONC_PACKAGES)


def _thread_reach(project: ProjectContext) -> Set[str]:
    graph, resolver = project.call_graph()
    return graph.reachable(resolver.thread_roots())


def _thread_involved(cls, reach: Set[str]) -> bool:
    """Class runs or hosts threads: starts them, is a thread target, or
    has a method on some serving/background thread's call path."""
    if cls.creates_threads or cls.thread_targets:
        return True
    return any(m.qname in reach for m in cls.methods.values())


@register
class InconsistentLockingRule(ProjectRule):
    """CONC001 — lock-guarded attribute written without its lock."""

    id = "CONC001"
    title = "inconsistent attribute locking"
    rationale = (
        "The scheduler/cache/metrics classes protect shared state with "
        "an owning self lock; one write site skipping that lock is a "
        "data race the other sites' discipline hides until a worker "
        "pool widens the window. If any non-__init__ write to an "
        "attribute holds self.<lock>, every non-__init__ write must.")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        analysis = project.analysis()
        reach = _thread_reach(project)
        for module in sorted(analysis.modules):
            syms = analysis.modules[module]
            if not _in_scope(syms.ctx):
                continue
            for cls in syms.classes.values():
                if not cls.lock_attrs:
                    continue
                if not _thread_involved(cls, reach):
                    continue
                yield from self._check_class(syms, cls, analysis)

    def _check_class(self, syms, cls, analysis) -> Iterable[Finding]:
        lock_like = set(cls.lock_attrs) | set(cls.condition_aliases)
        # (method, attr, node, self locks held) for every write site.
        events: List[Tuple[str, str, ast.AST, Set[str]]] = []
        for method in cls.methods.values():
            for kind, node, held, _depth in _walk_with_locks(
                    method.node, cls, syms, analysis):
                if kind != "node":
                    continue
                for attr, site in _self_writes(node):
                    if attr in lock_like:
                        continue
                    held_self = {lock[2] for lock in held
                                 if lock[0] == "self"
                                 and lock[1] == cls.qname}
                    events.append((method.name, attr, site, held_self))
        guards: Dict[str, Set[str]] = {}
        for method, attr, _node, held in events:
            if method != "__init__" and held:
                guards.setdefault(attr, set()).update(held)
        for method, attr, node, held in events:
            if method == "__init__" or held or attr not in guards:
                continue
            locks = ", ".join(f"self.{name}"
                              for name in sorted(guards[attr]))
            yield self.finding(
                syms.ctx, node,
                f"'{cls.name}.{method}' writes 'self.{attr}' without "
                f"holding {locks}, but other sites guard that "
                f"attribute with it; hoist the write under the lock")


@register
class LockOrderRule(ProjectRule):
    """CONC002 — two locks acquired in opposite orders somewhere."""

    id = "CONC002"
    title = "inconsistent lock acquisition order"
    rationale = (
        "A scheduler worker holding lock A while taking lock B "
        "deadlocks against a handler doing the reverse. All nested "
        "acquisitions across the serving surface must follow one "
        "global order; Condition(lock) aliases count as their "
        "underlying lock.")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        analysis = project.analysis()
        # (outer, inner) -> first acquisition site witnessing it.
        edges: Dict[Tuple[LockId, LockId],
                    Tuple[FileContext, ast.AST]] = {}
        for module in sorted(analysis.modules):
            syms = analysis.modules[module]
            if not _in_scope(syms.ctx):
                continue
            for info in syms.functions.values():
                self._collect(info, None, syms, analysis, edges)
            for cls in syms.classes.values():
                for method in cls.methods.values():
                    self._collect(method, cls, syms, analysis, edges)
        adjacency: Dict[LockId, Set[LockId]] = {}
        for outer, inner in edges:
            adjacency.setdefault(outer, set()).add(inner)
        for (outer, inner), (ctx, node) in sorted(
                edges.items(), key=lambda kv: (kv[1][0].rel_path,
                                               kv[1][1].lineno)):
            if self._reaches(adjacency, inner, outer):
                yield self.finding(
                    ctx, node,
                    f"acquires {_render_lock(inner)} while holding "
                    f"{_render_lock(outer)}, but another site orders "
                    f"them the other way round; pick one global lock "
                    f"order")

    def _collect(self, info, cls, syms, analysis, edges) -> None:
        for kind, node, held, _depth in _walk_with_locks(
                info.node, cls, syms, analysis):
            if kind != "acquire":
                continue
            for inner in node._acquired:  # type: ignore[attr-defined]
                for outer in held:
                    edges.setdefault((outer, inner), (syms.ctx, node))

    @staticmethod
    def _reaches(adjacency: Dict[LockId, Set[LockId]],
                 start: LockId, goal: LockId) -> bool:
        seen: Set[LockId] = set()
        frontier = [start]
        while frontier:
            lock = frontier.pop()
            if lock == goal:
                return True
            if lock in seen:
                continue
            seen.add(lock)
            frontier.extend(adjacency.get(lock, ()))
        return False


@register
class BareConditionWaitRule(ProjectRule):
    """CONC003 — ``Condition.wait`` outside a ``while`` predicate loop."""

    id = "CONC003"
    title = "Condition.wait outside a predicate loop"
    rationale = (
        "A condition wait can return spuriously and after missed "
        "notifications consumed by another waiter; only re-checking "
        "the predicate in a while loop makes the scheduler's "
        "work/settled handoff correct. wait_for() carries its own "
        "predicate and is exempt.")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        analysis = project.analysis()
        for module in sorted(analysis.modules):
            syms = analysis.modules[module]
            if not _in_scope(syms.ctx):
                continue
            infos = list(syms.functions.values())
            for cls in syms.classes.values():
                infos.extend(cls.methods.values())
            for info in infos:
                cls = (syms.classes.get(info.class_name)
                       if info.class_name else None)
                for kind, node, _held, depth in _walk_with_locks(
                        info.node, cls, syms, analysis):
                    if kind != "node" or not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    if (not isinstance(func, ast.Attribute)
                            or func.attr != "wait"):
                        continue
                    if not self._is_condition(func.value, cls, syms):
                        continue
                    if depth == 0:
                        yield self.finding(
                            syms.ctx, node,
                            "Condition.wait() outside a while loop "
                            "misses notifications and wakes "
                            "spuriously; re-check the predicate: "
                            "'while not <pred>: cond.wait()'")

    @staticmethod
    def _is_condition(expr: ast.expr, cls, syms) -> bool:
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and cls is not None):
            return (cls.lock_attrs.get(expr.attr) == "Condition"
                    or expr.attr in cls.condition_aliases)
        if isinstance(expr, ast.Name):
            return syms.module_locks.get(expr.id) == "Condition"
        return False


@register
class ForkUnsafeModuleStateRule(ProjectRule):
    """CONC004 — fork-unsafe module-level primitives in serving code."""

    id = "CONC004"
    title = "fork-unsafe module-level state in the serving closure"
    rationale = (
        "ROADMAP item 1 pre-forks digest-sharded workers. A module-"
        "level Lock/Condition/Thread/open handle created at import "
        "time is inherited by the child in whatever state the parent "
        "held it — a lock owned by a thread that does not exist in the "
        "child deadlocks forever. Modules in the serving import "
        "closure must register an os.register_at_fork reinitializer "
        "for such state.")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        analysis = project.analysis()
        seeds = {m for m in analysis.modules
                 if m == "repro.service" or m.startswith("repro.service.")}
        closure = analysis.import_closure(seeds)
        for module in sorted(closure):
            syms = analysis.modules[module]
            if syms.at_fork_reinit:
                continue
            flagged = dict(syms.module_locks)
            for name, callee in syms.instances.items():
                if callee == "open":
                    flagged[name] = "open"
            if not flagged:
                continue
            for name, node in self._module_assigns(syms.ctx, flagged):
                kind = flagged[name]
                what = ("open file handle" if kind == "open"
                        else f"threading.{kind}")
                yield self.finding(
                    syms.ctx, node,
                    f"module-level {what} '{name}' is reachable from "
                    f"repro.service and not fork-safe; reinitialize it "
                    f"via os.register_at_fork(after_in_child=...) "
                    f"before the pre-forked worker pool lands")

    @staticmethod
    def _module_assigns(ctx: FileContext, names: Dict[str, str]
                        ) -> Iterator[Tuple[str, ast.AST]]:
        assert ctx.tree is not None
        for stmt in ast.walk(ctx.tree):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (isinstance(target, ast.Name)
                            and target.id in names):
                        yield (target.id, stmt)


@register
class UnownedSharedStateRule(ProjectRule):
    """CONC005 — thread-shared mutable state with no owning lock."""

    id = "CONC005"
    title = "thread-shared mutable state without an owning lock"
    rationale = (
        "State a serving/background thread mutates needs exactly one "
        "owner: a self lock for singleton registries, a module lock "
        "for module-global containers, or thread-local storage. A "
        "lockless shared registry loses updates under the thread pool "
        "and silently corrupts counters the acceptance harness "
        "asserts on.")

    def check_project(self, project: ProjectContext
                      ) -> Iterable[Finding]:
        analysis = project.analysis()
        graph, resolver = project.call_graph()
        reach = graph.reachable(resolver.thread_roots())
        singleton_classes = self._singleton_classes(analysis)
        for module in sorted(analysis.modules):
            syms = analysis.modules[module]
            if not _in_scope(syms.ctx):
                continue
            yield from self._check_classes(syms, analysis, reach,
                                           singleton_classes)
            yield from self._check_globals(syms, analysis, reach)

    @staticmethod
    def _singleton_classes(analysis) -> Dict[str, str]:
        """Class qname -> shared-instance name instantiating it.

        Two sharing shapes: a module-level ``NAME = Class(...)``
        singleton, and an instance stored into a module-level container
        (``_REGISTRY[key] = Class(...)``) — registry entries outlive
        the storing call and are handed to every thread that looks
        them up.
        """
        singletons: Dict[str, str] = {}
        for syms in analysis.modules.values():
            for name, callee in syms.instances.items():
                cls = analysis.resolve_class_name(syms, callee)
                if cls is not None:
                    singletons.setdefault(cls.qname, name)
            if not syms.module_containers or syms.ctx.tree is None:
                continue
            # Anywhere-in-module ``var = ClassName(...)`` bindings, so
            # the two-step ``cache = StageCache(...); _REG[k] = cache``
            # registry idiom resolves too.
            constructed: Dict[str, str] = {}
            for node in ast.walk(syms.ctx.tree):
                if (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Name)):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            constructed[target.id] = node.value.func.id
            for node in ast.walk(syms.ctx.tree):
                if not isinstance(node, ast.Assign):
                    continue
                callee = None
                if (isinstance(node.value, ast.Call)
                        and isinstance(node.value.func, ast.Name)):
                    callee = node.value.func.id
                elif isinstance(node.value, ast.Name):
                    callee = constructed.get(node.value.id)
                if callee is None:
                    continue
                for target in node.targets:
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if (not isinstance(base, ast.Name)
                            or base is target
                            or base.id not in syms.module_containers):
                        continue
                    cls = analysis.resolve_class_name(syms, callee)
                    if cls is not None:
                        singletons.setdefault(
                            cls.qname, f"{base.id}[...]")
        return singletons

    def _check_classes(self, syms, analysis, reach: Set[str],
                       singletons: Dict[str, str]) -> Iterable[Finding]:
        for cls in syms.classes.values():
            if cls.lock_attrs:
                continue
            if any("RequestHandler" in base for base in cls.bases):
                # One handler instance per connection; never shared.
                continue
            if cls.qname not in singletons:
                continue
            witness: Optional[Tuple[str, str]] = None
            for method in cls.methods.values():
                if method.name == "__init__":
                    continue
                if method.qname not in reach:
                    continue
                for kind, node, _held, _d in _walk_with_locks(
                        method.node, cls, syms, analysis):
                    if kind != "node":
                        continue
                    for attr, _site in _self_writes(node):
                        witness = (method.name, attr)
                        break
                    if witness:
                        break
                if witness:
                    break
            if witness:
                method_name, attr = witness
                yield self.finding(
                    syms.ctx, cls.node,
                    f"'{cls.name}' is shared as module-level singleton "
                    f"'{singletons[cls.qname]}' and mutated from "
                    f"serving threads ('{method_name}' writes "
                    f"'self.{attr}') with no owning lock; add a "
                    f"threading.Lock or make the state thread-local")

    def _check_globals(self, syms, analysis,
                       reach: Set[str]) -> Iterable[Finding]:
        infos = list(syms.functions.values())
        for cls in syms.classes.values():
            infos.extend(cls.methods.values())
        for info in infos:
            if info.qname not in reach:
                continue
            cls = (syms.classes.get(info.class_name)
                   if info.class_name else None)
            func_globals = {
                name for node in ast.walk(info.node)
                if isinstance(node, ast.Global) for name in node.names}
            for kind, node, held, _d in _walk_with_locks(
                    info.node, cls, syms, analysis):
                if kind != "node" or held:
                    continue
                target = self._global_mutation(node, syms, func_globals)
                if target is not None:
                    yield self.finding(
                        syms.ctx, node,
                        f"'{info.name}' mutates module global "
                        f"'{target}' from a serving thread with no "
                        f"lock held; guard it with a module lock or "
                        f"use threading.local()")

    @staticmethod
    def _global_mutation(node: ast.AST, syms,
                         func_globals: Set[str]) -> Optional[str]:
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in syms.module_containers):
                return func.value.id
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                if not isinstance(base, ast.Name):
                    continue
                if (isinstance(target, ast.Subscript)
                        and base.id in syms.module_containers):
                    return base.id
                if base.id in func_globals:
                    return base.id
        return None
