"""The shipped rule pack.

Importing this package registers every built-in rule with the registry
in :mod:`repro.lint.core`.  Third-party packs can follow the same
pattern: define :class:`~repro.lint.core.Rule` subclasses decorated
with :func:`~repro.lint.core.register` and import the module before
calling the engine.
"""

from __future__ import annotations

from . import conc, determinism, obs, parity, purity

__all__ = ["conc", "determinism", "obs", "parity", "purity"]
