"""The lint engine: file discovery, parsing, rule dispatch, filtering.

Pipeline per invocation::

    discover .py files -> parse -> per-file rules -> project rules
        -> inline suppressions -> baseline filter -> LintResult

The engine never imports the code under analysis — everything is pure
:mod:`ast`, so linting cannot execute side effects and works on files
that would not even import in this environment.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .baseline import Baseline, load_baseline, write_baseline
from .core import (PARSE_ERROR_RULE, FileContext, Finding, ProjectContext,
                   ProjectRule, Rule, all_rules)
from .suppress import collect_suppressions

__all__ = ["LintResult", "discover_files", "lint_paths", "run_lint"]


@dataclass
class LintResult:
    """Outcome of one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def discover_files(paths: Sequence[str], root: str) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Args:
        paths: files or directories, absolute or relative to ``root``.
        root: the lint root every reported path is relative to.

    Raises:
        FileNotFoundError: when an argument does not exist.
    """
    found: List[str] = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root,
                                                                 path)
        if os.path.isfile(absolute):
            found.append(os.path.abspath(absolute))
        elif os.path.isdir(absolute):
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".venv"))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.abspath(
                            os.path.join(dirpath, filename)))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    # Deterministic order, stable across filesystems.
    return sorted(dict.fromkeys(found))


def _relativize(path: str, root: str) -> str:
    rel = os.path.relpath(path, root)
    return rel.replace(os.sep, "/")


def _parse_files(files: Sequence[str], root: str
                 ) -> Tuple[List[FileContext], List[Finding]]:
    contexts: List[FileContext] = []
    errors: List[Finding] = []
    for path in files:
        rel = _relativize(path, root)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            errors.append(Finding(path=rel, line=1, col=0,
                                  rule=PARSE_ERROR_RULE,
                                  message=f"cannot read file: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            errors.append(Finding(
                path=rel, line=exc.lineno or 1, col=exc.offset or 0,
                rule=PARSE_ERROR_RULE,
                message=f"syntax error: {exc.msg}"))
            contexts.append(FileContext(rel_path=rel, source=source,
                                        tree=None))
            continue
        contexts.append(FileContext(rel_path=rel, source=source,
                                    tree=tree))
    return contexts, errors


def _line_text(context_by_path: Dict[str, FileContext],
               finding: Finding) -> str:
    ctx = context_by_path.get(finding.path)
    if ctx is None or not (1 <= finding.line <= len(ctx.lines)):
        return ""
    return ctx.lines[finding.line - 1]


def lint_paths(paths: Sequence[str], root: Optional[str] = None,
               select: Optional[Sequence[str]] = None,
               baseline: Optional[Baseline] = None,
               baseline_out: Optional[str] = None) -> LintResult:
    """Run the linter and return a :class:`LintResult`.

    Args:
        paths: files or directories to lint.
        root: lint root for relative paths and rule scoping (default:
            the current working directory).
        select: restrict to these rule ids (default: every rule).
        baseline: grandfathered findings to filter out.
        baseline_out: when given, write the post-suppression findings
            to this path as the new baseline (and report them all as
            baselined).
    """
    root = os.path.abspath(root or os.getcwd())
    rules = all_rules(select)
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    files = discover_files(paths, root)
    contexts, parse_errors = _parse_files(files, root)
    context_by_path = {ctx.rel_path: ctx for ctx in contexts}

    raw: List[Finding] = list(parse_errors)
    for ctx in contexts:
        if ctx.tree is None:
            continue
        for rule in file_rules:
            if rule.applies_to(ctx):
                raw.extend(rule.check(ctx))
    project = ProjectContext(files=[ctx for ctx in contexts
                                    if ctx.tree is not None])
    for rule in project_rules:
        raw.extend(rule.check_project(project))

    suppressions = {ctx.rel_path: collect_suppressions(ctx)
                    for ctx in contexts}
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(raw):
        marks = suppressions.get(finding.path)
        if (marks is not None and finding.rule != PARSE_ERROR_RULE
                and marks.is_suppressed(finding)):
            suppressed += 1
        else:
            kept.append(finding)

    with_lines = [(f, _line_text(context_by_path, f)) for f in kept]
    if baseline_out is not None:
        write_baseline(baseline_out, with_lines)
        return LintResult(findings=[], suppressed=suppressed,
                          baselined=len(kept),
                          files_checked=len(contexts))
    if baseline is not None:
        fresh, absorbed = baseline.filter(with_lines)
        return LintResult(findings=fresh, suppressed=suppressed,
                          baselined=absorbed,
                          files_checked=len(contexts))
    return LintResult(findings=kept, suppressed=suppressed,
                      baselined=0, files_checked=len(contexts))


def run_lint(paths: Sequence[str], root: Optional[str] = None,
             select: Optional[Sequence[str]] = None,
             baseline_path: Optional[str] = None,
             write_baseline_to: Optional[str] = None) -> LintResult:
    """Convenience wrapper: load the baseline file, then lint.

    ``baseline_path`` may point at a missing file (treated as empty),
    which keeps ``--baseline lint-baseline.json`` usable before the
    first baseline has ever been written.
    """
    baseline = (load_baseline(baseline_path)
                if baseline_path is not None else None)
    return lint_paths(paths, root=root, select=select, baseline=baseline,
                      baseline_out=write_baseline_to)
