"""The lint engine: file discovery, parsing, rule dispatch, filtering.

Pipeline per invocation::

    discover .py files -> parse + per-file rules (cached, parallel)
        -> project rules -> inline suppressions -> baseline filter
        -> LintResult

The engine never imports the code under analysis — everything is pure
:mod:`ast`, so linting cannot execute side effects and works on files
that would not even import in this environment.

Two throughput features sit in front of the per-file phase:

* **Content-hash caching** — each file's parse + per-file findings are
  cached in-process, keyed by ``(sha256(source), rel_path, rule ids)``.
  Repeated ``lint_paths`` calls (watch modes, test suites, the service
  of a long-lived editor plugin) re-analyze only files whose bytes
  changed.  The cache is bounded FIFO so pathological callers cannot
  grow it without limit.
* **``jobs`` fan-out** — cache misses are parsed and checked in a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Workers return
  picklable ``(tree, findings, timings)`` triples; suppression,
  project rules, and baseline filtering always run in the parent so
  results are byte-identical to a serial run.

Per-rule wall-clock timings are accumulated into ``LintResult.stats``
(schema ``bundle-charging/lint-stats/v1``).  In parallel mode the
per-rule seconds are summed across workers, so they are CPU-seconds,
not elapsed time; ``phases`` carries the parent's elapsed view.
"""

from __future__ import annotations

import ast
import hashlib
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .baseline import Baseline, load_baseline, write_baseline
from .core import (PARSE_ERROR_RULE, FileContext, Finding, ProjectContext,
                   ProjectRule, Rule, all_rules)
from .suppress import collect_suppressions

__all__ = ["LINT_STATS_SCHEMA_ID", "LintResult", "discover_files",
           "lint_paths", "run_lint"]

#: Schema id stamped on ``LintResult.stats`` documents.
LINT_STATS_SCHEMA_ID = "bundle-charging/lint-stats/v1"

#: Maximum cached per-file results (FIFO eviction beyond this).
_CACHE_LIMIT = 4096

#: ``(sha256, rel_path, rule ids) -> (tree, findings)`` result cache.
_RESULT_CACHE: "OrderedDict[Tuple[str, str, Tuple[str, ...]], " \
               "Tuple[Optional[ast.Module], Tuple[Finding, ...]]]" = \
    OrderedDict()


@dataclass
class LintResult:
    """Outcome of one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0
    #: ``bundle-charging/lint-stats/v1`` document (timings, cache hits).
    stats: Optional[Dict[str, object]] = None

    @property
    def clean(self) -> bool:
        return not self.findings


def discover_files(paths: Sequence[str], root: str) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Args:
        paths: files or directories, absolute or relative to ``root``.
        root: the lint root every reported path is relative to.

    Raises:
        FileNotFoundError: when an argument does not exist.
    """
    found: List[str] = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(root,
                                                                 path)
        if os.path.isfile(absolute):
            found.append(os.path.abspath(absolute))
        elif os.path.isdir(absolute):
            for dirpath, dirnames, filenames in os.walk(absolute):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".venv"))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        found.append(os.path.abspath(
                            os.path.join(dirpath, filename)))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    # Deterministic order, stable across filesystems.
    return sorted(dict.fromkeys(found))


def _relativize(path: str, root: str) -> str:
    rel = os.path.relpath(path, root)
    return rel.replace(os.sep, "/")


def _analyze_source(rel: str, source: str,
                    rule_ids: Tuple[str, ...]) -> Tuple[
        Optional[ast.Module], Tuple[Finding, ...], Dict[str, float]]:
    """Parse one file and run the per-file rules over it.

    Module-level (not a closure) so :class:`ProcessPoolExecutor`
    workers can import it by qualified name; the return value is fully
    picklable (``ast`` trees pickle, :class:`Finding` is a frozen
    dataclass).  ``timings`` maps ``"parse"`` and each rule id to
    seconds spent.
    """
    timings: Dict[str, float] = {}
    started = time.perf_counter()
    try:
        tree: Optional[ast.Module] = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        timings["parse"] = time.perf_counter() - started
        finding = Finding(path=rel, line=exc.lineno or 1,
                          col=exc.offset or 0, rule=PARSE_ERROR_RULE,
                          message=f"syntax error: {exc.msg}")
        return None, (finding,), timings
    timings["parse"] = time.perf_counter() - started

    ctx = FileContext(rel_path=rel, source=source, tree=tree)
    findings: List[Finding] = []
    for rule in all_rules(rule_ids):
        if isinstance(rule, ProjectRule) or not rule.applies_to(ctx):
            continue
        rule_started = time.perf_counter()
        findings.extend(rule.check(ctx))
        timings[rule.id] = (timings.get(rule.id, 0.0)
                            + time.perf_counter() - rule_started)
    return tree, tuple(findings), timings


def _analyze_worker(payload: Tuple[str, str, Tuple[str, ...]]) -> Tuple[
        str, Optional[ast.Module], Tuple[Finding, ...],
        Dict[str, float]]:
    """Pool adapter: unpack one ``(rel, source, rule_ids)`` work item."""
    rel, source, rule_ids = payload
    tree, findings, timings = _analyze_source(rel, source, rule_ids)
    return rel, tree, findings, timings


def _cache_put(key: Tuple[str, str, Tuple[str, ...]],
               value: Tuple[Optional[ast.Module],
                            Tuple[Finding, ...]]) -> None:
    _RESULT_CACHE[key] = value
    while len(_RESULT_CACHE) > _CACHE_LIMIT:
        _RESULT_CACHE.popitem(last=False)


def _line_text(context_by_path: Dict[str, FileContext],
               finding: Finding) -> str:
    ctx = context_by_path.get(finding.path)
    if ctx is None or not (1 <= finding.line <= len(ctx.lines)):
        return ""
    return ctx.lines[finding.line - 1]


def lint_paths(paths: Sequence[str], root: Optional[str] = None,
               select: Optional[Sequence[str]] = None,
               baseline: Optional[Baseline] = None,
               baseline_out: Optional[str] = None,
               jobs: int = 1) -> LintResult:
    """Run the linter and return a :class:`LintResult`.

    Args:
        paths: files or directories to lint.
        root: lint root for relative paths and rule scoping (default:
            the current working directory).
        select: restrict to these rule ids (default: every rule).
        baseline: grandfathered findings to filter out.
        baseline_out: when given, write the post-suppression findings
            to this path as the new baseline (and report them all as
            baselined).
        jobs: worker processes for the per-file phase (1 = in-process).
            Findings are identical at any ``jobs`` value.
    """
    total_started = time.perf_counter()
    root = os.path.abspath(root or os.getcwd())
    rules = all_rules(select)
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    file_rule_ids = tuple(sorted(r.id for r in file_rules))

    # --- scan: read bytes, hash, split cache hits from misses ------------
    scan_started = time.perf_counter()
    files = discover_files(paths, root)
    read_errors: List[Finding] = []
    # rel -> (source, cache key); preserves discovery order.
    sources: "OrderedDict[str, Tuple[str, Tuple[str, str, Tuple[str, ...]]]]" = \
        OrderedDict()
    for path in files:
        rel = _relativize(path, root)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
            source = raw.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            read_errors.append(Finding(path=rel, line=1, col=0,
                                       rule=PARSE_ERROR_RULE,
                                       message=f"cannot read file: {exc}"))
            continue
        sha = hashlib.sha256(raw).hexdigest()
        sources[rel] = (source, (sha, rel, file_rule_ids))
    pending = [(rel, source, file_rule_ids)
               for rel, (source, key) in sources.items()
               if key not in _RESULT_CACHE]
    cached_count = len(sources) - len(pending)
    scan_s = time.perf_counter() - scan_started

    # --- per-file phase: parse + file rules (parallel on misses) ---------
    file_phase_started = time.perf_counter()
    rule_seconds: Dict[str, float] = {}
    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor
        chunksize = max(1, len(pending) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            analyzed = list(pool.map(_analyze_worker, pending,
                                     chunksize=chunksize))
    else:
        analyzed = [_analyze_worker(item) for item in pending]
    for rel, tree, findings, timings in analyzed:
        _cache_put(sources[rel][1], (tree, findings))
        for name, seconds in timings.items():
            rule_seconds[name] = rule_seconds.get(name, 0.0) + seconds

    contexts: List[FileContext] = []
    raw_findings: List[Finding] = list(read_errors)
    parse_errors = len(read_errors)
    for rel, (source, key) in sources.items():
        tree, findings = _RESULT_CACHE[key]
        contexts.append(FileContext(rel_path=rel, source=source,
                                    tree=tree))
        raw_findings.extend(findings)
        if tree is None:
            parse_errors += 1
    context_by_path = {ctx.rel_path: ctx for ctx in contexts}
    file_rules_s = time.perf_counter() - file_phase_started

    # --- project phase: semantic model + cross-module rules --------------
    project = ProjectContext(files=[ctx for ctx in contexts
                                    if ctx.tree is not None])
    model_s = 0.0
    project_rules_s = 0.0
    if project_rules:
        model_started = time.perf_counter()
        project.analysis()
        project.call_graph()
        model_s = time.perf_counter() - model_started
        project_started = time.perf_counter()
        for rule in project_rules:
            rule_started = time.perf_counter()
            raw_findings.extend(rule.check_project(project))
            rule_seconds[rule.id] = (rule_seconds.get(rule.id, 0.0)
                                     + time.perf_counter() - rule_started)
        project_rules_s = time.perf_counter() - project_started

    # --- filtering: suppressions, then baseline --------------------------
    filter_started = time.perf_counter()
    suppressions = {ctx.rel_path: collect_suppressions(ctx)
                    for ctx in contexts}
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(raw_findings):
        marks = suppressions.get(finding.path)
        if (marks is not None and finding.rule != PARSE_ERROR_RULE
                and marks.is_suppressed(finding)):
            suppressed += 1
        else:
            kept.append(finding)

    by_rule: Dict[str, int] = {}
    for finding in raw_findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1

    def _finish(result: LintResult) -> LintResult:
        filter_s = time.perf_counter() - filter_started
        # Union of timed rules and finding counts: a file served from
        # the content-hash cache contributes findings but no seconds.
        rule_names = (set(rule_seconds) | set(by_rule)) - {"parse"}
        rule_stats = {
            name: {"seconds": round(rule_seconds.get(name, 0.0), 6),
                   "findings": by_rule.get(name, 0)}
            for name in sorted(rule_names)
        }
        result.stats = {
            "schema": LINT_STATS_SCHEMA_ID,
            "jobs": jobs,
            "files": {
                "checked": len(contexts),
                "cached": cached_count,
                "parse_errors": parse_errors,
            },
            "phases": {
                "scan_s": round(scan_s, 6),
                "parse_s": round(rule_seconds.get("parse", 0.0), 6),
                "file_rules_s": round(file_rules_s, 6),
                "semantic_model_s": round(model_s, 6),
                "project_rules_s": round(project_rules_s, 6),
                "filter_s": round(filter_s, 6),
                "total_s": round(time.perf_counter() - total_started, 6),
            },
            "rules": rule_stats,
        }
        return result

    with_lines = [(f, _line_text(context_by_path, f)) for f in kept]
    if baseline_out is not None:
        write_baseline(baseline_out, with_lines)
        return _finish(LintResult(findings=[], suppressed=suppressed,
                                  baselined=len(kept),
                                  files_checked=len(contexts)))
    if baseline is not None:
        fresh, absorbed = baseline.filter(with_lines)
        return _finish(LintResult(findings=fresh, suppressed=suppressed,
                                  baselined=absorbed,
                                  files_checked=len(contexts)))
    return _finish(LintResult(findings=kept, suppressed=suppressed,
                              baselined=0, files_checked=len(contexts)))


def run_lint(paths: Sequence[str], root: Optional[str] = None,
             select: Optional[Sequence[str]] = None,
             baseline_path: Optional[str] = None,
             write_baseline_to: Optional[str] = None,
             jobs: int = 1) -> LintResult:
    """Convenience wrapper: load the baseline file, then lint.

    ``baseline_path`` may point at a missing file (treated as empty),
    which keeps ``--baseline lint-baseline.json`` usable before the
    first baseline has ever been written.
    """
    baseline = (load_baseline(baseline_path)
                if baseline_path is not None else None)
    return lint_paths(paths, root=root, select=select, baseline=baseline,
                      baseline_out=write_baseline_to, jobs=jobs)
