"""Text and JSON reporters for lint results.

The JSON shape is a stable machine-readable contract
(``bundle-charging/lint/v1``) so CI annotations and editor plugins can
consume it without scraping text output.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .core import all_rules
from .engine import LintResult

__all__ = ["JSON_SCHEMA_ID", "render_json", "render_rules", "render_text"]

JSON_SCHEMA_ID = "bundle-charging/lint/v1"


def render_text(result: LintResult) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines: List[str] = [finding.render() for finding in result.findings]
    by_rule: Dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    if lines:
        lines.append("")
    summary = (f"{len(result.findings)} finding"
               f"{'' if len(result.findings) == 1 else 's'} "
               f"in {result.files_checked} files")
    if by_rule:
        summary += " (" + ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        ) + ")"
    if result.suppressed:
        summary += f"; {result.suppressed} suppressed inline"
    if result.baselined:
        summary += f"; {result.baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (schema ``bundle-charging/lint/v1``)."""
    payload = {
        "schema": JSON_SCHEMA_ID,
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "clean": result.clean,
        },
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rules() -> str:
    """The rule catalogue for ``--list-rules``."""
    blocks: List[str] = []
    for rule in all_rules():
        blocks.append(f"{rule.id} — {rule.title}\n    {rule.rationale}")
    return "\n\n".join(blocks)
