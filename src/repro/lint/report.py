"""Text, JSON, and SARIF reporters for lint results.

The JSON shape is a stable machine-readable contract
(``bundle-charging/lint/v1``) so CI annotations and editor plugins can
consume it without scraping text output.  :func:`render_sarif` emits
SARIF 2.1.0 for code-scanning upload, and
:func:`lint_stats_problems` validates the ``--stats`` timing document
(``bundle-charging/lint-stats/v1``) the same way the observability
schemas are validated.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .core import PARSE_ERROR_RULE, all_rules
from .engine import LINT_STATS_SCHEMA_ID, LintResult

__all__ = ["JSON_SCHEMA_ID", "SARIF_SCHEMA_URI", "lint_stats_problems",
           "render_json", "render_rules", "render_sarif", "render_text"]

JSON_SCHEMA_ID = "bundle-charging/lint/v1"

#: The published SARIF 2.1.0 schema location.
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Keys every ``phases`` object in a stats document must carry.
_STATS_PHASES = ("scan_s", "parse_s", "file_rules_s", "semantic_model_s",
                 "project_rules_s", "filter_s", "total_s")


def render_text(result: LintResult) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines: List[str] = [finding.render() for finding in result.findings]
    by_rule: Dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    if lines:
        lines.append("")
    summary = (f"{len(result.findings)} finding"
               f"{'' if len(result.findings) == 1 else 's'} "
               f"in {result.files_checked} files")
    if by_rule:
        summary += " (" + ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        ) + ")"
    if result.suppressed:
        summary += f"; {result.suppressed} suppressed inline"
    if result.baselined:
        summary += f"; {result.baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (schema ``bundle-charging/lint/v1``)."""
    payload = {
        "schema": JSON_SCHEMA_ID,
        "summary": {
            "files_checked": result.files_checked,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "clean": result.clean,
        },
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report for code-scanning upload.

    Every registered rule (plus the synthetic ``E999`` parse-error
    rule) appears in the driver's rule table so viewers can show
    titles/rationales even for rules with no findings this run.
    Columns are 1-based per the SARIF spec; findings carry the
    linter's 0-based ``col`` plus one.
    """
    rules_meta: List[Dict[str, Any]] = [{
        "id": PARSE_ERROR_RULE,
        "shortDescription": {"text": "File cannot be parsed"},
        "fullDescription": {
            "text": "The engine could not read or parse this file; no "
                    "rules ran over it."},
        "defaultConfiguration": {"level": "error"},
    }]
    for rule in all_rules():
        rules_meta.append({
            "id": rule.id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "warning"},
        })
    index_of = {meta["id"]: index
                for index, meta in enumerate(rules_meta)}

    results: List[Dict[str, Any]] = []
    for finding in result.findings:
        entry: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": ("error" if finding.rule == PARSE_ERROR_RULE
                      else "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line,
                               "startColumn": finding.col + 1},
                },
            }],
        }
        if finding.rule in index_of:
            entry["ruleIndex"] = index_of[finding.rule]
        results.append(entry)

    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "bundle-charging-lint",
                "informationUri": "docs/architecture.md",
                "rules": rules_meta,
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def lint_stats_problems(document: Any) -> List[str]:
    """Validate a ``bundle-charging/lint-stats/v1`` document.

    Returns problem strings (empty = valid); re-exported through
    :func:`repro.obs.validate.validate_lint_stats` so CI gates check
    all emitted documents from one place.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["stats document is not an object"]
    if document.get("schema") != LINT_STATS_SCHEMA_ID:
        problems.append(
            f"unknown stats schema {document.get('schema')!r} "
            f"(expected {LINT_STATS_SCHEMA_ID!r})")
    jobs = document.get("jobs")
    if not isinstance(jobs, int) or jobs < 1:
        problems.append(f"'jobs' must be a positive integer: {jobs!r}")
    files = document.get("files")
    if not isinstance(files, dict):
        problems.append("stats document missing 'files' object")
    else:
        for key in ("checked", "cached", "parse_errors"):
            value = files.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(
                    f"files.{key} must be a non-negative integer: "
                    f"{value!r}")
    phases = document.get("phases")
    if not isinstance(phases, dict):
        problems.append("stats document missing 'phases' object")
    else:
        for key in _STATS_PHASES:
            value = phases.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"phases.{key} must be a non-negative number: "
                    f"{value!r}")
    rules = document.get("rules")
    if not isinstance(rules, dict):
        problems.append("stats document missing 'rules' object")
    else:
        for rule_id, entry in rules.items():
            if not isinstance(entry, dict):
                problems.append(f"rules.{rule_id} is not an object")
                continue
            seconds = entry.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds < 0:
                problems.append(
                    f"rules.{rule_id}.seconds must be a non-negative "
                    f"number: {seconds!r}")
            findings = entry.get("findings")
            if not isinstance(findings, int) or findings < 0:
                problems.append(
                    f"rules.{rule_id}.findings must be a non-negative "
                    f"integer: {findings!r}")
    return problems


def render_rules() -> str:
    """The rule catalogue for ``--list-rules``."""
    blocks: List[str] = []
    for rule in all_rules():
        blocks.append(f"{rule.id} — {rule.title}\n    {rule.rationale}")
    return "\n\n".join(blocks)
