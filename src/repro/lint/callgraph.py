"""Conservative call graph over the project symbol model.

Built once per lint run on top of :class:`repro.lint.project
.ProjectAnalysis` and shared by the CONC and PURE rule families.  The
graph is deliberately *over*-approximating — a missing edge would let a
purity or locking violation hide behind one indirection, so unresolved
attribute calls fall back to class-hierarchy analysis by method name
(every project method with that name becomes a callee), and function
references that escape as arguments (thread targets, stage-compute
thunks, pool submissions) add edges even though no call expression is
visible.

Resolution order for a call inside function ``F`` of class ``C``:

1. nested defs of ``F`` (thunks, sender loops);
2. ``self.m(...)`` -> ``C`` and its project-resolvable bases;
3. bare names -> module functions, from-imports (re-export chains
   chased through package ``__init__``\\ s), classes (-> ``__init__``);
4. ``alias.f(...)`` -> the aliased module's exports;
5. ``instance.m(...)`` for module-level singletons -> the singleton's
   class;
6. anything else attribute-shaped -> CHA by method name.

Lambdas are attributed to their enclosing function; nested ``def``\\ s
are independent graph nodes (``module:outer.inner``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .project import ClassInfo, FunctionInfo, ModuleSymbols, \
    ProjectAnalysis

__all__ = ["CallGraph", "Resolver", "build_call_graph",
           "function_body_nodes"]


def function_body_nodes(root: ast.AST,
                        include_nested: bool = False
                        ) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``\\ s.

    Lambdas *are* descended into — they belong to the enclosing
    function.  Pass ``include_nested=True`` to get a plain walk.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if (not include_nested
                and isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class CallGraph:
    """Qualified-name edges plus reachability."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def add(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of callees from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        frontier = list(roots)
        while frontier:
            qname = frontier.pop()
            if qname in seen:
                continue
            seen.add(qname)
            frontier.extend(self.edges.get(qname, ()))
        return seen

    def shortest_path(self, roots: Iterable[str],
                      target: str) -> List[str]:
        """A breadth-first witness chain root -> ... -> target."""
        parents: Dict[str, Optional[str]] = {r: None for r in roots}
        frontier = list(parents)
        while frontier:
            next_frontier: List[str] = []
            for qname in frontier:
                if qname == target:
                    chain = [qname]
                    while parents[chain[-1]] is not None:
                        chain.append(parents[chain[-1]])  # type: ignore
                    return list(reversed(chain))
                for callee in sorted(self.edges.get(qname, ())):
                    if callee not in parents:
                        parents[callee] = qname
                        next_frontier.append(callee)
            frontier = next_frontier
        return []


class Resolver:
    """Shared call-target resolution over one :class:`ProjectAnalysis`."""

    def __init__(self, analysis: ProjectAnalysis) -> None:
        self.analysis = analysis
        self._nested_cache: Dict[str, Dict[str, str]] = {}

    # --- environment ------------------------------------------------------

    def _owner_class(self, info: FunctionInfo) -> Optional[ClassInfo]:
        if info.class_name is None:
            return None
        syms = self.analysis.modules.get(info.module)
        if syms is None:
            return None
        return syms.classes.get(info.class_name)

    def _nested_of(self, info: FunctionInfo) -> Dict[str, str]:
        """Local name -> qname for defs nested inside ``info``."""
        cached = self._nested_cache.get(info.qname)
        if cached is not None:
            return cached
        short = info.qname.split(":", 1)[1]
        prefix = f"{info.module}:{short}."
        nested: Dict[str, str] = {}
        for qname in self.analysis.functions:
            if qname.startswith(prefix):
                local = qname[len(prefix):]
                if "." not in local:
                    nested[local] = qname
        self._nested_cache[info.qname] = nested
        return nested

    def _self_method(self, info: FunctionInfo,
                     attr: str) -> Optional[str]:
        cls = self._owner_class(info)
        if cls is None:
            return None
        for candidate in self.analysis.class_and_bases(cls):
            if attr in candidate.methods:
                return candidate.methods[attr].qname
        return None

    def _cha(self, attr: str) -> List[str]:
        if attr.startswith("__") and attr.endswith("__"):
            return []
        return list(self.analysis.methods_by_name.get(attr, ()))

    def _module_of_name(self, syms: ModuleSymbols,
                        name: str) -> Optional[str]:
        """Module a bare local name refers to, if any."""
        target = syms.import_aliases.get(name)
        if target is not None and target in self.analysis.modules:
            return target
        for kind, qname in self.analysis.resolve_export_all(
                syms.module, name):
            if kind == "module":
                return qname
        return None

    def _instance_class(self, syms: ModuleSymbols,
                        name: str) -> Optional[ClassInfo]:
        """Class of a module-level singleton referenced by ``name``."""
        for kind, qname in self.analysis.resolve_export_all(
                syms.module, name):
            if kind == "instance":
                return self.analysis.classes.get(qname)
        return None

    def _export_targets(self, module: str, name: str) -> List[str]:
        """Function targets for ``module.name`` — every candidate.

        The ImportError-fallback pattern binds a local passthrough def
        and the real import under one name; both are followed.
        """
        targets: List[str] = []
        for kind, qname in self.analysis.resolve_export_all(module,
                                                            name):
            if kind == "func":
                targets.append(qname)
            elif kind == "class":
                cls = self.analysis.classes.get(qname)
                if cls is not None and "__init__" in cls.methods:
                    targets.append(cls.methods["__init__"].qname)
        return targets

    # --- call resolution --------------------------------------------------

    def resolve_call(self, info: FunctionInfo,
                     func: ast.expr) -> List[str]:
        """Possible project callee qnames of ``func`` inside ``info``."""
        syms = self.analysis.modules.get(info.module)
        if syms is None:
            return []
        if isinstance(func, ast.Name):
            nested = self._nested_of(info)
            if func.id in nested:
                return [nested[func.id]]
            return self._export_targets(info.module, func.id)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "self":
                    target = self._self_method(info, attr)
                    return [target] if target else self._cha(attr)
                module = self._module_of_name(syms, value.id)
                if module is not None:
                    return self._export_targets(module, attr)
                cls = self._instance_class(syms, value.id)
                if cls is not None:
                    for candidate in self.analysis.class_and_bases(cls):
                        if attr in candidate.methods:
                            return [candidate.methods[attr].qname]
                    return []
            return self._cha(attr)
        return []

    def calls_in(self, info: FunctionInfo,
                 root: ast.AST) -> Set[str]:
        """Resolved callee qnames of every call under ``root`` (which
        is resolved in ``info``'s environment; nested defs skipped)."""
        callees: Set[str] = set()
        nodes = [root] if not isinstance(root, (ast.FunctionDef,
                                                ast.AsyncFunctionDef)) \
            else []
        for node in nodes + list(function_body_nodes(root)):
            if isinstance(node, ast.Call):
                callees.update(self.resolve_call(info, node.func))
        return callees

    def escaping_refs(self, info: FunctionInfo) -> Set[str]:
        """Functions referenced (not called) inside ``info``'s body."""
        call_funcs = {
            id(node.func)
            for node in function_body_nodes(info.node)
            if isinstance(node, ast.Call)}
        refs: Set[str] = set()
        syms = self.analysis.modules.get(info.module)
        if syms is None:
            return refs
        nested = self._nested_of(info)
        for node in function_body_nodes(info.node):
            if id(node) in call_funcs:
                continue
            if isinstance(node, ast.Name) and isinstance(node.ctx,
                                                         ast.Load):
                if node.id in nested:
                    refs.add(nested[node.id])
                else:
                    for kind, qname in self.analysis.resolve_export_all(
                            info.module, node.id):
                        if kind == "func":
                            refs.add(qname)
            elif (isinstance(node, ast.Attribute)
                  and isinstance(node.ctx, ast.Load)
                  and isinstance(node.value, ast.Name)):
                if node.value.id == "self":
                    target = self._self_method(info, node.attr)
                    if target is not None:
                        refs.add(target)
                else:
                    module = self._module_of_name(syms, node.value.id)
                    if module is not None:
                        for kind, qname in \
                                self.analysis.resolve_export_all(
                                    module, node.attr):
                            if kind == "func":
                                refs.add(qname)
        return refs

    # --- thread roots -----------------------------------------------------

    def thread_roots(self) -> Set[str]:
        """Entry points that run on serving/background threads.

        Three sources: ``threading.Thread(target=...)`` targets,
        ``do_*`` methods of request-handler subclasses (one thread per
        connection under ``ThreadingHTTPServer``), and callables handed
        to constructors of classes that start worker threads in
        ``__init__`` (the scheduler's compute argument).
        """
        roots: Set[str] = set()
        for cls in self.analysis.classes.values():
            for target in cls.thread_targets:
                if target in cls.methods:
                    roots.add(cls.methods[target].qname)
            if any("RequestHandler" in base for base in cls.bases):
                for name, method in cls.methods.items():
                    if name.startswith("do_"):
                        roots.add(method.qname)
        threaded_ctors = {
            cls.methods["__init__"].qname: cls
            for cls in self.analysis.classes.values()
            if cls.creates_threads and "__init__" in cls.methods}
        for info in list(self.analysis.functions.values()):
            for node in function_body_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Name) or isinstance(
                        node.func, ast.Attribute):
                    targets = self.resolve_call(info, node.func)
                else:
                    targets = []
                if not any(t in threaded_ctors for t in targets):
                    # Thread(target=X) at arbitrary call sites.
                    self._plain_thread_targets(info, node, roots)
                    continue
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    roots.update(self._callable_arg_roots(info, arg))
        return roots

    def _plain_thread_targets(self, info: FunctionInfo, node: ast.Call,
                              roots: Set[str]) -> None:
        syms = self.analysis.modules.get(info.module)
        if syms is None:
            return
        dotted_parts: List[str] = []
        func: ast.AST = node.func
        while isinstance(func, ast.Attribute):
            dotted_parts.append(func.attr)
            func = func.value
        if isinstance(func, ast.Name):
            dotted_parts.append(func.id)
        dotted = ".".join(reversed(dotted_parts))
        is_thread = (dotted == "Thread"
                     and syms.from_names.get("Thread",
                                             ("", ""))[0] == "threading")
        is_thread = is_thread or dotted.endswith("threading.Thread") \
            or dotted == "threading.Thread"
        if not is_thread:
            return
        for kw in node.keywords:
            if kw.arg == "target":
                roots.update(self._callable_arg_roots(info, kw.value))

    def _callable_arg_roots(self, info: FunctionInfo,
                            arg: ast.expr) -> Set[str]:
        """Roots contributed by one callable-valued argument."""
        if isinstance(arg, ast.Lambda):
            return self.calls_in(info, arg.body)
        if isinstance(arg, (ast.Name, ast.Attribute)):
            return set(self.resolve_call(info, arg))
        return set()


def build_call_graph(analysis: ProjectAnalysis
                     ) -> Tuple[CallGraph, Resolver]:
    """Build the project call graph; returns (graph, resolver)."""
    resolver = Resolver(analysis)
    graph = CallGraph()
    for qname, info in analysis.functions.items():
        graph.edges.setdefault(qname, set())
        for node in function_body_nodes(info.node):
            if isinstance(node, ast.Call):
                for callee in resolver.resolve_call(info, node.func):
                    if callee != qname:
                        graph.add(qname, callee)
        for ref in resolver.escaping_refs(info):
            if ref != qname:
                graph.add(qname, ref)
    return graph, resolver
