"""Core data model of the ``repro.lint`` static-analysis framework.

The linter is deliberately pure-stdlib: rules are small :mod:`ast`
visitors registered in a process-wide registry, the engine feeds them
parsed file contexts, and everything downstream (suppression, baseline,
reporters) operates on immutable :class:`Finding` values.

Two rule shapes exist:

* :class:`Rule` — per-file: sees one parsed module at a time.
* :class:`ProjectRule` — cross-module: sees every parsed module at once
  (used for parity checks such as PAR001 that cannot be decided from a
  single file).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Type

__all__ = [
    "Finding",
    "FileContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "register",
    "rule_registry",
    "all_rules",
]

#: Rule id used for files the engine cannot parse.
PARSE_ERROR_RULE = "E999"


@dataclass(frozen=True, order=True)
class Finding:
    """One linter diagnostic, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Render in the conventional ``path:line:col: RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (schema ``bundle-charging/lint/v1``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class FileContext:
    """One parsed source file as seen by per-file rules.

    Attributes:
        rel_path: path relative to the lint root, with ``/`` separators
            (rules scope themselves by this, so it is stable across
            machines and operating systems).
        source: the raw file text.
        tree: the parsed module, or ``None`` when the file failed to
            parse (the engine emits an ``E999`` finding instead of
            running rules).
    """

    rel_path: str
    source: str
    tree: Optional[ast.Module]
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def module_name(self) -> str:
        """Dotted module name for files under ``src/`` ('' otherwise)."""
        rel = self.rel_path
        if not rel.startswith("src/") or not rel.endswith(".py"):
            return ""
        parts = rel[len("src/"):-len(".py")].split("/")
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def in_package(self, *packages: str) -> bool:
        """True when the module lives under any ``repro.<package>``."""
        name = self.module_name
        return any(name == f"repro.{pkg}" or name.startswith(f"repro.{pkg}.")
                   for pkg in packages)


@dataclass
class ProjectContext:
    """Every parsed file of one lint invocation, for cross-module rules."""

    files: List[FileContext]
    _analysis: Optional[object] = field(default=None, init=False,
                                        repr=False, compare=False)
    _call_graph: Optional[tuple] = field(default=None, init=False,
                                         repr=False, compare=False)

    def by_module(self) -> Dict[str, FileContext]:
        """Map dotted module names to contexts (src/ files only)."""
        return {ctx.module_name: ctx for ctx in self.files
                if ctx.module_name and ctx.tree is not None}

    def analysis(self):
        """The shared :class:`repro.lint.project.ProjectAnalysis`.

        Resolved lazily on first use and cached, so every project-scope
        rule of one lint run shares a single symbol-table/import-graph
        pass (imported lazily to keep the core free of cycles).
        """
        if self._analysis is None:
            from .project import build_project
            self._analysis = build_project(self)
        return self._analysis

    def call_graph(self):
        """``(CallGraph, Resolver)`` over :meth:`analysis`, cached."""
        if self._call_graph is None:
            from .callgraph import build_call_graph
            self._call_graph = build_call_graph(self.analysis())
        return self._call_graph


class Rule:
    """Base class for per-file rules.

    Subclasses set the class attributes and implement :meth:`check`;
    registration happens via the :func:`register` decorator.
    """

    id: str = ""
    title: str = ""
    #: One-paragraph justification tied to the reproduction's invariants;
    #: surfaced by ``--list-rules`` and the docs.
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Path scoping hook; default: every Python file."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST,
                message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(path=ctx.rel_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=self.id, message=message)


class ProjectRule(Rule):
    """Base class for cross-module rules; sees the whole file set."""

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    instance = rule_cls()
    if not instance.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return rule_cls


def rule_registry() -> Dict[str, Rule]:
    """Return the live id -> rule mapping (rule pack must be imported)."""
    from . import rulepack  # noqa: F401  (importing registers the pack)
    return _REGISTRY


def all_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Return registered rules, optionally restricted to ``select`` ids.

    Raises:
        KeyError: when ``select`` names an unknown rule id.
    """
    registry = rule_registry()
    if select is None:
        return [registry[rule_id] for rule_id in sorted(registry)]
    rules = []
    for rule_id in select:
        if rule_id not in registry:
            raise KeyError(f"unknown rule id {rule_id!r}; "
                           f"known: {sorted(registry)}")
        rules.append(registry[rule_id])
    return rules
