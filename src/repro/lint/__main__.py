"""``python -m repro.lint`` — the one-command local check."""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
