"""Committed baseline of grandfathered findings.

The baseline lets the linter be adopted on a codebase with pre-existing
violations without blocking CI: known findings are fingerprinted and
filtered, while *new* findings still fail the build.  Fingerprints hash
the rule id, the file path and the *stripped source line text* — not the
line number — so unrelated edits above a grandfathered finding do not
invalidate the baseline.  Identical lines in one file share a
fingerprint; the baseline stores a count and filtering consumes it, so
adding a second copy of a grandfathered line is still reported.

File format (``lint-baseline.json``, committed at the repo root)::

    {
      "version": 1,
      "entries": {"<fingerprint>": {"rule": "...", "path": "...",
                                    "line_text": "...", "count": N}}
    }
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .core import Finding

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1


def fingerprint(finding: Finding, line_text: str) -> str:
    """Stable, line-number-independent id for one finding."""
    payload = f"{finding.rule}|{finding.path}|{line_text.strip()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """In-memory baseline: fingerprint -> remaining allowance."""

    entries: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def filter(self, findings_with_lines: Sequence[Tuple[Finding, str]]
               ) -> Tuple[List[Finding], int]:
        """Split findings into (new, baselined-count).

        Each baseline entry absorbs at most ``count`` matching findings;
        anything beyond that is reported as new.
        """
        remaining = {fp: int(entry.get("count", 1))
                     for fp, entry in self.entries.items()}
        fresh: List[Finding] = []
        absorbed = 0
        for finding, line_text in findings_with_lines:
            fp = fingerprint(finding, line_text)
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                absorbed += 1
            else:
                fresh.append(finding)
        return fresh, absorbed


def load_baseline(path: str) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return Baseline()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path} (expected {BASELINE_VERSION})")
    entries = payload.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline entries in {path}")
    return Baseline(entries=dict(entries))


def write_baseline(path: str,
                   findings_with_lines: Sequence[Tuple[Finding, str]]
                   ) -> Baseline:
    """Serialize the given findings as the new baseline and return it."""
    entries: Dict[str, Dict[str, object]] = {}
    for finding, line_text in findings_with_lines:
        fp = fingerprint(finding, line_text)
        if fp in entries:
            entries[fp]["count"] = int(entries[fp]["count"]) + 1
        else:
            entries[fp] = {"rule": finding.rule, "path": finding.path,
                           "line_text": line_text.strip(), "count": 1}
    baseline = Baseline(entries=entries)
    payload = {"version": BASELINE_VERSION,
               "entries": {fp: entries[fp] for fp in sorted(entries)}}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return baseline
