"""Inline suppression comments.

Three forms, matching the issue-tracker convention::

    x = random.random()          # repro-lint: disable=DET001
    # repro-lint: disable-next-line=DET003
    for item in bundle_set:
        ...
    # repro-lint: disable-file=DET004   (anywhere in the file)

Multiple rule ids may be comma-separated, and the wildcard ``all``
silences every rule.  Suppressions are honoured *after* rules run, so
``--no-suppress`` style tooling can still surface them if ever needed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from .core import FileContext, Finding

__all__ = ["Suppressions", "collect_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file|-next-line)?)\s*=\s*"
    r"([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)")

_WILDCARDS = frozenset({"all", "*"})


@dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    file_rules: Set[str] = field(default_factory=set)
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, finding: Finding) -> bool:
        """True when ``finding`` is silenced by an inline directive."""
        if self._matches(self.file_rules, finding.rule):
            return True
        rules = self.line_rules.get(finding.line)
        return rules is not None and self._matches(rules, finding.rule)

    @staticmethod
    def _matches(rules: Set[str], rule_id: str) -> bool:
        return rule_id in rules or bool(rules & _WILDCARDS)


def _parse_rules(spec: str) -> FrozenSet[str]:
    return frozenset(part.strip() for part in spec.split(",") if part.strip())


def collect_suppressions(ctx: FileContext) -> Suppressions:
    """Scan a file's comment lines for suppression directives."""
    result = Suppressions()
    for index, line in enumerate(ctx.lines, start=1):
        for match in _DIRECTIVE.finditer(line):
            kind, spec = match.group(1), _parse_rules(match.group(2))
            if kind == "disable-file":
                result.file_rules |= spec
            elif kind == "disable-next-line":
                result.line_rules.setdefault(index + 1, set()).update(spec)
            else:
                result.line_rules.setdefault(index, set()).update(spec)
    return result
