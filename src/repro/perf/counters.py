"""Scoped timers and operation counters for the fast-path kernels.

The hot kernels (bitset set cover, the Theorem 4/5 ellipse search, the
neighbor-list 2-opt, the parallel seed runner) report into one process-wide
:class:`PerfRegistry`.  The registry is deliberately tiny — a dict of
timer statistics and a dict of integer counters — so that instrumentation
at *call* granularity costs nanoseconds and can stay always-on.

Counters and timers are namespaced with dotted names
(``"bundling.cover"``, ``"ellipse.golden_fallback"``) and exported as a
JSON-friendly snapshot; the benchmark harness embeds these snapshots in
its ``BENCH_*.json`` trajectory files.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator

__all__ = ["PerfRegistry", "PERF", "perf_timer", "perf_add",
           "perf_snapshot", "perf_reset"]


class PerfRegistry:
    """Process-wide store of scoped timers and op counters.

    Attributes:
        enabled: when False, :meth:`timer` and :meth:`add` are no-ops so
            the kernels can be timed without self-measurement overhead.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled: bool = enabled
        self._timer_total: Dict[str, float] = {}
        self._timer_calls: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (total seconds + calls)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._timer_total[name] = \
                self._timer_total.get(name, 0.0) + elapsed
            self._timer_calls[name] = self._timer_calls.get(name, 0) + 1

    def add(self, name: str, amount: int = 1) -> None:
        """Bump counter ``name`` by ``amount``."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def record_seconds(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into timer ``name``."""
        if not self.enabled:
            return
        self._timer_total[name] = self._timer_total.get(name, 0.0) + seconds
        self._timer_calls[name] = self._timer_calls.get(name, 0) + 1

    def counter(self, name: str) -> int:
        """Return the current value of counter ``name`` (0 if unseen)."""
        return self._counters.get(name, 0)

    def timer_seconds(self, name: str) -> float:
        """Return the accumulated seconds of timer ``name`` (0 if unseen)."""
        return self._timer_total.get(name, 0.0)

    def snapshot(self) -> Dict[str, object]:
        """Return a JSON-serializable view of all timers and counters."""
        timers = {
            name: {"total_s": total,
                   "calls": self._timer_calls.get(name, 0)}
            for name, total in sorted(self._timer_total.items())
        }
        return {"timers": timers, "counters": dict(sorted(
            self._counters.items()))}

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters are summed; timers sum both total seconds and call
        counts.  This is how worker processes' per-seed registries are
        folded back into the parent after a ``--jobs N`` run, so the
        parallel and serial runners report identical op counts.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, stats in snapshot.get("timers", {}).items():
            self._timer_total[name] = (self._timer_total.get(name, 0.0)
                                       + stats["total_s"])
            self._timer_calls[name] = (self._timer_calls.get(name, 0)
                                       + stats["calls"])

    def reset(self) -> None:
        """Clear all timers and counters (keeps ``enabled``)."""
        self._timer_total.clear()
        self._timer_calls.clear()
        self._counters.clear()

    def write_json(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as indented JSON."""
        with open(path, "w") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


#: The process-wide registry every kernel reports into.
PERF = PerfRegistry()


def perf_timer(name: str):
    """Module-level shortcut for ``PERF.timer(name)``."""
    return PERF.timer(name)


def perf_add(name: str, amount: int = 1) -> None:
    """Module-level shortcut for ``PERF.add(name, amount)``."""
    PERF.add(name, amount)


def perf_snapshot() -> Dict[str, object]:
    """Module-level shortcut for ``PERF.snapshot()``."""
    return PERF.snapshot()


def perf_reset() -> None:
    """Module-level shortcut for ``PERF.reset()``."""
    PERF.reset()
