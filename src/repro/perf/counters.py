"""Scoped timers and operation counters for the fast-path kernels.

The hot kernels (bitset set cover, the Theorem 4/5 ellipse search, the
neighbor-list 2-opt, the parallel seed runner) report into one process-wide
:class:`PerfRegistry`.  The registry is deliberately tiny — a dict of
timer statistics and a dict of integer counters — so that instrumentation
at *call* granularity costs nanoseconds and can stay always-on.

Counters and timers are namespaced with dotted names
(``"bundling.cover"``, ``"ellipse.golden_fallback"``) and exported as a
JSON-friendly snapshot; the benchmark harness embeds these snapshots in
its ``BENCH_*.json`` trajectory files.

:meth:`PerfRegistry.observe` adds fixed-boundary distributions on top:
a dict of bucket counts plus count/sum/min/max per name, mergeable
across ``--jobs`` workers through :meth:`PerfRegistry.merge_snapshot`
exactly like counters and timers.  This is deliberately *not* the
labeled engine in :mod:`repro.obs.metrics` — ``repro.perf`` must stay
import-free of optional subsystems, so it carries its own minimal
bucketing (shared default boundaries, no labels).
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["PerfRegistry", "PERF", "perf_timer", "perf_add",
           "perf_snapshot", "perf_reset"]

#: Default histogram boundaries (seconds) — mirrors
#: ``repro.obs.metrics.DEFAULT_LATENCY_BOUNDS`` without importing it.
_DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class PerfRegistry:
    """Process-wide store of scoped timers and op counters.

    Attributes:
        enabled: when False, :meth:`timer` and :meth:`add` are no-ops so
            the kernels can be timed without self-measurement overhead.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled: bool = enabled
        # PERF is shared by scheduler workers and handler threads; the
        # lock owns every instrument dict, including snapshot reads
        # (dict iteration during a concurrent insert raises).
        self._lock = threading.Lock()
        self._timer_total: Dict[str, float] = {}
        self._timer_calls: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Dict[str, object]] = {}

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (total seconds + calls)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._timer_total[name] = \
                    self._timer_total.get(name, 0.0) + elapsed
                self._timer_calls[name] = \
                    self._timer_calls.get(name, 0) + 1

    def add(self, name: str, amount: int = 1) -> None:
        """Bump counter ``name`` by ``amount``."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def record_seconds(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._timer_total[name] = \
                self._timer_total.get(name, 0.0) + seconds
            self._timer_calls[name] = \
                self._timer_calls.get(name, 0) + 1

    def observe(self, name: str, value: float,
                boundaries: Sequence[float] = _DEFAULT_BOUNDS) -> None:
        """Record ``value`` into fixed-boundary histogram ``name``.

        ``len(boundaries) + 1`` buckets with a trailing overflow;
        values below the first edge clamp into the first bucket and
        NaN is dropped.  Boundaries are fixed at first observation.
        """
        if not self.enabled:
            return
        value = float(value)
        if value != value:  # NaN: unorderable, no bucket to clamp into
            return
        with self._lock:
            entry = self._histograms.get(name)
            if entry is None:
                edges = tuple(float(edge) for edge in boundaries)
                entry = {"boundaries": edges,
                         "counts": [0] * (len(edges) + 1),
                         "count": 0, "sum": 0.0,
                         "min": float("inf"), "max": float("-inf")}
                self._histograms[name] = entry
            counts: List[int] = entry["counts"]  # type: ignore[assignment]
            counts[bisect_left(entry["boundaries"], value)] += 1
            entry["count"] = entry["count"] + 1  # type: ignore[operator]
            entry["sum"] = entry["sum"] + value  # type: ignore[operator]
            entry["min"] = min(entry["min"],  # type: ignore[type-var]
                               value)
            entry["max"] = max(entry["max"],  # type: ignore[type-var]
                               value)

    def instrument_view(self) -> Tuple[Dict[str, int],
                                       Dict[str, float],
                                       Dict[str, int]]:
        """Consistent copies of (counters, timer totals, timer calls).

        The span tracer diffs these around a span; copying under the
        lock keeps the dict iteration safe against concurrent bumps.
        """
        with self._lock:
            return (dict(self._counters), dict(self._timer_total),
                    dict(self._timer_calls))

    def counter(self, name: str) -> int:
        """Return the current value of counter ``name`` (0 if unseen)."""
        with self._lock:
            return self._counters.get(name, 0)

    def timer_seconds(self, name: str) -> float:
        """Return the accumulated seconds of timer ``name`` (0 if unseen)."""
        with self._lock:
            return self._timer_total.get(name, 0.0)

    def snapshot(self) -> Dict[str, object]:
        """Return a JSON-serializable view of all instruments."""
        with self._lock:
            timers = {
                name: {"total_s": total,
                       "calls": self._timer_calls.get(name, 0)}
                for name, total in sorted(self._timer_total.items())
            }
            result: Dict[str, object] = {
                "timers": timers,
                "counters": dict(sorted(self._counters.items())),
            }
            if self._histograms:
                result["histograms"] = {
                    name: {"boundaries": list(entry["boundaries"]),
                           "counts": list(entry["counts"]),
                           "count": entry["count"],
                           "sum": entry["sum"],
                           "min": (entry["min"] if entry["count"]
                                   else None),
                           "max": (entry["max"] if entry["count"]
                                   else None)}
                    for name, entry in sorted(self._histograms.items())
                }
            return result

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters are summed; timers sum both total seconds and call
        counts; histogram buckets sum with min/max combining.  This is
        how worker processes' per-seed registries are folded back into
        the parent after a ``--jobs N`` run, so the parallel and serial
        runners report identical op counts.

        Raises:
            ValueError: when a histogram arrives with boundaries that
                differ from the ones already accumulated under the
                same name.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = \
                    self._counters.get(name, 0) + value
            for name, stats in snapshot.get("timers", {}).items():
                self._timer_total[name] = (
                    self._timer_total.get(name, 0.0) + stats["total_s"])
                self._timer_calls[name] = (
                    self._timer_calls.get(name, 0) + stats["calls"])
            for name, incoming in snapshot.get("histograms",
                                               {}).items():
                entry = self._histograms.get(name)
                if entry is None:
                    edges = tuple(float(edge)
                                  for edge in incoming["boundaries"])
                    entry = {"boundaries": edges,
                             "counts": [0] * (len(edges) + 1),
                             "count": 0, "sum": 0.0,
                             "min": float("inf"),
                             "max": float("-inf")}
                    self._histograms[name] = entry
                if list(entry["boundaries"]) != \
                        list(incoming["boundaries"]):
                    raise ValueError(
                        f"cannot merge histogram {name!r}: boundary "
                        f"vectors differ")
                counts: List[int] = entry["counts"]  # type: ignore[assignment]
                for index, bucket in enumerate(incoming["counts"]):
                    counts[index] += bucket
                entry["count"] = entry["count"] \
                    + incoming["count"]  # type: ignore[operator]
                entry["sum"] = entry["sum"] \
                    + incoming["sum"]  # type: ignore[operator]
                if incoming.get("min") is not None:
                    entry["min"] = min(entry["min"],  # type: ignore[type-var]
                                       incoming["min"])
                if incoming.get("max") is not None:
                    entry["max"] = max(entry["max"],  # type: ignore[type-var]
                                       incoming["max"])

    def reset(self) -> None:
        """Clear all instruments (keeps ``enabled``)."""
        with self._lock:
            self._timer_total.clear()
            self._timer_calls.clear()
            self._counters.clear()
            self._histograms.clear()

    def write_json(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as indented JSON."""
        with open(path, "w") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


#: The process-wide registry every kernel reports into.
PERF = PerfRegistry()


def perf_timer(name: str):
    """Module-level shortcut for ``PERF.timer(name)``."""
    return PERF.timer(name)


def perf_add(name: str, amount: int = 1) -> None:
    """Module-level shortcut for ``PERF.add(name, amount)``."""
    PERF.add(name, amount)


def perf_snapshot() -> Dict[str, object]:
    """Module-level shortcut for ``PERF.snapshot()``."""
    return PERF.snapshot()


def perf_reset() -> None:
    """Module-level shortcut for ``PERF.reset()``."""
    PERF.reset()
