"""Kernel backend switching for benchmarking and verification.

Every accelerated kernel keeps its original pure-Python implementation as
a *reference* sibling, and results are bit-identical between the two on
all inputs.  This module flips the module-level backend flags so the
benchmark harness and the property tests can run the same workload
through both paths and compare outputs and wall-clock honestly:

    with reference_kernels():
        slow = greedy_bundles(network, radius)   # pre-PR implementations
    fast = greedy_bundles(network, radius)       # bitset / scalar / SoA
    assert fast == slow                          # enforced by the bench
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["reference_kernels", "using_reference_kernels"]


def _kernel_modules():
    # Imported lazily: the kernel modules themselves import
    # repro.perf.counters, so a module-level import here would cycle.
    from ..bundling import bitset as _bitset
    from ..geometry import ellipse as _ellipse
    from ..geometry import soa as _soa
    return _bitset, _ellipse, _soa


@contextmanager
def reference_kernels() -> Iterator[None]:
    """Run the original (pre-fast-path) kernel implementations.

    Affects the bitset set-cover/candidate pipeline in
    :mod:`repro.bundling`, the scalar Theorem 4/5 search in
    :mod:`repro.geometry.ellipse`, and the struct-of-arrays geometry
    kernels in :mod:`repro.geometry.soa` (candidate enumeration, MinDisk
    validation, TSP distance rows).  Nestable and exception-safe.
    """
    _bitset, _ellipse, _soa = _kernel_modules()
    saved = (_bitset._USE_REFERENCE, _ellipse._USE_REFERENCE,
             _soa._USE_REFERENCE)
    _bitset._USE_REFERENCE = True
    _ellipse._USE_REFERENCE = True
    _soa._USE_REFERENCE = True
    try:
        yield
    finally:
        _bitset._USE_REFERENCE = saved[0]
        _ellipse._USE_REFERENCE = saved[1]
        _soa._USE_REFERENCE = saved[2]


def using_reference_kernels() -> bool:
    """Return True when the reference backends are currently active."""
    _bitset, _ellipse, _soa = _kernel_modules()
    return (_bitset._USE_REFERENCE and _ellipse._USE_REFERENCE
            and _soa._USE_REFERENCE)
